"""Shared fixtures: one built system and one fork-mode server per module.

Pools fork real processes, so the fixtures are module-scoped — every
test in a module shares the same snapshot and workers, mirroring how a
server actually runs (load once, serve many).
"""

import pytest

from repro.core.system import TossSystem
from repro.serving import QueryServer

PAPER_COUNT = 12


def make_documents(count=PAPER_COUNT):
    return [
        f"<paper key='p{index}'>"
        f"<title>Paper {index}</title>"
        f"<author>Author {index % 3}</author>"
        f"<year>{1990 + index}</year>"
        f"</paper>"
        for index in range(count)
    ]


def make_system(count=PAPER_COUNT, **kwargs):
    system = TossSystem(epsilon=kwargs.pop("epsilon", 2.0), **kwargs)
    system.add_instance("papers", make_documents(count))
    system.build()
    return system


@pytest.fixture(scope="module")
def system():
    return make_system()


@pytest.fixture(scope="module")
def server(system):
    with QueryServer(system, workers=2, default_collection="papers") as srv:
        yield srv
