"""Tests for the concurrent query-serving layer."""
