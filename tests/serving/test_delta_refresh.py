"""Delta refresh: pools converge to the mutated system without respawn.

Covers the :class:`~repro.serving.snapshot.SnapshotDelta` protocol end
to end — computing a delta from a snapshot, replaying it worker-side
with :func:`~repro.serving.snapshot.apply_snapshot_delta`, broadcasting
it through :meth:`SupervisedWorkerPool.apply_delta`, and the
``noop``/``delta``/``full`` decision in :meth:`QueryServer.refresh`.
"""

import json

import pytest

from repro.serving import QueryServer, RetryPolicy, SupervisedWorkerPool
from repro.serving.snapshot import (
    PICKLE,
    SystemSnapshot,
    apply_snapshot_delta,
)
from repro.similarity.persistence import seo_to_dict
from repro.xmldb.collection import CHANGELOG_CAPACITY
from repro.xmldb.serializer import serialize

from .conftest import make_system

NEW_DOC = (
    "<paper key='p99'><title>Paper 99</title>"
    "<author>Author 0</author><year>2004</year></paper>"
)
#: Writes whose author is a *new* ontology term within epsilon of the
#: existing ones — the incremental build takes the enhancement-patch
#: path, so the delta ships SEO patches instead of full SEOs.
NEW_TERM_DOC = (
    "<paper key='p98'><title>Paper 98</title>"
    "<author>Author 9</author><year>2003</year></paper>"
)
SECOND_TERM_DOC = (
    "<paper key='p97'><title>Paper 97</title>"
    "<author>Author 8</author><year>2002</year></paper>"
)
QUERY = 'paper(author ~ "Author 0")'

FAST = RetryPolicy(
    retry_backoff_base=0.005,
    retry_backoff_cap=0.02,
    respawn_backoff_base=0.005,
    respawn_backoff_cap=0.02,
)


def serial(system, query=QUERY):
    return [serialize(tree) for tree in system.query("papers", query).results]


def make_task(query=QUERY):
    return {
        "query": query,
        "collection": "papers",
        "sl_variables": (),
        "right_collection": None,
        "document_keys": None,
        "guard": None,
        "collect_metrics": False,
        "trace": False,
    }


def batch_texts(outcomes):
    texts = []
    for outcome in outcomes:
        assert "report" in outcome, outcome.get("failure")
        texts.append(outcome["report"]["results"])
    return texts


class TestSnapshotDelta:
    def test_unchanged_system_yields_empty_delta(self):
        system = make_system(count=6)
        snapshot = SystemSnapshot.capture(system)
        delta = snapshot.delta()
        assert delta is not None
        assert delta.collections == {} and delta.seos == {}
        assert delta.target_signature == snapshot.signature
        assert delta.documents_shipped == 0

    def test_mutated_but_unbuilt_system_yields_none(self):
        system = make_system(count=6)
        snapshot = SystemSnapshot.capture(system)
        system.add_documents("papers", NEW_DOC)
        assert snapshot.delta() is None  # not queryable until build()

    def test_single_write_ships_one_document(self):
        system = make_system(count=6)
        snapshot = SystemSnapshot.capture(system)
        receipt = system.add_documents("papers", NEW_DOC)
        assert receipt.incremental
        system.build()
        delta = snapshot.delta()
        assert delta is not None
        assert set(delta.collections) == {"papers"}
        assert delta.documents_shipped == 1
        assert delta.target_signature == system.database.generation_signature()

    def test_truncated_changelog_yields_none(self):
        system = make_system(count=6)
        snapshot = SystemSnapshot.capture(system)
        collection = system.database.get_collection("papers")
        for _ in range(CHANGELOG_CAPACITY + 1):
            collection.replace_document("p0", NEW_DOC.replace("p99", "p0"))
        assert snapshot.stale()
        assert snapshot.delta() is None

    def test_dropped_collection_yields_none(self):
        system = make_system(count=6)
        snapshot = SystemSnapshot.capture(system)
        system.database.drop_collection("papers")
        assert snapshot.delta() is None

    def test_pickle_worker_converges_on_replay(self):
        """A payload-restored worker replaying a delta matches the live
        system document-for-document and verdict-for-verdict."""
        system = make_system(count=8)
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        worker = snapshot.restore()
        keys = list(system.database.get_collection("papers").keys())
        system.add_documents("papers", NEW_DOC)
        system.replace_documents(
            "papers",
            {keys[2]: "<paper key='p2'><title>Rewritten</title>"
                      "<author>Author 0</author><year>1992</year></paper>"},
        )
        system.remove_documents("papers", (keys[3],))
        system.build()
        delta = snapshot.delta()
        assert delta is not None
        signature = apply_snapshot_delta(worker, delta)
        assert tuple(signature) == tuple(delta.target_signature)
        live_docs = [
            (key, serialize(root))
            for key, root in system.database.get_collection("papers").documents()
        ]
        worker_docs = [
            (key, serialize(root))
            for key, root in worker.database.get_collection("papers").documents()
        ]
        assert worker_docs == live_docs
        assert serial(worker) == serial(system)


def seo_dumps(system):
    return {
        relation: json.dumps(seo_to_dict(seo), sort_keys=True)
        for relation, seo in system.context.seos.items()
    }


class TestSeoPatchDelta:
    """Changed SEOs ship as enhancement patches when the builds allow it."""

    def test_patched_build_ships_patches_and_converges(self):
        system = make_system(count=8)
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        worker = snapshot.restore()
        receipt = system.add_documents("papers", NEW_TERM_DOC)
        assert "Author 9" in receipt.terms_added
        system.build()
        assert any(
            r.enhancement_patched for r in system.build_report.relations
        )
        delta = snapshot.delta()
        assert delta is not None
        entry = delta.seos["isa"]
        assert "patches" in entry and len(entry["patches"]) == 1
        apply_snapshot_delta(worker, delta)
        assert seo_dumps(worker) == seo_dumps(system)
        query = 'paper(author ~ "Author 9")'
        assert serial(worker, query) == serial(system, query)

    def test_patch_replay_is_idempotent(self):
        """Replaying a delta a worker already applied is a no-op — the
        broadcast can legitimately reach an already-current worker."""
        system = make_system(count=8)
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        worker = snapshot.restore()
        system.add_documents("papers", NEW_TERM_DOC)
        system.build()
        delta = snapshot.delta()
        assert "patches" in delta.seos["isa"]
        apply_snapshot_delta(worker, delta)
        apply_snapshot_delta(worker, delta)
        assert seo_dumps(worker) == seo_dumps(system)

    def test_multiple_builds_ship_the_patch_chain(self):
        """Two builds between refreshes ship both patches, oldest first,
        and the worker replays them in order."""
        system = make_system(count=8)
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        worker = snapshot.restore()
        system.add_documents("papers", NEW_TERM_DOC)
        system.build()
        system.add_documents("papers", SECOND_TERM_DOC)
        system.build()
        delta = snapshot.delta()
        entry = delta.seos["isa"]
        assert "patches" in entry and len(entry["patches"]) == 2
        apply_snapshot_delta(worker, delta)
        assert seo_dumps(worker) == seo_dumps(system)

    def test_full_seo_ships_when_chain_broken(self):
        """A mutation the incremental build cannot absorb (an in-place
        replace) rebuilds from scratch — no patch provenance, so the
        delta falls back to the full serialized SEO."""
        system = make_system(count=8)
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        worker = snapshot.restore()
        keys = list(system.database.get_collection("papers").keys())
        system.replace_documents(
            "papers",
            {keys[0]: "<paper key='p0'><title>Rewritten</title>"
                      "<author>Author 9</author><year>1990</year></paper>"},
        )
        system.build()
        delta = snapshot.delta()
        assert delta is not None and delta.seos
        assert all("patches" not in e for e in delta.seos.values())
        apply_snapshot_delta(worker, delta)
        assert seo_dumps(worker) == seo_dumps(system)


class TestPoolDeltaApply:
    @pytest.mark.parametrize("mode", [None, PICKLE])
    def test_pool_serves_new_state_after_delta(self, mode):
        system = make_system(count=8)
        snapshot = SystemSnapshot.capture(system, mode=mode)
        with SupervisedWorkerPool(snapshot, 2, policy=FAST) as pool:
            before = batch_texts(pool.run_batch([make_task()]))
            assert before == [serial(system)]
            system.add_documents("papers", NEW_DOC)
            system.build()
            delta = snapshot.delta()
            assert delta is not None
            stats = pool.apply_delta(delta)
            assert stats == {"applied": 2, "respawning": 0}
            assert snapshot.signature == system.database.generation_signature()
            after = batch_texts(pool.run_batch([make_task()]))
            assert after == [serial(system)]
            assert any("p99" in text for text in after[0])

    def test_pool_broadcasts_seo_patches(self):
        """The patch form travels the real queue transport and converges
        a full fleet (wait_ready keeps spawn tails out of the picture)."""
        system = make_system(count=8)
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        with SupervisedWorkerPool(snapshot, 2, policy=FAST) as pool:
            assert pool.wait_ready() == 2
            system.add_documents("papers", NEW_TERM_DOC)
            system.build()
            delta = snapshot.delta()
            assert "patches" in delta.seos["isa"]
            assert pool.apply_delta(delta) == {"applied": 2, "respawning": 0}
            query = 'paper(author ~ "Author 9")'
            after = batch_texts(pool.run_batch([make_task(query)]))
            assert after == [serial(system, query)]

    def test_respawned_worker_after_delta_is_current(self):
        """A worker respawned *after* a delta was applied initializes
        from the advanced snapshot, not the stale capture state."""
        system = make_system(count=6)
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        with SupervisedWorkerPool(snapshot, 1, policy=FAST) as pool:
            pool.run_batch([make_task()])
            system.add_documents("papers", NEW_DOC)
            system.build()
            assert pool.apply_delta(snapshot.delta())["applied"] == 1
            # Kill the only worker; the respawn rebuilds the payload from
            # the live (already-advanced) system.
            for pid in pool.worker_pids():
                if pid is not None:
                    import os
                    import signal

                    os.kill(pid, signal.SIGKILL)
            after = batch_texts(pool.run_batch([make_task()]))
            assert after == [serial(system)]


class TestServerRefresh:
    def test_refresh_prefers_delta_then_noop(self):
        system = make_system(count=8)
        with QueryServer(
            system, workers=2, default_collection="papers", policy=FAST
        ) as server:
            assert server.refresh() == "noop"
            system.add_documents("papers", NEW_DOC)
            system.build()
            pool_before = server.pool
            assert server.refresh() == "delta"
            assert server.pool is pool_before  # no pool churn on delta
            assert server.refresh() == "noop"
            report = server.execute(QUERY)
            assert [serialize(t) for t in report.results] == serial(system)

    def test_wait_ready_reports_full_fleet(self):
        system = make_system(count=6)
        with QueryServer(
            system, workers=2, default_collection="papers", policy=FAST
        ) as server:
            assert server.wait_ready() == 2

    def test_refresh_full_when_forced(self):
        system = make_system(count=6)
        with QueryServer(
            system, workers=2, default_collection="papers", policy=FAST
        ) as server:
            system.add_documents("papers", NEW_DOC)
            system.build()
            pool_before = server.pool
            assert server.refresh(incremental=False) == "full"
            assert server.pool is not pool_before

    def test_refresh_full_when_changelog_truncated(self):
        system = make_system(count=6)
        with QueryServer(
            system, workers=2, default_collection="papers", policy=FAST
        ) as server:
            collection = system.database.get_collection("papers")
            for _ in range(CHANGELOG_CAPACITY + 1):
                collection.replace_document("p0", NEW_DOC.replace("p99", "p0"))
            assert server.refresh() == "full"
