"""Partitioned execution: chunking, report merging, guard propagation."""

import pytest

from repro.core.executor import ExecutionReport
from repro.core.parser import parse_query
from repro.errors import (
    ResourceExhaustedError,
    ServingError,
    SnapshotStaleError,
)
from repro.guard import ResourceGuard
from repro.serving import execute_partitioned, partition_document_keys
from repro.xmldb.serializer import serialize

from .conftest import make_system

QUERY = 'paper(author ~ "Author 1")'


def result_texts(report):
    return [serialize(tree) for tree in report.results]


class TestPartitionDocumentKeys:
    def test_concatenation_reproduces_input(self):
        keys = [f"d{i}" for i in range(11)]
        for jobs in range(1, 6):
            chunks = partition_document_keys(keys, jobs)
            assert [key for chunk in chunks for key in chunk] == keys

    def test_balanced_and_contiguous(self):
        chunks = partition_document_keys([f"d{i}" for i in range(7)], 3)
        assert [len(chunk) for chunk in chunks] == [3, 2, 2]

    def test_never_returns_empty_chunks(self):
        chunks = partition_document_keys(["a", "b"], 5)
        assert chunks == [["a"], ["b"]]

    def test_empty_keys(self):
        assert partition_document_keys([], 4) == []

    def test_invalid_jobs(self):
        with pytest.raises(ServingError):
            partition_document_keys(["a"], 0)

    def test_deterministic(self):
        keys = [f"d{i}" for i in range(10)]
        assert partition_document_keys(keys, 4) == partition_document_keys(
            keys, 4
        )


class TestMergeRules:
    def test_rules_cover_every_scalar_field(self):
        # The drift guard: a new ExecutionReport field must pick a merge
        # rule the moment it is serialized.
        assert set(ExecutionReport._MERGE_RULES) == set(
            ExecutionReport._SCALAR_FIELDS
        )

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            ExecutionReport.merge([])

    def test_timings_take_max_counts_sum(self):
        left = ExecutionReport(
            results=[],
            rewrite_seconds=0.2,
            xpath_seconds=0.5,
            convert_seconds=0.1,
            candidates=3,
            docs_total=10,
            docs_scanned=4,
            planner_seconds=0.3,
            ontology_accesses=7,
        )
        right = ExecutionReport(
            results=[],
            rewrite_seconds=0.1,
            xpath_seconds=0.9,
            convert_seconds=0.4,
            candidates=5,
            docs_total=10,
            docs_scanned=6,
            planner_seconds=0.2,
            ontology_accesses=2,
            index_used=True,
        )
        merged = ExecutionReport.merge([left, right])
        assert merged.rewrite_seconds == 0.2
        assert merged.xpath_seconds == 0.9
        assert merged.convert_seconds == 0.4
        assert merged.planner_seconds == 0.3  # max, never a double-count
        assert merged.candidates == 8
        assert merged.docs_scanned == 10
        assert merged.docs_total == 10  # collection property: max, not sum
        assert merged.ontology_accesses == 9
        assert merged.index_used is True
        assert merged.plan_cache_hit is False
        assert merged.trace is None


class TestCandidateDocuments:
    def test_candidates_in_insertion_order(self):
        system = make_system(count=8)
        executor, _ = system._query_executor()
        pattern = parse_query(QUERY).pattern
        keys = executor.candidate_documents("papers", pattern)
        order = list(system.database.get_collection("papers").keys())
        assert keys == [key for key in order if key in set(keys)]

    def test_restricted_selection_equals_full_on_candidates(self):
        system = make_system(count=8)
        executor, _ = system._query_executor()
        parsed = parse_query(QUERY)
        keys = executor.candidate_documents("papers", parsed.pattern)
        full = system.select("papers", parsed.pattern, parsed.roots)
        restricted = system.select(
            "papers", parsed.pattern, parsed.roots, document_keys=keys
        )
        assert result_texts(restricted) == result_texts(full)


class TestExecutePartitioned:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_identical_to_serial(self, system, server, jobs):
        serial = system.query("papers", QUERY)
        merged = execute_partitioned(
            system, server.pool, "papers", QUERY, jobs=jobs
        )
        assert result_texts(merged) == result_texts(serial)
        assert merged.docs_total == serial.docs_total

    def test_single_chunk_falls_back_to_serial(self, system, server):
        serial = system.query("papers", QUERY)
        merged = execute_partitioned(
            system, server.pool, "papers", QUERY, jobs=1
        )
        assert result_texts(merged) == result_texts(serial)

    def test_collective_step_budget_still_raises(self, system, server):
        guard = ResourceGuard(max_steps=1)
        with pytest.raises(ResourceExhaustedError):
            execute_partitioned(
                system, server.pool, "papers", QUERY, jobs=2, guard=guard
            )

    def test_result_cap_applies_to_merged_results(self, system, server):
        guard = ResourceGuard(max_results=1)
        with pytest.raises(ResourceExhaustedError):
            execute_partitioned(
                system, server.pool, "papers", QUERY, jobs=2, guard=guard
            )

    def test_generous_budget_passes(self, system, server):
        guard = ResourceGuard(max_steps=10_000_000, deadline_seconds=60.0)
        serial = system.query("papers", QUERY)
        merged = execute_partitioned(
            system, server.pool, "papers", QUERY, jobs=2, guard=guard
        )
        assert result_texts(merged) == result_texts(serial)
        # The parent guard absorbed the workers' consumed steps.
        assert guard.steps > 0

    def test_stale_pool_is_rejected(self):
        from repro.serving import QueryServer

        system = make_system(count=4)
        with QueryServer(system, workers=2) as server:
            system.database.get_collection("papers").add_document(
                "extra", "<paper><title>New</title></paper>"
            )
            with pytest.raises(SnapshotStaleError):
                execute_partitioned(
                    system, server.pool, "papers", QUERY, jobs=2
                )

    def test_invalid_jobs(self, system, server):
        with pytest.raises(ServingError):
            execute_partitioned(
                system, server.pool, "papers", QUERY, jobs=0
            )

    def test_invalid_on_chunk_failure(self, system, server):
        with pytest.raises(ServingError):
            execute_partitioned(
                system, server.pool, "papers", QUERY, jobs=2,
                on_chunk_failure="shrug",
            )


class TestPartialDegradation:
    """A permanently failed chunk: raise by default, degrade on opt-in."""

    def _pool(self, system, fail_chunks, quarantine=False):
        from repro import faults
        from repro.serving import RetryPolicy, SupervisedWorkerPool
        from repro.serving.snapshot import SystemSnapshot

        plan = faults.FaultPlan(
            rules=(
                faults.FaultRule(
                    kind=faults.KILL, tasks=tuple(fail_chunks), attempts=None
                ),
            )
        )
        policy = RetryPolicy(
            max_retries=1,
            quarantine_after=2 if quarantine else 100,
            retry_backoff_base=0.01,
            respawn_backoff_base=0.01,
        )
        return SupervisedWorkerPool(
            SystemSnapshot.capture(system), 2, policy=policy, fault_plan=plan
        )

    def test_raise_mode_raises_worker_crash(self, system):
        from repro.errors import WorkerCrashError

        with self._pool(system, [0]) as pool:
            with pytest.raises(WorkerCrashError):
                execute_partitioned(system, pool, "papers", QUERY, jobs=2)

    def test_degrade_merges_survivors_and_lists_failures(self, system):
        serial = system.query("papers", QUERY)
        with self._pool(system, [0]) as pool:
            merged = execute_partitioned(
                system, pool, "papers", QUERY, jobs=2,
                on_chunk_failure="degrade",
            )
        assert merged.degraded is True
        assert len(merged.failed_partitions) == 1
        entry = merged.failed_partitions[0]
        assert entry["partition"] == 0
        assert entry["error"] == "WorkerCrashError"
        assert entry["documents"] > 0
        assert entry["attempts"] == 2
        # The surviving chunk's results are intact (a strict subset of
        # serial: the failed chunk's documents are missing, nothing else).
        survivors = set(result_texts(merged))
        assert survivors and survivors < set(result_texts(serial))

    def test_degraded_report_round_trips(self, system):
        with self._pool(system, [0]) as pool:
            merged = execute_partitioned(
                system, pool, "papers", QUERY, jobs=2,
                on_chunk_failure="degrade",
            )
        rebuilt = ExecutionReport.from_dict(merged.to_dict())
        assert rebuilt.degraded is True
        assert rebuilt.failed_partitions == merged.failed_partitions

    def test_all_chunks_failed_still_raises(self, system):
        from repro.errors import WorkerCrashError

        with self._pool(system, [0, 1]) as pool:
            with pytest.raises(WorkerCrashError):
                execute_partitioned(
                    system, pool, "papers", QUERY, jobs=2,
                    on_chunk_failure="degrade",
                )

    def test_quarantined_chunk_degrades_as_poison(self, system):
        with self._pool(system, [1], quarantine=True) as pool:
            merged = execute_partitioned(
                system, pool, "papers", QUERY, jobs=2,
                on_chunk_failure="degrade",
            )
        assert merged.failed_partitions[0]["error"] == "PoisonTaskError"

    def test_server_degrade_partial_knob(self, system):
        from repro import faults
        from repro.errors import WorkerCrashError
        from repro.serving import (
            QueryRequest,
            QueryServer,
            RetryPolicy,
        )

        plan = faults.FaultPlan(
            rules=(
                faults.FaultRule(kind=faults.KILL, tasks=(0,), attempts=None),
            )
        )
        policy = RetryPolicy(
            max_retries=1,
            quarantine_after=100,
            retry_backoff_base=0.01,
            respawn_backoff_base=0.01,
        )
        request = QueryRequest(query=QUERY, collection="papers", jobs=2)
        with QueryServer(
            system, workers=2, policy=policy, fault_plan=plan,
            degrade_partial=True,
        ) as server:
            report = server.execute(request)
            assert report.degraded and report.failed_partitions
        with QueryServer(
            system, workers=2, policy=policy, fault_plan=plan
        ) as server:
            with pytest.raises(WorkerCrashError):
                server.execute(request)
