"""Supervised pool: backoff, retries, quarantine, breaker, recovery."""

import time

import pytest

from repro import faults
from repro.errors import (
    CircuitOpenError,
    PoisonTaskError,
    ServerOverloadedError,
    ServingError,
    WorkerCrashError,
)
from repro.faults import FaultPlan, FaultRule
from repro.serving import (
    QueryRequest,
    QueryServer,
    RetryPolicy,
    SupervisedWorkerPool,
)
from repro.serving.pool import reconstruct_failure
from repro.serving.snapshot import SystemSnapshot
from repro.serving.supervisor import CircuitBreaker, backoff_delay
from repro.xmldb.serializer import serialize

from .conftest import make_system

QUERY = 'paper(author ~ "Author 1")'

#: Fast-failure policy for tests: near-zero backoff, quick respawns.
FAST = RetryPolicy(
    retry_backoff_base=0.01,
    retry_backoff_cap=0.05,
    respawn_backoff_base=0.01,
    respawn_backoff_cap=0.05,
)


def make_task(query=QUERY, guard=None):
    return {
        "query": query,
        "collection": "papers",
        "sl_variables": (),
        "right_collection": None,
        "document_keys": None,
        "guard": guard,
        "collect_metrics": False,
        "trace": False,
    }


def result_texts(report):
    return [serialize(tree) for tree in report.results]


@pytest.fixture(scope="module")
def snapshot():
    return SystemSnapshot.capture(make_system())


@pytest.fixture(scope="module")
def serial_count(snapshot):
    return len(snapshot.system.query("papers", QUERY).results)


class TestBackoffDelay:
    def test_doubles_from_base(self):
        assert backoff_delay(0.1, 10.0, 0) == pytest.approx(0.1)
        assert backoff_delay(0.1, 10.0, 1) == pytest.approx(0.2)
        assert backoff_delay(0.1, 10.0, 3) == pytest.approx(0.8)

    def test_caps(self):
        assert backoff_delay(0.1, 1.0, 10) == 1.0
        assert backoff_delay(0.1, 1.0, 1000) == 1.0  # no overflow past cap

    def test_zero_base_is_no_delay(self):
        assert backoff_delay(0.0, 1.0, 5) == 0.0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ServingError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ServingError):
            RetryPolicy(quarantine_after=0)
        with pytest.raises(ServingError):
            RetryPolicy(hard_timeout=0.0)
        with pytest.raises(ServingError):
            RetryPolicy(max_crash_rate=0.0)

    def test_hard_timeout_explicit_wins(self):
        policy = RetryPolicy(hard_timeout=3.0)
        assert policy.task_hard_timeout({"guard": (1.0, None, None)}) == 3.0

    def test_hard_timeout_derived_from_guard(self):
        policy = RetryPolicy(hard_timeout_grace=2.0)
        assert policy.task_hard_timeout({"guard": (2.0, None, None)}) == 5.0

    def test_no_deadline_means_unbounded(self):
        policy = RetryPolicy()
        assert policy.task_hard_timeout({"guard": None}) is None
        assert policy.task_hard_timeout({"guard": (None, 100, None)}) is None


class TestCircuitBreaker:
    def _breaker(self, clock, rate=0.5):
        return CircuitBreaker(
            rate, window=8, min_events=4, cooldown=10.0, clock=clock
        )

    def test_closed_admits(self):
        breaker = self._breaker(lambda: 0.0)
        breaker.admit()
        assert breaker.state == "closed"

    def test_trips_above_threshold_after_min_events(self):
        breaker = self._breaker(lambda: 0.0)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "closed"  # below min_events
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError) as info:
            breaker.admit()
        assert isinstance(info.value, ServerOverloadedError)
        assert info.value.retry_after == pytest.approx(10.0)

    def test_cooldown_then_half_open_success_closes(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(4):
            breaker.record_failure()
        now[0] = 10.5
        breaker.admit()  # half-open: no raise
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.admit()

    def test_half_open_failure_retrips_immediately(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(4):
            breaker.record_failure()
        now[0] = 10.5
        breaker.admit()
        breaker.record_failure()  # one failure half-open: trip again
        assert breaker.state == "open"
        assert breaker.trips == 2
        with pytest.raises(CircuitOpenError):
            breaker.admit()

    def test_disabled_never_trips(self):
        breaker = CircuitBreaker(None, window=4, min_events=1, cooldown=1.0)
        for _ in range(16):
            breaker.record_failure()
        breaker.admit()
        assert breaker.trips == 0


class TestSupervisedPool:
    def test_plain_batch_matches_serial(self, snapshot, serial_count):
        with SupervisedWorkerPool(snapshot, 2, policy=FAST) as pool:
            out = pool.run_batch([make_task() for _ in range(4)])
        assert [o["report"]["result_count"] for o in out] == [serial_count] * 4

    def test_kill_mid_batch_recovers_identically(self, snapshot, serial_count):
        plan = FaultPlan(rules=(FaultRule(kind=faults.KILL, tasks=(1,)),))
        with SupervisedWorkerPool(
            snapshot, 2, policy=FAST, fault_plan=plan
        ) as pool:
            out = pool.run_batch([make_task() for _ in range(4)])
            stats = pool.stats()
        assert [o["report"]["result_count"] for o in out] == [serial_count] * 4
        assert out[1]["attempts"] == 2
        assert stats["crashes"] == 1 and stats["retries"] == 1

    def test_retries_exhaust_into_worker_crash_error(self, snapshot):
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.KILL, tasks=(0,), attempts=None),)
        )
        policy = RetryPolicy(
            max_retries=1,
            quarantine_after=10,
            retry_backoff_base=0.01,
            respawn_backoff_base=0.01,
        )
        with SupervisedWorkerPool(
            snapshot, 2, policy=policy, fault_plan=plan
        ) as pool:
            out = pool.run_batch([make_task(), make_task()])
        assert out[0]["failure"][0] == "crash"
        assert "report" in out[1]
        exc = reconstruct_failure(out[0]["failure"], query=QUERY)
        assert isinstance(exc, WorkerCrashError)
        assert exc.attempts == 2

    def test_poison_task_quarantined(self, snapshot):
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.KILL, tasks=(0,), attempts=None),)
        )
        policy = RetryPolicy(
            max_retries=10,
            quarantine_after=2,
            retry_backoff_base=0.01,
            respawn_backoff_base=0.01,
        )
        with SupervisedWorkerPool(
            snapshot, 2, policy=policy, fault_plan=plan
        ) as pool:
            out = pool.run_batch([make_task(), make_task()])
            stats = pool.stats()
        assert out[0]["failure"] == ("poison", QUERY, 2)
        assert isinstance(reconstruct_failure(out[0]["failure"]), PoisonTaskError)
        assert stats["quarantined"] == 1
        assert "report" in out[1]

    def test_hung_worker_killed_and_task_recovers(self, snapshot, serial_count):
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.HANG, tasks=(0,), seconds=60.0),)
        )
        policy = RetryPolicy(
            hard_timeout=0.5,
            retry_backoff_base=0.01,
            respawn_backoff_base=0.01,
        )
        with SupervisedWorkerPool(
            snapshot, 2, policy=policy, fault_plan=plan
        ) as pool:
            started = time.monotonic()
            out = pool.run_batch([make_task(), make_task()])
            elapsed = time.monotonic() - started
            stats = pool.stats()
        assert [o["report"]["result_count"] for o in out] == [serial_count] * 2
        assert stats["hard_timeouts"] == 1
        assert elapsed < 30.0  # recovered, did not wait out the hang

    def test_corrupted_response_retried(self, snapshot, serial_count):
        plan = FaultPlan(rules=(FaultRule(kind=faults.CORRUPT, tasks=(0,)),))
        with SupervisedWorkerPool(
            snapshot, 2, policy=FAST, fault_plan=plan
        ) as pool:
            out = pool.run_batch([make_task()])
            stats = pool.stats()
        assert out[0]["report"]["result_count"] == serial_count
        assert out[0]["attempts"] == 2
        # The worker survives a corrupt response: no respawn needed.
        assert stats["crashes"] == 1 and stats["respawns"] == 0

    def test_respawn_after_kill(self, snapshot, serial_count):
        plan = FaultPlan(rules=(FaultRule(kind=faults.KILL, tasks=(0,)),))
        with SupervisedWorkerPool(
            snapshot, 2, policy=FAST, fault_plan=plan
        ) as pool:
            pool.run_batch([make_task() for _ in range(2)])
            # The next batch forces the dead slot back into service.
            out = pool.run_batch([make_task() for _ in range(4)])
            stats = pool.stats()
            pids = pool.worker_pids()
        assert [o["report"]["result_count"] for o in out] == [serial_count] * 4
        assert stats["respawns"] >= 1
        assert stats["respawn_seconds"]
        assert all(pid is not None for pid in pids)

    def test_breaker_sheds_load_across_batches(self, snapshot):
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.KILL, rate=1.0, attempts=None),)
        )
        policy = RetryPolicy(
            max_retries=0,
            quarantine_after=100,
            max_crash_rate=0.5,
            breaker_window=4,
            breaker_min_events=2,
            breaker_cooldown=60.0,
            retry_backoff_base=0.01,
            respawn_backoff_base=0.01,
        )
        with SupervisedWorkerPool(
            snapshot, 2, policy=policy, fault_plan=plan
        ) as pool:
            out = pool.run_batch([make_task(), make_task()])
            assert all(o["failure"][0] == "crash" for o in out)
            assert pool.breaker.state == "open"
            with pytest.raises(CircuitOpenError):
                pool.run_batch([make_task()])

    def test_closed_pool_rejects_batches(self, snapshot):
        pool = SupervisedWorkerPool(snapshot, 1, policy=FAST)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ServingError):
            pool.run_batch([make_task()])

    def test_close_is_bounded_with_hung_worker(self, snapshot):
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.HANG, tasks=(0,), seconds=60.0),)
        )
        pool = SupervisedWorkerPool(snapshot, 1, fault_plan=plan)
        # Hang the worker without waiting for the batch: dispatch by hand.
        task = dict(make_task())
        task.update({"_index": 0, "_fault_seq": 0, "_fault_attempt": 0})
        task["faults"] = plan.to_spec()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            worker = pool._workers[0]
            if worker.ready and worker.alive:
                break
            message = pool._next_response()
            if message is not None:
                pool._handle_message(
                    message, [task], [None], [0], [0], [0.0], [], []
                )
        worker.requests.put(task)
        started = time.monotonic()
        pool.close(timeout=1.0)
        assert time.monotonic() - started < 10.0
        assert not worker.process.is_alive()

    def test_invalid_worker_count(self, snapshot):
        with pytest.raises(ServingError):
            SupervisedWorkerPool(snapshot, 0)


class TestServerIntegration:
    def test_server_defaults_to_supervised(self, snapshot):
        system = snapshot.system
        with QueryServer(system, workers=2, default_collection="papers") as server:
            assert isinstance(server.pool, SupervisedWorkerPool)
            outcomes = server.execute_many([QUERY, QUERY])
        assert all(outcome.ok for outcome in outcomes)

    def test_unsupervised_opt_out(self, snapshot):
        system = snapshot.system
        with QueryServer(
            system, workers=1, default_collection="papers", supervised=False
        ) as server:
            assert not isinstance(server.pool, SupervisedWorkerPool)
            assert server.execute_many([QUERY])[0].ok

    def test_refresh_keeps_supervision_and_policy(self, snapshot):
        system = snapshot.system
        with QueryServer(
            system, workers=1, default_collection="papers", policy=FAST
        ) as server:
            server.refresh()
            assert isinstance(server.pool, SupervisedWorkerPool)
            assert server.pool.policy is FAST
            assert server.execute_many([QUERY])[0].ok

    def test_crash_error_carries_context(self, snapshot):
        system = snapshot.system
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.KILL, tasks=(0,), attempts=None),)
        )
        policy = RetryPolicy(
            max_retries=0,
            quarantine_after=100,
            retry_backoff_base=0.01,
            respawn_backoff_base=0.01,
        )
        with QueryServer(
            system,
            workers=2,
            default_collection="papers",
            policy=policy,
            fault_plan=plan,
        ) as server:
            outcome = server.execute_many([QUERY])[0]
        assert isinstance(outcome.error, WorkerCrashError)
        assert outcome.error.worker_query == QUERY
