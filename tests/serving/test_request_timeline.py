"""Acceptance: one request's cross-process timeline survives a worker
kill and is reconstructable from the store's telemetry sinks.

A supervised batch runs with a fault plan that SIGKILLs the worker on
the first task's first attempt.  Every outcome must come back stamped
with its request id, the crash/retry/respawn lifecycle events must
carry the same id, and ``db trace --request <id>`` must replay the
whole story — submit, crash, retry, respawn, and the final query with
its verify span — from the files alone.
"""

import json

import pytest

from repro import faults
from repro.cli import main
from repro.faults import FaultPlan, FaultRule
from repro.obs import (
    EVENTS_FILENAME,
    JsonLinesSink,
    for_root,
    obs_directory,
)
from repro.serving import QueryServer, RetryPolicy

from .conftest import make_system

QUERY = 'paper(author ~ "Author 1")'

FAST = RetryPolicy(
    retry_backoff_base=0.01,
    retry_backoff_cap=0.05,
    respawn_backoff_base=0.01,
    respawn_backoff_cap=0.05,
)

#: Kill the worker on task 0's first attempt only: the retry recovers.
KILL_FIRST = FaultPlan(
    rules=(FaultRule(kind=faults.KILL, tasks=(0,), attempts=(0,)),)
)


@pytest.fixture(scope="module")
def timeline_root(tmp_path_factory):
    """Run the faulted batch once; every test inspects its telemetry."""
    root = tmp_path_factory.mktemp("store")
    system = make_system()
    # Threshold 0: every query is "slow", so the terminal serving.query
    # entry always lands in the slow log with its span tree attached.
    system.set_observability(for_root(root, slow_query_seconds=0.0))
    with QueryServer(
        system,
        workers=2,
        default_collection="papers",
        policy=FAST,
        fault_plan=KILL_FIRST,
    ) as server:
        outcomes = server.execute_many([QUERY, QUERY, QUERY])
        # A second batch forces the killed slot back into service in
        # case the first drained before the respawn backoff elapsed.
        server.execute_many([QUERY])
    return root, outcomes


def read_events(root):
    return list(JsonLinesSink(obs_directory(root) / EVENTS_FILENAME).read())


class TestOutcomeStamping:
    def test_every_outcome_carries_a_unique_request_id(self, timeline_root):
        _, outcomes = timeline_root
        assert all(outcome.ok for outcome in outcomes)
        ids = [outcome.request_id for outcome in outcomes]
        assert all(ids)
        assert len(set(ids)) == len(ids)
        assert all(
            outcome.report.request_id == outcome.request_id
            for outcome in outcomes
        )

    def test_report_to_dict_includes_request_id(self, timeline_root):
        _, outcomes = timeline_root
        payload = outcomes[0].report.to_dict()
        assert payload["request_id"] == outcomes[0].request_id


class TestLifecycleEvents:
    def test_crash_retry_respawn_carry_the_killed_request_id(
        self, timeline_root
    ):
        root, outcomes = timeline_root
        rid = outcomes[0].request_id
        by_kind = {}
        for entry in read_events(root):
            if entry.get("request_id") == rid:
                by_kind.setdefault(entry["event"], []).append(entry)
        for kind in (
            "serving.submit",
            "serving.crash",
            "serving.retry",
            "serving.respawn",
            "serving.query",
        ):
            assert by_kind.get(kind), f"no {kind} event for request {rid}"
        assert by_kind["serving.query"][-1]["ok"] is True
        assert by_kind["serving.query"][-1]["attempts"] == 2

    def test_unfaulted_requests_see_no_crash_events(self, timeline_root):
        root, outcomes = timeline_root
        rid = outcomes[1].request_id
        kinds = {
            entry["event"]
            for entry in read_events(root)
            if entry.get("request_id") == rid
        }
        assert "serving.crash" not in kinds
        assert "serving.submit" in kinds and "serving.query" in kinds


class TestDbTraceRequest:
    def test_timeline_covers_submit_retry_respawn_verify(
        self, timeline_root, capsys
    ):
        root, outcomes = timeline_root
        rid = outcomes[0].request_id
        assert main(["db", "trace", str(root), "--request", rid]) == 0
        out = capsys.readouterr().out
        assert f"# request {rid}" in out
        positions = [
            out.index(step)
            for step in (
                "serving.submit",
                "serving.crash",
                "serving.retry",
                "serving.query",
            )
        ]
        assert positions == sorted(positions)  # wall-clock order
        assert "serving.respawn" in out
        # The slow-log trace rides along: the worker's span tree ends in
        # the verify stage, completing submit -> retry -> respawn ->
        # verify across process boundaries.
        assert "query.selection" in out
        assert "verify" in out

    def test_json_timeline_is_machine_readable(self, timeline_root, capsys):
        root, outcomes = timeline_root
        rid = outcomes[0].request_id
        assert main(
            ["db", "trace", str(root), "--request", rid, "--json"]
        ) == 0
        entries = json.loads(capsys.readouterr().out)
        assert all(entry["request_id"] == rid for entry in entries)
        kinds = {entry["event"] for entry in entries}
        assert {"serving.submit", "serving.crash", "serving.retry",
                "serving.query"} <= kinds
        (terminal,) = [
            entry for entry in entries
            if entry["event"] == "serving.query" and entry.get("trace")
        ]
        assert terminal["trace"]["name"] == "query.selection"

    def test_unknown_request_id_fails_cleanly(self, timeline_root, capsys):
        root, _ = timeline_root
        assert main(
            ["db", "trace", str(root), "--request", "deadbeefdeadbeef"]
        ) == 1
        assert "no telemetry recorded" in capsys.readouterr().err
