"""The query server: batches, admission, budgets, staleness, refresh."""

import pytest

from repro.errors import (
    ReproError,
    ResourceExhaustedError,
    ServerOverloadedError,
    ServingError,
    SnapshotStaleError,
)
from repro.guard import ResourceGuard
from repro.obs.metrics import REGISTRY
from repro.serving import (
    GuardSpec,
    QueryRequest,
    QueryServer,
    execute_many,
)
from repro.xmldb.serializer import serialize

from .conftest import make_system

QUERY = 'paper(author ~ "Author 1")'
OTHER = 'paper(author ~ "Author 2")'


def result_texts(report):
    return [serialize(tree) for tree in report.results]


class TestGuardSpec:
    def test_unlimited_builds_no_guard(self):
        spec = GuardSpec()
        assert spec.unlimited
        assert spec.build() is None

    def test_limits_build_matching_guard(self):
        spec = GuardSpec(deadline_seconds=1.5, max_steps=10, max_results=5)
        guard = spec.build()
        assert guard.deadline_seconds == 1.5
        assert guard.max_steps == 10
        assert guard.max_results == 5

    def test_from_guard_roundtrip(self):
        guard = ResourceGuard(
            deadline_seconds=2.0, max_results=3, max_steps=100
        )
        spec = GuardSpec.from_guard(guard)
        assert spec.as_tuple() == (2.0, 100, 3)
        assert GuardSpec.from_guard(None) is None


class TestBatchExecution:
    def test_batch_matches_serial(self, system, server):
        serial = {
            QUERY: result_texts(system.query("papers", QUERY)),
            OTHER: result_texts(system.query("papers", OTHER)),
        }
        outcomes = server.execute_many([QUERY, OTHER, QUERY])
        assert [outcome.request.query for outcome in outcomes] == [
            QUERY, OTHER, QUERY,
        ]
        for outcome in outcomes:
            assert outcome.ok
            assert result_texts(outcome.report) == serial[outcome.request.query]
            assert outcome.seconds >= 0

    def test_empty_batch(self, server):
        assert server.execute_many([]) == []

    def test_per_query_errors_are_captured_not_raised(self, server):
        outcomes = server.execute_many([QUERY, "paper(((", OTHER])
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ReproError)
        with pytest.raises(ReproError):
            outcomes[1].raise_for_error()

    def test_budget_violation_is_typed(self, system):
        spec = GuardSpec(max_steps=1)
        with QueryServer(
            system, workers=1, default_collection="papers", default_guard=spec
        ) as server:
            outcome = server.execute_many([QUERY])[0]
        assert isinstance(outcome.error, ResourceExhaustedError)

    def test_request_guard_overrides_default(self, system):
        with QueryServer(
            system,
            workers=1,
            default_collection="papers",
            default_guard=GuardSpec(max_steps=1),
        ) as server:
            request = QueryRequest(
                query=QUERY,
                collection="papers",
                guard=GuardSpec(max_steps=10_000_000),
            )
            outcome = server.execute_many([request])[0]
        assert outcome.ok, outcome.error

    def test_missing_collection_is_a_usage_error(self, system):
        with QueryServer(system, workers=1) as server:
            with pytest.raises(ServingError, match="default_collection"):
                server.execute_many([QUERY])


class TestAdmission:
    def test_oversized_batch_is_rejected(self, system):
        with QueryServer(
            system, workers=1, max_pending=2, default_collection="papers"
        ) as server:
            with pytest.raises(ServerOverloadedError) as excinfo:
                server.execute_many([QUERY] * 3)
            assert excinfo.value.pending == 3
            assert excinfo.value.limit == 2
            # A batch at the bound is admitted.
            outcomes = server.execute_many([QUERY] * 2)
            assert all(outcome.ok for outcome in outcomes)

    def test_invalid_max_pending(self, system):
        with pytest.raises(ServingError):
            QueryServer(system, max_pending=0)


class TestStalenessAndRefresh:
    def test_stale_server_rejects_until_refresh(self):
        system = make_system(count=4)
        server = QueryServer(system, workers=1, default_collection="papers")
        try:
            assert server.execute_many([QUERY])[0].ok
            system.database.get_collection("papers").add_document(
                "extra", "<paper><title>New</title><author>Author 1</author></paper>"
            )
            with pytest.raises(SnapshotStaleError):
                server.execute_many([QUERY])
            server.refresh()
            outcome = server.execute_many([QUERY])[0]
            assert outcome.ok
            # The refreshed pool sees the new document.
            serial = system.query("papers", QUERY)
            assert result_texts(outcome.report) == result_texts(serial)
        finally:
            server.close()

    def test_closed_server_rejects(self, system):
        server = QueryServer(system, workers=1, default_collection="papers")
        server.close()
        with pytest.raises(ServingError, match="closed"):
            server.execute_many([QUERY])


class TestExecute:
    def test_execute_returns_report(self, system, server):
        report = server.execute(QUERY)
        assert result_texts(report) == result_texts(
            system.query("papers", QUERY)
        )

    def test_execute_raises_captured_error(self, server):
        with pytest.raises(ReproError):
            server.execute("paper(((")

    def test_execute_partitions_with_jobs(self, system, server):
        report = server.execute(QueryRequest(query=QUERY, jobs=2))
        assert result_texts(report) == result_texts(
            system.query("papers", QUERY)
        )


class TestMetrics:
    def test_serving_metrics_accumulate(self, system):
        REGISTRY.reset()
        with QueryServer(
            system, workers=1, default_collection="papers"
        ) as server:
            server.execute_many([QUERY, OTHER])
        snapshot = REGISTRY.snapshot()
        assert snapshot["serving.queries"]["value"] == 2
        assert snapshot["serving.batches"]["value"] == 1
        assert snapshot["serving.batch_seconds"]["count"] == 1
        assert snapshot["serving.query_seconds"]["count"] == 2
        REGISTRY.reset()

    def test_worker_metrics_are_absorbed(self, system):
        REGISTRY.reset()
        with QueryServer(
            system, workers=1, default_collection="papers"
        ) as server:
            server.execute_many([QUERY])
        snapshot = REGISTRY.snapshot()
        # Work done inside the worker process is visible in the parent
        # registry — e.g. the xpath query-cache counters the workers'
        # compiles emitted.
        absorbed = [
            name
            for name in snapshot
            if not name.startswith("serving.")
        ]
        assert absorbed, snapshot.keys()
        REGISTRY.reset()


class TestModuleLevelExecuteMany:
    def test_one_shot_batch(self, system):
        outcomes = execute_many(
            system, [QUERY, OTHER], workers=2, default_collection="papers"
        )
        assert len(outcomes) == 2
        assert all(outcome.ok for outcome in outcomes)
        serial = system.query("papers", QUERY)
        assert result_texts(outcomes[0].report) == result_texts(serial)
