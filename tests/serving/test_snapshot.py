"""System snapshots: capture, staleness, and the pickle round trip."""

import pytest

from repro.errors import ServingError
from repro.core.system import TossSystem
from repro.serving import SystemSnapshot
from repro.serving.snapshot import FORK, PICKLE, default_mode
from repro.xmldb.serializer import serialize

from .conftest import make_system

QUERY = 'paper(author ~ "Author 1")'


def result_texts(report):
    return [serialize(tree) for tree in report.results]


class TestCapture:
    def test_unbuilt_system_is_rejected(self):
        system = TossSystem()
        system.add_instance("papers", ["<paper><title>X</title></paper>"])
        with pytest.raises(ServingError, match="build"):
            SystemSnapshot.capture(system)

    def test_unknown_mode_is_rejected(self, system):
        with pytest.raises(ServingError, match="unknown snapshot mode"):
            SystemSnapshot.capture(system, mode="teleport")

    def test_default_mode_is_fork_on_posix(self, system):
        assert default_mode() in (FORK, PICKLE)
        snapshot = SystemSnapshot.capture(system)
        assert snapshot.mode == default_mode()

    def test_fork_capture_has_no_payload(self, system):
        snapshot = SystemSnapshot.capture(system, mode=FORK)
        assert snapshot.payload is None
        assert snapshot.system is system

    def test_pickle_capture_builds_payload(self, system):
        snapshot = SystemSnapshot.capture(system, mode=PICKLE)
        assert snapshot.payload is not None
        assert set(snapshot.payload["collections"]) == {"papers"}
        assert snapshot.payload["measure"] == system.measure.name


class TestStaleness:
    def test_fresh_by_default(self, system):
        assert not SystemSnapshot.capture(system, mode=FORK).stale()

    def test_add_document_stales(self):
        system = make_system(count=4)
        snapshot = SystemSnapshot.capture(system, mode=FORK)
        system.database.get_collection("papers").add_document(
            "extra", "<paper><title>New</title></paper>"
        )
        assert snapshot.stale()

    def test_remove_document_stales(self):
        system = make_system(count=4)
        snapshot = SystemSnapshot.capture(system, mode=FORK)
        system.database.get_collection("papers").remove_document("papers-0")
        assert snapshot.stale()

    def test_generation_signature_is_per_collection(self):
        system = make_system(count=3)
        before = system.database.generation_signature()
        system.database.get_collection("papers").add_document(
            "extra", "<paper><title>New</title></paper>"
        )
        after = system.database.generation_signature()
        assert dict(before)["papers"] + 1 == dict(after)["papers"]


class TestRestore:
    def test_fork_snapshot_does_not_restore(self, system):
        snapshot = SystemSnapshot.capture(system, mode=FORK)
        with pytest.raises(ServingError, match="inheritance"):
            snapshot.restore()

    def test_pickle_restore_answers_identically(self, system):
        serial = system.query("papers", QUERY)
        restored = SystemSnapshot.capture(system, mode=PICKLE).restore()
        report = restored.query("papers", QUERY)
        assert result_texts(report) == result_texts(serial)
        assert report.degraded == serial.degraded

    def test_restored_system_preserves_document_order(self, system):
        restored = SystemSnapshot.capture(system, mode=PICKLE).restore()
        original = system.database.get_collection("papers")
        copy = restored.database.get_collection("papers")
        assert list(copy.keys()) == list(original.keys())

    def test_restored_system_preserves_configuration(self, system):
        restored = SystemSnapshot.capture(system, mode=PICKLE).restore()
        assert restored.epsilon == system.epsilon
        assert restored.use_index == system.use_index
        assert restored.measure.name == system.measure.name
