"""Unit tests for repro.graphutils."""

import pytest

from repro import graphutils as gu
from repro.errors import HierarchyCycleError


class TestBasics:
    def test_all_nodes_includes_targets(self):
        assert gu.all_nodes({"a": ["b"], "c": []}) == {"a", "b", "c"}

    def test_successors_map_normalises(self):
        graph = gu.successors_map({"a": ["b", "b"], "b": ["c"]})
        assert graph == {"a": {"b"}, "b": {"c"}, "c": set()}

    def test_reverse_graph(self):
        reversed_ = gu.reverse_graph({"a": ["b"], "b": ["c"]})
        assert reversed_ == {"a": set(), "b": {"a"}, "c": {"b"}}

    def test_reachable_from_includes_start(self):
        graph = {"a": ["b"], "b": ["c"], "d": []}
        assert gu.reachable_from(graph, "a") == {"a", "b", "c"}
        assert gu.reachable_from(graph, "d") == {"d"}

    def test_has_path_reflexive(self):
        assert gu.has_path({}, "x", "x")

    def test_has_path_directed(self):
        graph = {"a": ["b"], "b": ["c"]}
        assert gu.has_path(graph, "a", "c")
        assert not gu.has_path(graph, "c", "a")


class TestTransitiveClosure:
    def test_chain(self):
        closure = gu.transitive_closure({"a": ["b"], "b": ["c"]})
        assert closure["a"] == {"b", "c"}
        assert closure["b"] == {"c"}
        assert closure["c"] == set()

    def test_diamond(self):
        graph = {"a": ["b", "c"], "b": ["d"], "c": ["d"]}
        closure = gu.transitive_closure(graph)
        assert closure["a"] == {"b", "c", "d"}

    def test_cycle_membership(self):
        closure = gu.transitive_closure({"a": ["b"], "b": ["a"]})
        assert "a" in closure["a"]  # on a cycle, a reaches itself


class TestCycles:
    def test_acyclic_graph_has_no_cycle(self):
        assert gu.find_cycle({"a": ["b"], "b": ["c"]}) is None
        assert gu.is_acyclic({"a": ["b"], "b": ["c"]})

    def test_finds_simple_cycle(self):
        cycle = gu.find_cycle({"a": ["b"], "b": ["a"]})
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b"}

    def test_finds_self_loop(self):
        cycle = gu.find_cycle({"a": ["a"]})
        assert cycle is not None

    def test_finds_long_cycle_behind_dag_part(self):
        graph = {"r": ["a"], "a": ["b"], "b": ["c"], "c": ["a"]}
        cycle = gu.find_cycle(graph)
        assert cycle is not None
        assert set(cycle) <= {"a", "b", "c"}

    def test_ensure_acyclic_raises_with_cycle_payload(self):
        with pytest.raises(HierarchyCycleError) as info:
            gu.ensure_acyclic({"a": ["b"], "b": ["a"]})
        assert info.value.cycle[0] == info.value.cycle[-1]


class TestTopologicalOrder:
    def test_respects_edges(self):
        graph = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
        order = gu.topological_order(graph)
        position = {node: i for i, node in enumerate(order)}
        for node, targets in graph.items():
            for target in targets:
                assert position[node] < position[target]

    def test_raises_on_cycle(self):
        with pytest.raises(HierarchyCycleError):
            gu.topological_order({"a": ["b"], "b": ["a"]})

    def test_empty_graph(self):
        assert gu.topological_order({}) == []


class TestScc:
    def test_all_singletons_when_acyclic(self):
        components = gu.strongly_connected_components({"a": ["b"], "b": ["c"]})
        assert sorted(len(c) for c in components) == [1, 1, 1]

    def test_merges_cycle(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"], "d": ["a"]}
        components = gu.strongly_connected_components(graph)
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 3]

    def test_reverse_topological_order(self):
        graph = {"a": ["b"], "b": []}
        components = gu.strongly_connected_components(graph)
        # b's component must come before a's.
        assert components[0] == ["b"]

    def test_condensation_dag(self):
        graph = {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c"]}
        dag, membership = gu.condensation(graph)
        assert membership["a"] == membership["b"]
        assert membership["c"] == membership["d"]
        assert membership["a"] != membership["c"]
        assert dag[membership["a"]] == {membership["c"]}
        assert dag[membership["c"]] == set()


class TestTransitiveReduction:
    def test_removes_shortcut(self):
        graph = {"a": ["b", "c"], "b": ["c"]}
        reduced = gu.transitive_reduction(graph)
        assert reduced == {"a": {"b"}, "b": {"c"}, "c": set()}

    def test_keeps_diamond(self):
        graph = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
        reduced = gu.transitive_reduction(graph)
        assert reduced["a"] == {"b", "c"}
        assert reduced["b"] == {"d"}
        assert reduced["c"] == {"d"}

    def test_preserves_reachability(self):
        graph = {1: [2, 3, 4], 2: [3, 4], 3: [4], 4: []}
        reduced = gu.transitive_reduction(graph)
        for source in graph:
            for target in graph:
                assert gu.has_path(graph, source, target) == gu.has_path(
                    reduced, source, target
                )

    def test_rejects_cycles(self):
        with pytest.raises(HierarchyCycleError):
            gu.transitive_reduction({"a": ["b"], "b": ["a"]})


class TestCliques:
    def test_triangle_is_one_clique(self):
        adjacency = gu.undirected_adjacency([("a", "b"), ("b", "c"), ("a", "c")])
        cliques = gu.maximal_cliques(adjacency)
        assert cliques == [frozenset({"a", "b", "c"})]

    def test_path_gives_edges(self):
        adjacency = gu.undirected_adjacency([("a", "b"), ("b", "c")])
        cliques = set(gu.maximal_cliques(adjacency))
        assert cliques == {frozenset({"a", "b"}), frozenset({"b", "c"})}

    def test_isolated_node_is_singleton_clique(self):
        adjacency = {"a": set()}
        assert gu.maximal_cliques(adjacency) == [frozenset({"a"})]

    def test_every_node_appears(self):
        adjacency = gu.undirected_adjacency(
            [("a", "b"), ("c", "d"), ("d", "e"), ("c", "e")]
        )
        adjacency.setdefault("lonely", set())
        cliques = gu.maximal_cliques(adjacency)
        covered = set().union(*cliques)
        assert covered == set(adjacency)

    def test_overlapping_cliques(self):
        # Two triangles sharing an edge.
        adjacency = gu.undirected_adjacency(
            [("a", "b"), ("b", "c"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        cliques = set(gu.maximal_cliques(adjacency))
        assert frozenset({"a", "b", "c"}) in cliques
        assert frozenset({"b", "c", "d"}) in cliques


class TestConnectedComponents:
    def test_two_components(self):
        adjacency = gu.undirected_adjacency([("a", "b"), ("c", "d")])
        components = gu.connected_components_undirected(adjacency)
        assert sorted(sorted(c) for c in components) == [["a", "b"], ["c", "d"]]
