"""The fault-injection harness: determinism, transport, activation."""

import json
import os

import pytest

from repro import faults
from repro.errors import ServingError, SnapshotTransportError
from repro.faults import ENV_VAR, FaultPlan, FaultRule


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ServingError):
            FaultRule(kind="meteor")

    def test_rejects_bad_rate(self):
        with pytest.raises(ServingError):
            FaultRule(kind=faults.KILL, rate=1.5)

    def test_rejects_negative_seconds(self):
        with pytest.raises(ServingError):
            FaultRule(kind=faults.HANG, seconds=-1.0)


class TestFaultPlan:
    def test_rejects_duplicate_kinds(self):
        with pytest.raises(ServingError):
            FaultPlan(
                rules=(
                    FaultRule(kind=faults.KILL, rate=0.5),
                    FaultRule(kind=faults.KILL, rate=0.1),
                )
            )

    def test_explicit_tasks_fire_on_listed_attempts_only(self):
        plan = FaultPlan(rules=(FaultRule(kind=faults.KILL, tasks=(3,)),))
        assert plan.should_fire(faults.KILL, 3, 0)
        assert not plan.should_fire(faults.KILL, 3, 1)  # retry recovers
        assert not plan.should_fire(faults.KILL, 2, 0)

    def test_attempts_none_is_permanent(self):
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.KILL, tasks=(1,), attempts=None),)
        )
        for attempt in range(5):
            assert plan.should_fire(faults.KILL, 1, attempt)

    def test_rate_decisions_are_deterministic(self):
        plan = FaultPlan(
            seed=42, rules=(FaultRule(kind=faults.KILL, rate=0.5),)
        )
        decisions = [plan.should_fire(faults.KILL, seq, 0) for seq in range(64)]
        again = [plan.should_fire(faults.KILL, seq, 0) for seq in range(64)]
        assert decisions == again
        # A 50% rate over 64 coordinates fires somewhere, not everywhere.
        assert any(decisions) and not all(decisions)

    def test_rate_decisions_depend_on_seed(self):
        rule = FaultRule(kind=faults.KILL, rate=0.5)
        a = FaultPlan(seed=1, rules=(rule,))
        b = FaultPlan(seed=2, rules=(rule,))
        assert [a.should_fire(faults.KILL, s, 0) for s in range(64)] != [
            b.should_fire(faults.KILL, s, 0) for s in range(64)
        ]

    def test_retry_rerolls_at_new_coordinates(self):
        plan = FaultPlan(
            seed=0, rules=(FaultRule(kind=faults.KILL, rate=0.5, attempts=None),)
        )
        first = [plan.should_fire(faults.KILL, s, 0) for s in range(64)]
        second = [plan.should_fire(faults.KILL, s, 1) for s in range(64)]
        assert first != second

    def test_spec_round_trip(self):
        plan = FaultPlan(
            seed=9,
            rules=(
                FaultRule(kind=faults.KILL, tasks=(1, 4), attempts=None),
                FaultRule(kind=faults.HANG, rate=0.25, seconds=3.0),
            ),
        )
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_spec_survives_json(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(kind=faults.CORRUPT, tasks=(0,)),))
        assert FaultPlan.from_spec(json.loads(json.dumps(plan.to_spec()))) == plan


class TestActivation:
    def test_inject_publishes_and_restores_env(self):
        plan = FaultPlan(seed=5, rules=(FaultRule(kind=faults.KILL, tasks=(0,)),))
        assert ENV_VAR not in os.environ
        with faults.inject(plan):
            assert faults.plan_from_env() == plan
        assert ENV_VAR not in os.environ
        assert faults.plan_from_env() is None

    def test_inject_restores_previous_value(self):
        os.environ[ENV_VAR] = "previous"
        try:
            with faults.inject(FaultPlan()):
                assert os.environ[ENV_VAR] != "previous"
            assert os.environ[ENV_VAR] == "previous"
        finally:
            os.environ.pop(ENV_VAR, None)

    def test_malformed_env_is_no_plan(self):
        assert faults.plan_from_env({ENV_VAR: "{not json"}) is None
        assert faults.plan_from_env({ENV_VAR: '{"rules": [{"kind": "x"}]}'}) is None
        assert faults.plan_from_env({}) is None

    def test_task_flag_takes_precedence(self):
        env_plan = FaultPlan(seed=1)
        task_plan = FaultPlan(seed=2)
        with faults.inject(env_plan):
            assert faults.plan_from_task({"faults": task_plan.to_spec()}) == task_plan
            assert faults.plan_from_task({}) == env_plan


class TestApplication:
    def test_hang_sleeps_and_corrupt_flag(self):
        plan = FaultPlan(
            rules=(
                FaultRule(kind=faults.HANG, tasks=(0,), seconds=0.0),
                FaultRule(kind=faults.CORRUPT, tasks=(0,)),
            )
        )
        assert faults.apply_task_faults(plan, 0, 0) is True
        assert faults.apply_task_faults(plan, 1, 0) is False
        assert faults.apply_task_faults(None, 0, 0) is False

    def test_transport_fault_raises(self):
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.TRANSPORT, tasks=(0,), attempts=(0,)),)
        )
        with pytest.raises(SnapshotTransportError):
            faults.apply_spawn_faults(plan, 0, 0)
        faults.apply_spawn_faults(plan, 0, 1)  # next spawn re-rolls
        faults.apply_spawn_faults(None, 0, 0)

    def test_corrupt_response_is_recognizably_malformed(self):
        garbage = faults.corrupt_response()
        assert "report" not in garbage and "failure" not in garbage
