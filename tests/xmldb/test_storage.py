"""Unit tests for database directory persistence."""

import json
import os

import pytest

from repro.errors import XmlDbError
from repro.xmldb.database import Database
from repro.xmldb.storage import load_database, save_database

DOC_A = "<dblp><inproceedings key='p1'><title>One</title></inproceedings></dblp>"
DOC_B = "<page><article key='p1'><title>One.</title></article></page>"


@pytest.fixture
def database():
    db = Database()
    db.create_collection("dblp").add_document("doc-a", DOC_A)
    sigmod = db.create_collection("sigmod")
    sigmod.add_document("doc-b", DOC_B)
    sigmod.add_document("weird key/with:chars", DOC_B)
    return db


class TestRoundTrip:
    def test_structure_survives(self, database, tmp_path):
        save_database(database, str(tmp_path / "store"))
        loaded = load_database(str(tmp_path / "store"))
        assert sorted(loaded.collection_names()) == ["dblp", "sigmod"]
        assert len(loaded.get_collection("sigmod")) == 2
        original = database.get_collection("dblp").get_document("doc-a")
        reloaded = loaded.get_collection("dblp").get_document("doc-a")
        assert original.structurally_equal(reloaded)

    def test_queries_survive(self, database, tmp_path):
        save_database(database, str(tmp_path / "store"))
        loaded = load_database(str(tmp_path / "store"))
        titles = [n.text for n in loaded.xpath("dblp", "//title")]
        assert titles == ["One"]

    def test_documents_are_plain_xml_files(self, database, tmp_path):
        root = tmp_path / "store"
        save_database(database, str(root))
        files = list((root / "dblp").iterdir())
        assert len(files) == 1
        assert files[0].suffix == ".xml"
        assert "<title>" in files[0].read_text()

    def test_unsafe_keys_sanitised(self, database, tmp_path):
        root = tmp_path / "store"
        save_database(database, str(root))
        loaded = load_database(str(root))
        assert "weird key/with:chars" in loaded.get_collection("sigmod")

    def test_resave_overwrites(self, database, tmp_path):
        root = str(tmp_path / "store")
        save_database(database, root)
        save_database(database, root)  # idempotent
        loaded = load_database(root)
        assert len(loaded.get_collection("dblp")) == 1

    def test_size_cap_preserved(self, tmp_path):
        db = Database(max_document_bytes=1234)
        db.create_collection("x").max_document_bytes = 99999
        db.get_collection("x").add_document("d", "<a/>")
        save_database(db, str(tmp_path / "s"))
        loaded = load_database(str(tmp_path / "s"))
        assert loaded.max_document_bytes == 1234
        assert loaded.get_collection("x").max_document_bytes == 99999


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(XmlDbError):
            load_database(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(XmlDbError):
            load_database(str(tmp_path))

    def test_bad_format_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": 9}))
        with pytest.raises(XmlDbError):
            load_database(str(tmp_path))
