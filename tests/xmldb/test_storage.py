"""Unit tests for database directory persistence."""

import json
import os

import pytest

from repro.errors import StorageCorruptionError, XmlDbError
from repro.ioutils import sha256_text
from repro.xmldb.database import Database
from repro.xmldb.storage import (
    load_database,
    recover_database,
    save_database,
    verify_database,
)

DOC_A = "<dblp><inproceedings key='p1'><title>One</title></inproceedings></dblp>"
DOC_B = "<page><article key='p1'><title>One.</title></article></page>"


@pytest.fixture
def database():
    db = Database()
    db.create_collection("dblp").add_document("doc-a", DOC_A)
    sigmod = db.create_collection("sigmod")
    sigmod.add_document("doc-b", DOC_B)
    sigmod.add_document("weird key/with:chars", DOC_B)
    return db


class TestRoundTrip:
    def test_structure_survives(self, database, tmp_path):
        save_database(database, str(tmp_path / "store"))
        loaded = load_database(str(tmp_path / "store"))
        assert sorted(loaded.collection_names()) == ["dblp", "sigmod"]
        assert len(loaded.get_collection("sigmod")) == 2
        original = database.get_collection("dblp").get_document("doc-a")
        reloaded = loaded.get_collection("dblp").get_document("doc-a")
        assert original.structurally_equal(reloaded)

    def test_queries_survive(self, database, tmp_path):
        save_database(database, str(tmp_path / "store"))
        loaded = load_database(str(tmp_path / "store"))
        titles = [n.text for n in loaded.xpath("dblp", "//title")]
        assert titles == ["One"]

    def test_documents_are_plain_xml_files(self, database, tmp_path):
        root = tmp_path / "store"
        save_database(database, str(root))
        files = list((root / "dblp").iterdir())
        assert len(files) == 1
        assert files[0].suffix == ".xml"
        assert "<title>" in files[0].read_text()

    def test_unsafe_keys_sanitised(self, database, tmp_path):
        root = tmp_path / "store"
        save_database(database, str(root))
        loaded = load_database(str(root))
        assert "weird key/with:chars" in loaded.get_collection("sigmod")

    def test_resave_overwrites(self, database, tmp_path):
        root = str(tmp_path / "store")
        save_database(database, root)
        save_database(database, root)  # idempotent
        loaded = load_database(root)
        assert len(loaded.get_collection("dblp")) == 1

    def test_size_cap_preserved(self, tmp_path):
        db = Database(max_document_bytes=1234)
        db.create_collection("x").max_document_bytes = 99999
        db.get_collection("x").add_document("d", "<a/>")
        save_database(db, str(tmp_path / "s"))
        loaded = load_database(str(tmp_path / "s"))
        assert loaded.max_document_bytes == 1234
        assert loaded.get_collection("x").max_document_bytes == 99999


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(XmlDbError):
            load_database(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(XmlDbError):
            load_database(str(tmp_path))

    def test_bad_format_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": 9}))
        with pytest.raises(XmlDbError):
            load_database(str(tmp_path))

    def test_bad_on_corruption_value(self, tmp_path):
        with pytest.raises(ValueError):
            load_database(str(tmp_path), on_corruption="shrug")


class TestFilenameCollisions:
    def test_sanitised_keys_get_distinct_files(self, tmp_path):
        db = Database()
        coll = db.create_collection("c")
        # both sanitise to "a_b.xml"; a literal "1-a_b" also collides with
        # the naive numeric-prefix disambiguation
        coll.add_document("a b", "<x>one</x>")
        coll.add_document("a:b", "<x>two</x>")
        coll.add_document("1-a_b", "<x>three</x>")
        coll.add_document("a/b", "<x>four</x>")
        root = str(tmp_path / "s")
        save_database(db, root)
        loaded = load_database(root)
        got = {
            key: loaded.get_collection("c").get_document(key).text
            for key in ("a b", "a:b", "1-a_b", "a/b")
        }
        assert got == {"a b": "one", "a:b": "two", "1-a_b": "three", "a/b": "four"}
        files = [p for p in (tmp_path / "s" / "c").iterdir() if p.suffix == ".xml"]
        assert len(files) == 4


class TestPathTraversal:
    def _store(self, tmp_path):
        db = Database()
        db.create_collection("c").add_document("d", "<a/>")
        root = tmp_path / "s"
        save_database(db, str(root))
        return root

    def _manifest(self, root):
        return json.loads((root / "manifest.json").read_text())

    def test_directory_escape_rejected(self, tmp_path):
        root = self._store(tmp_path)
        manifest = self._manifest(root)
        manifest["collections"]["c"]["directory"] = "../evil"
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(XmlDbError, match="unsafe|escapes"):
            load_database(str(root))

    def test_filename_escape_rejected(self, tmp_path):
        root = self._store(tmp_path)
        manifest = self._manifest(root)
        docs = manifest["collections"]["c"]["documents"]
        docs["d"]["file"] = "../../etc/passwd"
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(XmlDbError, match="unsafe|escapes"):
            load_database(str(root))

    def test_traversal_rejected_even_in_quarantine_mode(self, tmp_path):
        root = self._store(tmp_path)
        manifest = self._manifest(root)
        manifest["collections"]["c"]["documents"]["d"]["file"] = "..\\..\\boom.xml"
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(XmlDbError):
            load_database(str(root), on_corruption="quarantine")

    def test_absolute_path_rejected(self, tmp_path):
        root = self._store(tmp_path)
        manifest = self._manifest(root)
        manifest["collections"]["c"]["documents"]["d"]["file"] = "/etc/hostname"
        (root / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(XmlDbError):
            load_database(str(root))


class TestFormatV2:
    def test_manifest_records_checksums(self, database, tmp_path):
        root = tmp_path / "s"
        save_database(database, str(root))
        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["format"] == 2
        entry = manifest["collections"]["dblp"]["documents"]["doc-a"]
        text = (root / "dblp" / entry["file"]).read_text()
        assert entry["sha256"] == sha256_text(text)
        assert entry["bytes"] == len(text.encode("utf-8"))

    def test_format_1_still_loads(self, tmp_path):
        # hand-write a format-1 store: plain {key: filename} document maps,
        # no checksums — what earlier versions of save_database produced
        root = tmp_path / "old"
        (root / "dblp").mkdir(parents=True)
        (root / "dblp" / "doc-a.xml").write_text(DOC_A)
        manifest = {
            "format": 1,
            "max_document_bytes": 5 * 1024 * 1024,
            "collections": {
                "dblp": {
                    "directory": "dblp",
                    "documents": {"doc-a": "doc-a.xml"},
                    "max_document_bytes": 5 * 1024 * 1024,
                }
            },
        }
        (root / "manifest.json").write_text(json.dumps(manifest))
        loaded = load_database(str(root))
        assert len(loaded.get_collection("dblp")) == 1
        assert loaded.recovery_report.format == 1
        # corruption in a format-1 file is still caught (parse failure)
        (root / "dblp" / "doc-a.xml").write_text("<dblp><broken>")
        with pytest.raises(StorageCorruptionError):
            load_database(str(root))

    def test_checksum_mismatch_raises(self, database, tmp_path):
        root = tmp_path / "s"
        save_database(database, str(root))
        victim = next((root / "dblp").glob("*.xml"))
        # still well-formed XML, so only the checksum can catch it
        victim.write_text(DOC_B)
        with pytest.raises(StorageCorruptionError, match="checksum"):
            load_database(str(root))


class TestVerifyAndRecover:
    def test_verify_clean_store(self, database, tmp_path):
        root = str(tmp_path / "s")
        save_database(database, root)
        report = verify_database(root)
        assert report.ok
        assert report.loaded_documents == 3
        assert report.database is None  # read-only

    def test_verify_reports_without_moving(self, database, tmp_path):
        root = tmp_path / "s"
        save_database(database, str(root))
        victim = next((root / "dblp").glob("*.xml"))
        victim.write_text("garbage")
        report = verify_database(str(root))
        assert not report.ok
        assert len(report.quarantined) == 1
        assert victim.exists()  # verify never moves files
        assert not (root / ".quarantine").exists()

    def test_recover_moves_and_salvages(self, database, tmp_path):
        root = tmp_path / "s"
        save_database(database, str(root))
        victim = next((root / "dblp").glob("*.xml"))
        victim.write_text("garbage")
        report = recover_database(str(root))
        assert report.database is not None
        assert len(report.database.get_collection("sigmod")) == 2
        assert not victim.exists()
        assert len(report.quarantined) == 1
        moved = report.quarantined[0].quarantined_to
        assert moved and os.path.exists(moved)
        assert ".quarantine" in moved

    def test_recover_then_resave_verifies_clean(self, database, tmp_path):
        root = str(tmp_path / "s")
        save_database(database, root)
        victim = next((tmp_path / "s" / "dblp").glob("*.xml"))
        victim.write_text("garbage")
        report = recover_database(root)
        save_database(report.database, root)
        assert verify_database(root).ok
