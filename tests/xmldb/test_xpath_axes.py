"""Unit tests for explicit axes and the extended function library."""

import math

import pytest

from repro.errors import XPathEvaluationError, XPathSyntaxError
from repro.xmldb.parser import parse_document
from repro.xmldb.xpath import evaluate_xpath


@pytest.fixture
def doc():
    return parse_document(
        """
        <library>
          <shelf id="s1">
            <book year="1999"><title>Alpha</title></book>
            <book year="2001"><title>Beta</title></book>
            <book year="2003"><title>Gamma</title></book>
          </shelf>
          <shelf id="s2">
            <book year="2005"><title>Delta</title></book>
          </shelf>
        </library>
        """
    )


class TestNamedAxes:
    def test_child_axis_explicit(self, doc):
        assert len(evaluate_xpath(doc, "/library/child::shelf")) == 2

    def test_descendant_axis(self, doc):
        assert len(evaluate_xpath(doc, "/library/descendant::book")) == 4

    def test_descendant_excludes_self(self, doc):
        assert evaluate_xpath(doc, "//book/descendant::book") == []

    def test_descendant_or_self(self, doc):
        results = evaluate_xpath(doc, "//book/descendant-or-self::book")
        assert len(results) == 4

    def test_ancestor_axis(self, doc):
        results = evaluate_xpath(doc, "//title/ancestor::shelf")
        assert len(results) == 2  # deduplicated

    def test_ancestor_or_self(self, doc):
        # //book[1] selects the first book of each shelf (Alpha, Delta);
        # the union of their ancestor-or-self chains, in document order:
        results = evaluate_xpath(doc, "//book[1]/ancestor-or-self::*")
        tags = [node.tag for node in results]
        assert tags == ["library", "shelf", "book", "shelf", "book"]

    def test_ancestor_position_is_proximity(self, doc):
        # The nearest ancestor is position 1 on a reverse axis.
        results = evaluate_xpath(doc, "//title/ancestor::*[1]")
        assert {node.tag for node in results} == {"book"}

    def test_following_sibling(self, doc):
        results = evaluate_xpath(
            doc, "//book[title='Alpha']/following-sibling::book"
        )
        titles = [node.find_first("title").text for node in results]
        assert titles == ["Beta", "Gamma"]

    def test_preceding_sibling(self, doc):
        results = evaluate_xpath(
            doc, "//book[title='Gamma']/preceding-sibling::book"
        )
        titles = [node.find_first("title").text for node in results]
        assert titles == ["Alpha", "Beta"]

    def test_preceding_sibling_position_is_proximity(self, doc):
        results = evaluate_xpath(
            doc, "//book[title='Gamma']/preceding-sibling::book[1]"
        )
        assert results[0].find_first("title").text == "Beta"

    def test_parent_axis_named(self, doc):
        results = evaluate_xpath(doc, "//title/parent::book")
        assert len(results) == 4

    def test_self_axis_named(self, doc):
        assert len(evaluate_xpath(doc, "//book/self::book")) == 4
        assert evaluate_xpath(doc, "//book/self::shelf") == []

    def test_attribute_axis_named(self, doc):
        values = [a.value for a in evaluate_xpath(doc, "//shelf/attribute::id")]
        assert values == ["s1", "s2"]

    def test_unknown_axis_rejected(self, doc):
        with pytest.raises(XPathSyntaxError):
            evaluate_xpath(doc, "//book/sideways::title")

    def test_bare_colon_rejected(self, doc):
        with pytest.raises(XPathSyntaxError):
            evaluate_xpath(doc, "//ns:book")


class TestStringFunctions:
    def test_substring(self, doc):
        assert evaluate_xpath(doc, "substring('12345', 2)") == "2345"
        assert evaluate_xpath(doc, "substring('12345', 2, 3)") == "234"
        assert evaluate_xpath(doc, "substring('12345', 0, 3)") == "12"
        assert evaluate_xpath(doc, "substring('12345', 1.5, 2.6)") == "234"

    def test_substring_before_after(self, doc):
        assert evaluate_xpath(doc, "substring-before('1999-05', '-')") == "1999"
        assert evaluate_xpath(doc, "substring-after('1999-05', '-')") == "05"
        assert evaluate_xpath(doc, "substring-before('abc', 'z')") == ""
        assert evaluate_xpath(doc, "substring-after('abc', 'z')") == ""

    def test_translate(self, doc):
        assert evaluate_xpath(doc, "translate('bar', 'abc', 'ABC')") == "BAr"
        assert evaluate_xpath(
            doc, "translate('--aaa--', 'abc-', 'ABC')"
        ) == "AAA"

    def test_translate_enables_case_insensitive_contains(self, doc):
        upper = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        lower = "abcdefghijklmnopqrstuvwxyz"
        results = evaluate_xpath(
            doc,
            f"//title[contains(translate(., '{upper}', '{lower}'), 'alpha')]",
        )
        assert len(results) == 1


class TestNumberFunctions:
    def test_sum(self, doc):
        assert evaluate_xpath(doc, "sum(//book/@year)") == 1999 + 2001 + 2003 + 2005

    def test_sum_requires_nodeset(self, doc):
        with pytest.raises(XPathEvaluationError):
            evaluate_xpath(doc, "sum(3)")

    def test_floor_ceiling_round(self, doc):
        assert evaluate_xpath(doc, "floor(2.7)") == 2.0
        assert evaluate_xpath(doc, "ceiling(2.1)") == 3.0
        assert evaluate_xpath(doc, "round(2.5)") == 3.0
        assert evaluate_xpath(doc, "round(-2.5)") == -2.0  # XPath rounds to +inf
        assert math.isnan(evaluate_xpath(doc, "round(number('x'))"))
