"""Unit tests for collections, the database facade and indexes."""

import pytest

from repro.errors import CollectionError, DocumentTooLargeError
from repro.xmldb.collection import Collection
from repro.xmldb.database import Database
from repro.xmldb.indexes import CollectionIndex, DocumentIndex
from repro.xmldb.model import XmlNode
from repro.xmldb.parser import parse_document

DOC = "<dblp><inproceedings><author>A</author><year>1999</year></inproceedings></dblp>"


class TestCollection:
    def test_add_and_get(self):
        collection = Collection("dblp")
        root = collection.add_document("d1", DOC)
        assert collection.get_document("d1") is root
        assert "d1" in collection
        assert len(collection) == 1

    def test_add_parsed_tree(self):
        collection = Collection("dblp")
        tree = parse_document(DOC)
        assert collection.add_document("d1", tree) is tree

    def test_duplicate_key_rejected(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        with pytest.raises(CollectionError):
            collection.add_document("d1", DOC)

    def test_replace_document(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        collection.replace_document("d1", "<other/>")
        assert collection.get_document("d1").tag == "other"

    def test_remove_document(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        collection.remove_document("d1")
        assert "d1" not in collection
        with pytest.raises(CollectionError):
            collection.remove_document("d1")

    def test_missing_document(self):
        with pytest.raises(CollectionError):
            Collection("dblp").get_document("nope")

    def test_size_cap_enforced(self):
        collection = Collection("tiny", max_document_bytes=20)
        with pytest.raises(DocumentTooLargeError) as info:
            collection.add_document("big", DOC)
        assert info.value.limit == 20
        assert info.value.size > 20

    def test_empty_name_rejected(self):
        with pytest.raises(CollectionError):
            Collection("")

    def test_xpath_over_all_documents(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        collection.add_document("d2", DOC.replace("1999", "2000"))
        years = collection.xpath("//year")
        assert sorted(node.text for node in years) == ["1999", "2000"]

    def test_xpath_single_document(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        collection.add_document("d2", DOC.replace("1999", "2000"))
        years = collection.xpath_document("d2", "//year")
        assert [node.text for node in years] == ["2000"]

    def test_statistics(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        assert collection.total_bytes() > 0
        assert collection.total_nodes() == 4


class TestChangelog:
    def test_generation_counts_every_mutation(self):
        collection = Collection("dblp")
        assert collection.generation == 0
        collection.add_document("d1", DOC)
        collection.replace_document("d1", "<other/>")
        collection.remove_document("d1")
        assert collection.generation == 3

    def test_changes_since_replays_in_order(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        base = collection.generation
        collection.add_document("d2", DOC)
        collection.replace_document("d1", "<other/>")
        collection.remove_document("d2")
        assert collection.changes_since(base) == [
            ("add", "d2"),
            ("replace", "d1"),
            ("remove", "d2"),
        ]

    def test_changes_since_current_is_empty(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        assert collection.changes_since(collection.generation) == []

    def test_changes_since_future_generation_is_none(self):
        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        assert collection.changes_since(collection.generation + 1) is None

    def test_changes_since_truncated_ring_is_none(self):
        from repro.xmldb.collection import CHANGELOG_CAPACITY

        collection = Collection("dblp")
        collection.add_document("d1", DOC)
        base = collection.generation
        for _ in range(CHANGELOG_CAPACITY + 1):
            collection.replace_document("d1", DOC)
        assert collection.changes_since(base) is None
        # The ring still reaches recent history.
        assert collection.changes_since(collection.generation - 1) == [
            ("replace", "d1")
        ]


class TestDatabase:
    def test_create_get_drop(self):
        database = Database()
        database.create_collection("dblp")
        assert "dblp" in database
        assert database.get_collection("dblp").name == "dblp"
        database.drop_collection("dblp")
        assert "dblp" not in database
        with pytest.raises(CollectionError):
            database.drop_collection("dblp")

    def test_duplicate_collection_rejected(self):
        database = Database()
        database.create_collection("dblp")
        with pytest.raises(CollectionError):
            database.create_collection("dblp")

    def test_get_or_create(self):
        database = Database()
        first = database.get_or_create_collection("x")
        assert database.get_or_create_collection("x") is first

    def test_unknown_collection(self):
        with pytest.raises(CollectionError):
            Database().get_collection("nope")

    def test_xpath_records_statistics(self):
        database = Database()
        database.create_collection("dblp").add_document("d1", DOC)
        results = database.xpath("dblp", "//author")
        assert len(results) == 1
        assert database.statistics.queries_run == 1
        assert database.statistics.results_returned == 1
        assert database.statistics.total_seconds >= 0
        database.statistics.reset()
        assert database.statistics.queries_run == 0

    def test_query_cache_reuses_compiled(self):
        database = Database()
        assert database.compile("//a") is database.compile("//a")

    def test_query_cache_counts_hits_and_misses(self):
        database = Database()
        database.compile("//a")
        database.compile("//a")
        database.compile("//b")
        assert database.statistics.cache_misses == 2
        assert database.statistics.cache_hits == 1
        database.statistics.reset()
        assert database.statistics.cache_hits == 0
        assert database.statistics.cache_misses == 0

    def test_query_cache_evicts_least_recently_used(self):
        database = Database(query_cache_size=2)
        first = database.compile("//a")
        database.compile("//b")
        database.compile("//a")  # refresh //a: //b is now the LRU entry
        database.compile("//c")  # evicts //b
        assert database.compile("//a") is first
        stale = database.compile("//b")  # recompiled after eviction
        assert stale is not None
        assert database.compile("//b") is stale

    def test_query_cache_bounded_size(self):
        database = Database(query_cache_size=3)
        for i in range(10):
            database.compile(f"//tag{i}")
        assert len(database._query_cache) == 3

    def test_query_cache_disabled_with_zero_size(self):
        database = Database(query_cache_size=0)
        a1 = database.compile("//a")
        a2 = database.compile("//a")
        assert a1 is not a2
        assert len(database._query_cache) == 0

    def test_document_size_limit_propagates(self):
        database = Database(max_document_bytes=10)
        collection = database.create_collection("tiny")
        with pytest.raises(DocumentTooLargeError):
            collection.add_document("big", DOC)

    def test_total_bytes(self):
        database = Database()
        database.create_collection("dblp").add_document("d1", DOC)
        assert database.total_bytes() > 0

    def test_collection_names(self):
        database = Database()
        database.create_collection("a")
        database.create_collection("b")
        assert database.collection_names() == ["a", "b"]


class TestIndexes:
    def test_tag_index(self):
        index = DocumentIndex(parse_document(DOC))
        assert len(index.tags.nodes("author")) == 1
        assert index.tags.count("inproceedings") == 1
        assert index.tags.nodes("missing") == []

    def test_value_index(self):
        index = DocumentIndex(parse_document(DOC))
        assert len(index.values.nodes("year", "1999")) == 1
        assert index.values.nodes("year", "1883") == []
        assert len(index.values.nodes_with_content("A")) == 1

    def test_collection_index_caches(self):
        root = parse_document(DOC)
        index = CollectionIndex()
        assert index.index_for(root) is index.index_for(root)
        index.invalidate(root)
        index.clear()

    def test_distinct_tags_and_contents(self):
        roots = [parse_document(DOC), parse_document("<x><y>A</y></x>")]
        index = CollectionIndex()
        assert "y" in index.distinct_tags(roots)
        contents = list(index.distinct_contents(roots))
        assert contents.count("A") == 1  # de-duplicated
