"""Unit tests for the XPath lexer, parser and engine."""

import math

import pytest

from repro.errors import XPathEvaluationError, XPathSyntaxError
from repro.xmldb.parser import parse_document
from repro.xmldb.xpath import XPathQuery, evaluate_xpath, parse_xpath
from repro.xmldb.xpath.engine import AttributeNode, TextNode
from repro.xmldb.xpath.lexer import tokenize


@pytest.fixture
def doc():
    return parse_document(
        """
        <dblp>
          <inproceedings key="p1">
            <author>Jeffrey D. Ullman</author>
            <author>Second Author</author>
            <title>A Survey of Deductive Database Systems</title>
            <year>1999</year>
            <booktitle>SIGMOD Conference</booktitle>
          </inproceedings>
          <inproceedings key="p2">
            <author>Paolo Ciancarini</author>
            <title>Managing Complex Documents</title>
            <year>2000</year>
            <booktitle>VLDB</booktitle>
          </inproceedings>
          <article key="p3">
            <author>Paolo Ciancarini</author>
            <title>Another One</title>
            <year>1999</year>
          </article>
        </dblp>
        """
    )


def texts(results):
    return [node.text for node in results]


class TestLexer:
    def test_tokenizes_path(self):
        kinds = [t.kind for t in tokenize("//a/b[@k='v']")]
        assert kinds == [
            "DOUBLE_SLASH", "NAME", "SLASH", "NAME", "LBRACKET",
            "AT", "NAME", "EQ", "LITERAL", "RBRACKET", "EOF",
        ]

    def test_numbers_including_decimal(self):
        tokens = tokenize("1 2.5 .75")
        assert [t.value for t in tokens[:-1]] == ["1", "2.5", ".75"]

    def test_comparison_operators(self):
        kinds = [t.kind for t in tokenize("< <= > >= != =")]
        assert kinds[:-1] == ["LT", "LE", "GT", "GE", "NEQ", "EQ"]

    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(XPathSyntaxError) as info:
            tokenize("a $ b")
        assert info.value.position == 2


class TestParser:
    def test_parse_roundtrips_structure(self):
        expr = parse_xpath("//inproceedings[year='1999']/title")
        assert "inproceedings" in str(expr)

    def test_empty_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("   ")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("//a]")

    def test_missing_operand_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("//a[year=]")


class TestPaths:
    def test_absolute_child_path(self, doc):
        assert texts(evaluate_xpath(doc, "/dblp/inproceedings/author"))[0] == (
            "Jeffrey D. Ullman"
        )

    def test_descendant_axis(self, doc):
        assert len(evaluate_xpath(doc, "//author")) == 4

    def test_wildcard(self, doc):
        assert len(evaluate_xpath(doc, "/dblp/*")) == 3

    def test_nested_descendant(self, doc):
        titles = evaluate_xpath(doc, "//inproceedings//title")
        assert len(titles) == 2

    def test_parent_step(self, doc):
        results = evaluate_xpath(doc, "//author/..")
        tags = {node.tag for node in results}
        assert tags == {"inproceedings", "article"}

    def test_self_step(self, doc):
        assert len(evaluate_xpath(doc, "//author/.")) == 4

    def test_root_path(self, doc):
        results = evaluate_xpath(doc, "/")
        assert [node.tag for node in results] == ["dblp"]

    def test_results_in_document_order_without_duplicates(self, doc):
        results = evaluate_xpath(doc, "//inproceedings/* | //author")
        pres = [node.pre for node in results]
        assert pres == sorted(pres)
        assert len(pres) == len(set(pres))


class TestPredicates:
    def test_value_equality(self, doc):
        titles = texts(evaluate_xpath(doc, "//inproceedings[year='1999']/title"))
        assert titles == ["A Survey of Deductive Database Systems"]

    def test_numeric_comparison(self, doc):
        titles = evaluate_xpath(doc, "//inproceedings[year > 1999]/title")
        assert texts(titles) == ["Managing Complex Documents"]

    def test_existence_predicate(self, doc):
        assert len(evaluate_xpath(doc, "//*[booktitle]")) == 2

    def test_position_predicate(self, doc):
        second = evaluate_xpath(doc, "/dblp/inproceedings[2]/author")
        assert texts(second) == ["Paolo Ciancarini"]

    def test_position_function(self, doc):
        first = evaluate_xpath(doc, "/dblp/inproceedings[position()=1]")
        assert first[0].attributes["key"] == "p1"

    def test_last_function(self, doc):
        last = evaluate_xpath(doc, "/dblp/*[last()]")
        assert last[0].attributes["key"] == "p3"

    def test_and_or(self, doc):
        results = evaluate_xpath(
            doc, "//inproceedings[year='1999' and booktitle='SIGMOD Conference']"
        )
        assert len(results) == 1
        results = evaluate_xpath(
            doc, "//*[year='2000' or booktitle='SIGMOD Conference']"
        )
        assert len(results) == 2

    def test_not(self, doc):
        results = evaluate_xpath(doc, "//inproceedings[not(year='1999')]")
        assert results[0].attributes["key"] == "p2"

    def test_nested_path_predicate(self, doc):
        results = evaluate_xpath(
            doc, "//inproceedings[author='Paolo Ciancarini']"
        )
        assert results[0].attributes["key"] == "p2"

    def test_chained_predicates(self, doc):
        results = evaluate_xpath(doc, "//inproceedings[author][year='1999']")
        assert len(results) == 1


class TestAttributesAndText:
    def test_attribute_selection(self, doc):
        keys = evaluate_xpath(doc, "//inproceedings/@key")
        assert [node.value for node in keys] == ["p1", "p2"]
        assert all(isinstance(node, AttributeNode) for node in keys)

    def test_attribute_predicate(self, doc):
        results = evaluate_xpath(doc, "//*[@key='p3']")
        assert results[0].tag == "article"

    def test_attribute_wildcard(self, doc):
        attrs = evaluate_xpath(doc, "//article/@*")
        assert {a.name for a in attrs} == {"key"}

    def test_text_selection(self, doc):
        nodes = evaluate_xpath(doc, "//title/text()")
        assert all(isinstance(node, TextNode) for node in nodes)
        assert nodes[0].string_value().startswith("A Survey")

    def test_text_in_predicate(self, doc):
        results = evaluate_xpath(doc, "//author[text()='Paolo Ciancarini']")
        assert len(results) == 2


class TestFunctions:
    def test_count(self, doc):
        assert evaluate_xpath(doc, "count(//author)") == 4.0

    def test_contains(self, doc):
        results = evaluate_xpath(doc, "//title[contains(., 'Database')]")
        assert len(results) == 1

    def test_starts_with(self, doc):
        results = evaluate_xpath(doc, "//author[starts-with(., 'Paolo')]")
        assert len(results) == 2

    def test_string_length(self, doc):
        assert evaluate_xpath(doc, "string-length('abc')") == 3.0

    def test_normalize_space(self, doc):
        assert evaluate_xpath(doc, "normalize-space('  a   b ')") == "a b"

    def test_concat(self, doc):
        assert evaluate_xpath(doc, "concat('a', 'b', 'c')") == "abc"

    def test_name(self, doc):
        assert evaluate_xpath(doc, "name(//*[@key='p3'])") == "article"

    def test_boolean_casts(self, doc):
        assert evaluate_xpath(doc, "boolean(//article)") is True
        assert evaluate_xpath(doc, "boolean(//nothing)") is False

    def test_number_conversion(self, doc):
        assert evaluate_xpath(doc, "number('12') + 3") == 15.0
        assert math.isnan(evaluate_xpath(doc, "number('abc')"))

    def test_true_false_not(self, doc):
        assert evaluate_xpath(doc, "not(false())") is True

    def test_unknown_function(self, doc):
        with pytest.raises(XPathEvaluationError):
            evaluate_xpath(doc, "frobnicate(1)")


class TestArithmetic:
    def test_basic_ops(self, doc):
        assert evaluate_xpath(doc, "1 + 2 * 3") == 7.0
        assert evaluate_xpath(doc, "(1 + 2) * 3") == 9.0
        assert evaluate_xpath(doc, "7 mod 3") == 1.0
        assert evaluate_xpath(doc, "8 div 2") == 4.0
        assert evaluate_xpath(doc, "-(3)") == -3.0

    def test_division_by_zero(self, doc):
        assert evaluate_xpath(doc, "1 div 0") == math.inf
        assert math.isnan(evaluate_xpath(doc, "0 div 0"))

    def test_nodeset_comparison_existential(self, doc):
        # node-set = string is true if ANY node matches.
        assert evaluate_xpath(doc, "//year = '1999'") is True
        assert evaluate_xpath(doc, "//year = '1883'") is False
        # != is also existential (any node differing).
        assert evaluate_xpath(doc, "//year != '1999'") is True


class TestQueryObject:
    def test_select_elements_filters(self, doc):
        query = XPathQuery("//inproceedings/@key")
        assert query.select_elements(doc) == []

    def test_select_requires_nodeset(self, doc):
        with pytest.raises(XPathEvaluationError):
            XPathQuery("count(//a)").select(doc)

    def test_reusable_across_documents(self, doc):
        other = parse_document("<dblp><inproceedings><title>t</title></inproceedings></dblp>")
        query = XPathQuery("//inproceedings/title")
        assert len(query.select(doc)) == 2
        assert len(query.select(other)) == 1
