"""Columnar document scans: same nodes as the AST engine, or None.

:mod:`repro.xmldb.columnar` compiles the XPath subset the executor's
pattern-to-XPath compiler emits into flat-array scans.  Its contract is
the engine's own answer, node for node and in the same order — and a
clean ``None`` for everything outside the subset, so the collection
falls back to :meth:`XPathQuery.select` transparently.
"""

import pytest

from repro.xmldb.columnar import DocumentColumns, compile_columnar
from repro.xmldb.parser import parse_document
from repro.xmldb.xpath import XPathQuery

DOCUMENT = """
<dblp>
  <inproceedings position="1">
    <author>Jane Roe</author>
    <author>John Doe</author>
    <title>Pattern Trees</title>
    <year>1999</year>
    <booktitle>SIGMOD</booktitle>
  </inproceedings>
  <article>
    <author>Jane Roe</author>
    <title>Ontologies</title>
    <year>2004</year>
    <journal>TODS</journal>
  </article>
  <inproceedings>
    <title>Similarity Queries</title>
    <year>2001</year>
    <booktitle>VLDB</booktitle>
    <cite><title>Pattern Trees</title></cite>
  </inproceedings>
</dblp>
"""

#: The shapes repro.core.executor.compile_pattern_to_xpath generates,
#: plus edge variants (no matches, root tag, star, nesting).
SUPPORTED = [
    "//title",
    "//inproceedings",
    "//dblp",
    "//*",
    "//title[. = 'Pattern Trees']",
    "//title[. = 'No Such Title']",
    "//inproceedings[year]",
    "//inproceedings[year[. = '1999']]",
    "//inproceedings[.//title[. = 'Pattern Trees']]",
    "//inproceedings[(booktitle = 'SIGMOD' or booktitle = 'VLDB')]",
    "//inproceedings[booktitle[(. = 'SIGMOD' or . = 'VLDB')]]",
    "//year[number(.) > 2000]",
    "//year[number(.) >= 1999]",
    "//year[number() < 2000]",
    "//inproceedings[number(year) > 2000]",
    "//*[(name() = 'article' or name() = 'journal')]",
    "//inproceedings[title and year]",
    "//inproceedings[title or journal]",
    "//inproceedings[not(journal)]",
    "//inproceedings[string(.) != '']",
    "//author[. = 'Jane Roe']",
    "//cite[title]",
    "//inproceedings[year != '1999']",
    "//title[. = booktitle]",
    "/dblp/inproceedings/title",
    "/dblp//title",
]

#: Outside the subset: must return None (AST fallback), never wrong rows.
UNSUPPORTED = [
    "//title/text()",
    "//inproceedings/@position",
    "//inproceedings[1]",
    "//inproceedings[last()]",
    "//title | //author",
    "count(//title)",
    "//inproceedings/ancestor::dblp",
]


@pytest.fixture(scope="module")
def root():
    return parse_document(DOCUMENT)


@pytest.fixture(scope="module")
def columns(root):
    return DocumentColumns(root)


@pytest.mark.parametrize("source", SUPPORTED)
def test_matcher_equals_engine(source, root, columns):
    query = XPathQuery(source)
    matcher = compile_columnar(query.expression)
    assert matcher is not None, f"{source!r} fell out of the columnar subset"
    assert matcher(columns) == query.select(root)


@pytest.mark.parametrize("source", UNSUPPORTED)
def test_unsupported_shapes_decline(source):
    query = XPathQuery(source)
    assert compile_columnar(query.expression) is None


def test_matcher_is_cached_on_the_query(root):
    query = XPathQuery("//title")
    first = query.columnar_matcher()
    assert first is not None
    assert query.columnar_matcher() is first


def test_columns_reflect_document_order(root, columns):
    preorder = list(root.iter())
    assert columns.nodes == preorder
    assert [node.tag for node in preorder] == list(columns.tags)
    # end[] is one past the subtree: the root subtree spans every row.
    assert columns.end[0] == len(columns.nodes)


def test_svalues_match_string_value(root, columns):
    for row, node in enumerate(columns.nodes):
        assert columns.svalues[row] == node.string_value()
