"""Unit tests for the collection search index: postings + persistence.

Covers the tentpole's correctness contract: indexes maintained
incrementally equal a from-scratch rebuild, survive a serialisation
round trip, and on any integrity failure (corruption, staleness) are
ignored and rebuilt — never trusted.
"""

import json

import pytest

from repro.xmldb.database import Database
from repro.xmldb.index import (
    CollectionSearchIndex,
    index_content_key,
    index_status,
    load_collection_index,
    save_collection_index,
)
from repro.xmldb.index.store import index_path
from repro.xmldb.storage import build_indexes, load_database, save_database

DOC_A = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <title>Paper One</title>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
</dblp>
"""

DOC_B = """
<dblp>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <title>Paper Two</title>
    <booktitle>VLDB</booktitle>
  </inproceedings>
</dblp>
"""

DOC_C = """
<proceedings>
  <article key="p3">
    <title>Paper One</title>
    <note></note>
  </article>
</proceedings>
"""


@pytest.fixture
def collection():
    db = Database()
    col = db.create_collection("dblp")
    col.add_document("a", DOC_A)
    col.add_document("b", DOC_B)
    col.add_document("c", DOC_C)
    return col


class TestPostings:
    def test_term_lookup_is_exact_and_tag_filterable(self, collection):
        index = collection.search_index()
        assert index.docs_with_term("Paper One") == {"a", "c"}
        assert index.docs_with_term(
            "Paper One", tags=frozenset({"title"})
        ) == {"a", "c"}
        # Tag filter excludes documents carrying the value elsewhere.
        assert index.docs_with_term(
            "J. Smith", tags=frozenset({"title"})
        ) == set()
        assert index.docs_with_term("J. Smith", tags=frozenset({"author"})) == {"a"}
        # No normalisation: a closely related value is a different term.
        assert index.docs_with_term("paper one") == set()

    def test_attribute_values_are_indexed(self, collection):
        index = collection.search_index()
        assert set(index.attribute_postings("p2")) == {"b"}
        paths = index.attribute_postings("p2")["b"]
        assert all(path.endswith("/@key") for path in paths)

    def test_empty_text_is_a_term(self, collection):
        # <note></note> in DOC_C: the planner must be able to probe for
        # the empty string, since verification compares raw node.text.
        index = collection.search_index()
        assert "c" in index.docs_with_term("", tags=frozenset({"note"}))

    def test_structural_probes(self, collection):
        index = collection.search_index()
        assert index.docs_with_any_tag(["article"]) == {"c"}
        assert index.docs_with_pc_pair([("inproceedings", "title")]) == {"a", "b"}
        assert index.docs_with_pc_pair([("dblp", "title")]) == set()
        assert index.docs_with_ad_pair([("dblp", "title")]) == {"a", "b"}

    def test_terms_with_tags(self, collection):
        index = collection.search_index()
        by_title = index.terms_with_tags(frozenset({"title"}))
        assert by_title["Paper One"] == {"a", "c"}
        assert "J. Smith" not in by_title


class TestIncrementalMaintenance:
    def _rebuilt(self, collection):
        fresh = CollectionSearchIndex()
        for key, root in collection.documents():
            fresh.add_document(key, root)
        return fresh

    def test_remove_equals_rebuild(self, collection):
        index = collection.search_index()
        collection.remove_document("b")
        assert index.to_dict() == self._rebuilt(collection).to_dict()
        assert index.docs_with_term("J. Smyth") == set()

    def test_replace_equals_rebuild(self, collection):
        index = collection.search_index()
        collection.replace_document("a", DOC_B)
        assert index.to_dict() == self._rebuilt(collection).to_dict()
        assert index.docs_with_term("J. Smyth") == {"a", "b"}

    def test_add_equals_rebuild(self, collection):
        index = collection.search_index()
        collection.add_document("d", DOC_A)
        assert index.to_dict() == self._rebuilt(collection).to_dict()
        assert index.docs_with_term("J. Smith") == {"a", "d"}

    def test_readd_same_key_sweeps_old_contributions(self, collection):
        index = collection.search_index()
        index.add_document("a", collection.get_document("c"))
        assert "a" not in index.docs_with_term("J. Smith")
        assert index.docs_with_term("Paper One") == {"a", "c"}


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, collection):
        index = collection.search_index()
        payload = json.loads(json.dumps(index.to_dict()))
        restored = CollectionSearchIndex.from_dict(payload)
        assert restored.to_dict() == index.to_dict()
        # Derived structural maps are rebuilt, not serialised.
        assert restored.docs_with_pc_pair([("inproceedings", "title")]) == {
            "a",
            "b",
        }
        assert restored.docs_with_any_tag(["article"]) == {"c"}
        assert restored.stats() == index.stats()

    def test_from_dict_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            CollectionSearchIndex.from_dict({"format": 999})


class TestStorePersistence:
    def test_save_load_round_trip(self, collection, tmp_path):
        index = collection.search_index()
        key = index_content_key("dblp", {"a": "x", "b": "y", "c": "z"})
        save_collection_index(str(tmp_path), "dblp", "dblp", index, key)
        restored = load_collection_index(str(tmp_path), "dblp", "dblp", key)
        assert restored is not None
        assert restored.to_dict() == index.to_dict()

    def test_stale_content_key_is_rejected(self, collection, tmp_path):
        index = collection.search_index()
        key = index_content_key("dblp", {"a": "x"})
        save_collection_index(str(tmp_path), "dblp", "dblp", index, key)
        other = index_content_key("dblp", {"a": "CHANGED"})
        assert load_collection_index(str(tmp_path), "dblp", "dblp", other) is None

    def test_corrupt_file_is_rejected(self, collection, tmp_path):
        index = collection.search_index()
        key = index_content_key("dblp", {"a": "x"})
        path = save_collection_index(str(tmp_path), "dblp", "dblp", index, key)
        text = open(path).read()
        open(path, "w").write(text[: len(text) // 2])
        assert load_collection_index(str(tmp_path), "dblp", "dblp", key) is None

    def test_wrong_collection_is_rejected(self, collection, tmp_path):
        index = collection.search_index()
        key = index_content_key("dblp", {"a": "x"})
        save_collection_index(str(tmp_path), "dblp", "dblp", index, key)
        assert load_collection_index(str(tmp_path), "dblp", "other", key) is None


def _store(tmp_path):
    db = Database()
    col = db.create_collection("dblp")
    col.add_document("a", DOC_A)
    col.add_document("b", DOC_B)
    root = str(tmp_path / "store")
    save_database(db, root, write_indexes=True)
    return root


class TestStorageIntegration:
    def test_persisted_index_attaches_on_load(self, tmp_path):
        root = _store(tmp_path)
        assert index_status(root)["dblp"]["status"] == "ok"
        loaded = load_database(root)
        col = loaded.get_collection("dblp")
        attached = col.search_index(build=False)
        assert attached is not None
        assert attached.docs_with_term("J. Smith") == {"a"}

    def test_corrupt_index_is_ignored_and_lazily_rebuilt(self, tmp_path):
        root = _store(tmp_path)
        path = index_path(root, "dblp")
        open(path, "w").write("{not json")
        assert index_status(root)["dblp"]["status"].startswith("corrupt")
        loaded = load_database(root)
        col = loaded.get_collection("dblp")
        assert col.search_index(build=False) is None  # never trusted
        rebuilt = col.search_index(build=True)  # lazy rebuild from documents
        assert rebuilt.docs_with_term("J. Smyth") == {"b"}

    def test_stale_index_is_detected_and_not_attached(self, tmp_path):
        root = _store(tmp_path)
        db = load_database(root)
        db.get_collection("dblp").replace_document("a", DOC_C)
        # Re-save the store without refreshing the index files: the old
        # index no longer matches the manifest checksums.
        save_database(db, root, write_indexes=False)
        assert index_status(root)["dblp"]["status"] == "stale"
        col = load_database(root).get_collection("dblp")
        assert col.search_index(build=False) is None

    def test_build_indexes_repairs_stale_and_corrupt(self, tmp_path):
        root = _store(tmp_path)
        open(index_path(root, "dblp"), "w").write("junk")
        stats = build_indexes(root)
        assert stats["dblp"]["documents"] == 2
        assert index_status(root)["dblp"]["status"] == "ok"
