"""Unit tests for XML parsing and serialisation."""

import pytest

from repro.errors import XmlParseError
from repro.xmldb.model import XmlNode
from repro.xmldb.parser import parse_document, parse_file, parse_fragment
from repro.xmldb.serializer import (
    document_bytes,
    escape_attribute,
    escape_text,
    serialize,
)


class TestParse:
    def test_simple_document(self):
        root = parse_document("<a><b>hi</b></a>")
        assert root.tag == "a"
        assert root.children[0].text == "hi"

    def test_attributes(self):
        root = parse_document('<a key="k1" other="v"/>')
        assert root.attributes == {"key": "k1", "other": "v"}

    def test_whitespace_stripped(self):
        root = parse_document("<a>\n  <b>\n    text\n  </b>\n</a>")
        assert root.children[0].text == "text"

    def test_entities_decoded(self):
        root = parse_document("<a>&lt;tag&gt; &amp; more</a>")
        assert root.text == "<tag> & more"

    def test_renumbered_on_parse(self):
        root = parse_document("<a><b/><c/></a>")
        assert root.pre == 0
        assert root.children[1].pre == 2

    def test_split_text_joined(self):
        root = parse_document("<a>first <b>mid</b> last</a>")
        assert "first" in root.text and "last" in root.text

    def test_bytes_input(self):
        root = parse_document(b"<a>ok</a>")
        assert root.text == "ok"

    def test_malformed_raises(self):
        with pytest.raises(XmlParseError):
            parse_document("<a><b></a>")

    def test_empty_raises(self):
        with pytest.raises(XmlParseError):
            parse_document("")

    def test_fragment_wraps_many_roots(self):
        root = parse_fragment("<a/><b/>")
        assert root.tag == "fragment"
        assert [c.tag for c in root.children] == ["a", "b"]

    def test_fragment_passthrough_single_root(self):
        assert parse_fragment("<only/>").tag == "only"

    def test_parse_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>x</b></a>")
        assert parse_file(str(path)).children[0].text == "x"


class TestSerialize:
    def test_roundtrip(self):
        text = '<a key="1"><b>hello &amp; goodbye</b><c/></a>'
        root = parse_document(text)
        again = parse_document(serialize(root))
        assert root.structurally_equal(again)

    def test_compact_is_single_line(self):
        root = parse_document("<a><b>x</b></a>")
        assert "\n" not in serialize(root)

    def test_pretty_print_indents(self):
        root = parse_document("<a><b>x</b></a>")
        pretty = serialize(root, indent=2)
        assert "\n  <b>" in pretty

    def test_self_closing_empty_elements(self):
        root = parse_document("<a><b/></a>")
        assert "<b/>" in serialize(root)

    def test_escapes(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_attribute_escaping_roundtrip(self):
        root = XmlNode("a", attributes={"q": 'va"l<ue'})
        again = parse_document(serialize(root))
        assert again.attributes["q"] == 'va"l<ue'

    def test_document_bytes_counts_utf8(self):
        root = parse_document("<a>héllo</a>")
        assert document_bytes(root) == len(serialize(root).encode("utf-8"))
