"""Unit tests for XPath value conversions and AST rendering."""

import math

import pytest

from repro.xmldb.parser import parse_document
from repro.xmldb.xpath import parse_xpath
from repro.xmldb.xpath.engine import to_boolean, to_number, to_string


@pytest.fixture
def node():
    return parse_document("<a>text</a>")


class TestToBoolean:
    def test_booleans(self):
        assert to_boolean(True) is True
        assert to_boolean(False) is False

    def test_numbers(self):
        assert to_boolean(1.0) is True
        assert to_boolean(-0.5) is True
        assert to_boolean(0.0) is False
        assert to_boolean(float("nan")) is False

    def test_strings(self):
        assert to_boolean("x") is True
        assert to_boolean("") is False

    def test_nodesets(self, node):
        assert to_boolean([node]) is True
        assert to_boolean([]) is False


class TestToString:
    def test_booleans(self):
        assert to_string(True) == "true"
        assert to_string(False) == "false"

    def test_numbers(self):
        assert to_string(3.0) == "3"
        assert to_string(float("nan")) == "NaN"

    def test_nodeset_uses_first_node(self, node):
        assert to_string([node]) == "text"
        assert to_string([]) == ""


class TestToNumber:
    def test_parses_strings(self):
        assert to_number("  42 ") == 42.0
        assert math.isnan(to_number("nope"))

    def test_booleans(self):
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0

    def test_nodeset(self, node):
        assert math.isnan(to_number([node]))  # "text" is not numeric


class TestAstRendering:
    @pytest.mark.parametrize(
        "query",
        [
            "//a/b[. = 'x']",
            "//a[year > 1999 and not(b)]/c",
            "count(//a) + 2 * 3",
            "//a | //b",
            "a/..//b/./text()",
            "//a[@id='x']",
            "-(1)",
        ],
    )
    def test_str_is_reparseable(self, query):
        """str(parse(q)) parses again to an equivalent expression."""
        first = parse_xpath(query)
        second = parse_xpath(str(first))
        assert str(first) == str(second)

    def test_str_mentions_structure(self):
        rendered = str(parse_xpath("//a[b = '1']"))
        assert "a" in rendered and "b" in rendered and "'1'" in rendered


class TestWorkloadBuilders:
    def test_epsilon_selection_pattern_targets_top_author(self):
        from repro.core.conditions import SimilarTo
        from repro.data import generate_corpus
        from repro.experiments.workload import build_epsilon_selection_pattern
        from repro.tax.conditions import Constant

        corpus = generate_corpus(50, seed=9)
        pattern = build_epsilon_selection_pattern(corpus)
        similar = [
            op for op in pattern.condition.operands if isinstance(op, SimilarTo)
        ]
        assert len(similar) == 1
        target = similar[0].right
        assert isinstance(target, Constant)
        canonicals = {a.canonical for a in corpus.authors.values()}
        assert target.value in canonicals
