"""Unit tests for the XmlNode tree model."""

import pytest

from repro.xmldb.model import XmlNode, ancestor_of, build, document_order


@pytest.fixture
def tree():
    root = XmlNode("dblp")
    paper = root.element("inproceedings")
    paper.element("author", "Jeffrey D. Ullman")
    paper.element("title", "A Survey")
    paper2 = root.element("inproceedings")
    paper2.element("author", "Paolo Ciancarini")
    root.renumber()
    return root


class TestConstruction:
    def test_element_helper(self):
        root = XmlNode("a")
        child = root.element("b", "text", attr="v")
        assert child.parent is root
        assert child.text == "text"
        assert child.attributes == {"attr": "v"}

    def test_build_helper(self):
        tree = build("x", build("y", "inner"), outer="1")
        assert tree.attributes == {"outer": "1"}
        assert tree.children[0].text == "inner"

    def test_detach(self, tree):
        paper = tree.children[0]
        paper.detach()
        assert paper.parent is None
        assert len(tree.children) == 1

    def test_object_ids_unique(self):
        assert XmlNode("a").object_id != XmlNode("a").object_id


class TestNumbering:
    def test_preorder_numbers(self, tree):
        nodes = list(tree.iter())
        assert [node.pre for node in nodes] == list(range(len(nodes)))

    def test_ancestor_test_via_numbers(self, tree):
        paper = tree.children[0]
        author = paper.children[0]
        assert ancestor_of(tree, author)
        assert ancestor_of(paper, author)
        assert not ancestor_of(author, paper)
        assert not ancestor_of(paper, paper)  # strict

    def test_sibling_subtrees_not_ancestors(self, tree):
        first, second = tree.children
        assert not ancestor_of(first, second.children[0])

    def test_depth(self, tree):
        assert tree.depth == 0
        assert tree.children[0].depth == 1
        assert tree.children[0].children[0].depth == 2

    def test_document_order(self, tree):
        shuffled = list(reversed(list(tree.iter())))
        ordered = document_order(shuffled)
        assert [n.pre for n in ordered] == sorted(n.pre for n in shuffled)

    def test_ancestor_of_without_numbering_walks_parents(self):
        root = XmlNode("a")
        child = root.element("b")
        assert ancestor_of(root, child)


class TestTraversal:
    def test_iter_is_preorder(self, tree):
        tags = [node.tag for node in tree.iter()]
        assert tags == [
            "dblp", "inproceedings", "author", "title",
            "inproceedings", "author",
        ]

    def test_descendants_excludes_self(self, tree):
        assert all(node is not tree for node in tree.descendants())

    def test_ancestors(self, tree):
        author = tree.children[0].children[0]
        assert [node.tag for node in author.ancestors()] == [
            "inproceedings", "dblp",
        ]

    def test_root(self, tree):
        leaf = tree.children[0].children[0]
        assert leaf.root() is tree

    def test_find_all_and_first(self, tree):
        assert len(tree.find_all("author")) == 2
        assert tree.find_first("title").text == "A Survey"
        assert tree.find_first("nothing") is None

    def test_child_by_tag(self, tree):
        paper = tree.children[0]
        assert paper.child_by_tag("title").text == "A Survey"
        assert paper.child_by_tag("zzz") is None

    def test_leaves(self, tree):
        assert all(node.is_leaf() for node in tree.leaves())
        assert sum(1 for _ in tree.leaves()) == 3

    def test_size(self, tree):
        assert tree.size() == 6

    def test_path_tags(self, tree):
        author = tree.children[0].children[0]
        assert author.path_tags() == ("dblp", "inproceedings", "author")

    def test_sibling_index(self, tree):
        assert tree.children[1].sibling_index() == 1
        assert tree.sibling_index() == 0


class TestContent:
    def test_content_is_own_text(self, tree):
        author = tree.children[0].children[0]
        assert author.content == "Jeffrey D. Ullman"

    def test_string_value_concatenates(self, tree):
        assert "Jeffrey D. Ullman" in tree.string_value()
        assert "A Survey" in tree.string_value()


class TestCopying:
    def test_copy_is_deep(self, tree):
        clone = tree.copy()
        clone.children[0].children[0].text = "changed"
        assert tree.children[0].children[0].text == "Jeffrey D. Ullman"

    def test_copy_has_new_identities(self, tree):
        clone = tree.copy()
        originals = {node.object_id for node in tree.iter()}
        clones = {node.object_id for node in clone.iter()}
        assert originals.isdisjoint(clones)

    def test_map_copy_mapping(self, tree):
        clone, mapping = tree.map_copy()
        for original in tree.iter():
            assert mapping[original.object_id].tag == original.tag


class TestEquality:
    def test_structural_equality(self, tree):
        assert tree.structurally_equal(tree.copy())

    def test_text_difference_detected(self, tree):
        clone = tree.copy()
        clone.children[0].children[0].text = "Someone Else"
        assert not tree.structurally_equal(clone)

    def test_order_matters(self):
        a = build("r", build("x"), build("y"))
        b = build("r", build("y"), build("x"))
        assert not a.structurally_equal(b)

    def test_attribute_difference_detected(self):
        a = build("r", key="1")
        b = build("r", key="2")
        assert not a.structurally_equal(b)

    def test_canonical_key_agrees_with_equality(self, tree):
        assert tree.canonical_key() == tree.copy().canonical_key()
        other = tree.copy()
        other.children[0].tag = "article"
        assert tree.canonical_key() != other.canonical_key()
