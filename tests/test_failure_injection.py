"""Failure injection: malformed inputs and boundary conditions everywhere."""

import pytest

from repro.errors import (
    CollectionError,
    ConditionError,
    ConstraintError,
    DocumentTooLargeError,
    FusionInconsistencyError,
    HierarchyCycleError,
    PatternTreeError,
    ReproError,
    SimilarityInconsistencyError,
    TossError,
    UnknownTermError,
    XPathSyntaxError,
    XmlParseError,
)
from repro.core.system import TossSystem
from repro.ontology import Hierarchy, parse_constraint
from repro.ontology.fusion import canonical_fusion
from repro.similarity.measures import Levenshtein
from repro.similarity.sea import sea
from repro.tax.pattern import PatternTree
from repro.xmldb.collection import Collection
from repro.xmldb.parser import parse_document
from repro.xmldb.xpath import XPathQuery


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            CollectionError, ConditionError, ConstraintError,
            DocumentTooLargeError, FusionInconsistencyError,
            HierarchyCycleError, PatternTreeError,
            SimilarityInconsistencyError, TossError, UnknownTermError,
            XPathSyntaxError, XmlParseError,
        ],
    )
    def test_all_errors_are_repro_errors(self, exception):
        assert issubclass(exception, ReproError)


class TestMalformedXml:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "plain text",
            "<a attr=unquoted/>",
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(XmlParseError):
            parse_document(text)

    def test_instance_with_malformed_xml_fails_cleanly(self):
        system = TossSystem()
        with pytest.raises(XmlParseError):
            system.add_instance("bad", "<a><b></a>")
        # the failed collection is created but the system stays usable
        system.add_instance("good", "<a><b>x</b></a>")


class TestOversizedDocuments:
    def test_document_cap_and_recovery(self):
        collection = Collection("tiny", max_document_bytes=50)
        with pytest.raises(DocumentTooLargeError):
            collection.add_document("big", "<a>" + "x" * 200 + "</a>")
        # the failed add leaves no partial state
        assert len(collection) == 0
        collection.add_document("small", "<a>ok</a>")
        assert len(collection) == 1


class TestBadQueries:
    @pytest.mark.parametrize(
        "query",
        ["", "//", "//a[", "//a]", "//a[@]", "//a/b[", "foo(", "1 +", "//a[''=]"],
    )
    def test_xpath_syntax_errors(self, query):
        with pytest.raises(XPathSyntaxError):
            XPathQuery(query)

    def test_pattern_validation(self):
        pattern = PatternTree()
        with pytest.raises(PatternTreeError):
            pattern.validate()


class TestInconsistentKnowledge:
    def test_contradictory_constraints(self):
        with pytest.raises(FusionInconsistencyError):
            canonical_fusion(
                {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
                [parse_constraint("a:1 = b:2"), parse_constraint("a:1 != b:2")],
            )

    def test_indirectly_contradictory_constraints(self):
        # a:1 <= b:2 plus b's hierarchy ordering b <= c plus c:2 <= a:1
        # forces {a, b, c} into one equivalence class; a != c then fails.
        hierarchies = {
            1: Hierarchy(nodes=["a"]),
            2: Hierarchy([("b", "c")]),
        }
        with pytest.raises(FusionInconsistencyError):
            canonical_fusion(
                hierarchies,
                [
                    parse_constraint("a:1 <= b:2"),
                    parse_constraint("c:2 <= a:1"),
                    parse_constraint("a:1 != c:2"),
                ],
            )

    def test_similarity_inconsistency_message_names_terms(self):
        hierarchy = Hierarchy([("article", "document")], nodes=["articles"])
        with pytest.raises(SimilarityInconsistencyError) as info:
            sea(hierarchy, Levenshtein(), 1.0)
        message = str(info.value)
        assert "article" in message and "document" in message

    def test_cyclic_ontology_rejected_at_construction(self):
        with pytest.raises(HierarchyCycleError):
            Hierarchy([("a", "b"), ("b", "c"), ("c", "a")])


class TestSystemMisuse:
    def test_unknown_collection_query(self):
        system = TossSystem()
        system.add_instance("dblp", "<a><b>x</b></a>")
        system.build()
        from repro.core.parser import parse_query

        parsed = parse_query("a(b)")
        with pytest.raises(CollectionError):
            system.select("nowhere", parsed.pattern)

    def test_join_needs_right_collection(self):
        system = TossSystem()
        system.add_instance("dblp", "<a><b>x</b></a>")
        system.build()
        with pytest.raises(TossError):
            system.query("dblp", "a(b $x), c(d $y) where $x ~ $y")

    def test_unknown_measure_name(self):
        with pytest.raises(KeyError):
            TossSystem(measure="frobnicator")

    def test_constraint_against_missing_source(self):
        system = TossSystem()
        system.add_instance("dblp", "<a><b>x</b></a>")
        system.add_constraint("b:dblp = c:missing")
        with pytest.raises(ConstraintError):
            system.build()


class TestDegenerateInputs:
    def test_empty_document_element(self):
        system = TossSystem()
        system.add_instance("empty", "<root/>")
        system.build()
        assert system.ontology_size() >= 1

    def test_single_node_hierarchy_sea(self):
        enhancement = sea(Hierarchy(nodes=["only"]), Levenshtein(), 5.0)
        assert len(enhancement.hierarchy) == 1

    def test_empty_hierarchy_sea(self):
        enhancement = sea(Hierarchy(), Levenshtein(), 1.0)
        assert len(enhancement.hierarchy) == 0

    def test_unicode_content_roundtrip(self):
        from repro.xmldb.serializer import serialize

        doc = parse_document("<a><b>Grüße, 世界 — “quotes”</b></a>")
        again = parse_document(serialize(doc))
        assert again.children[0].text == "Grüße, 世界 — “quotes”"

    def test_whitespace_only_content_dropped(self):
        doc = parse_document("<a>   \n\t  </a>")
        assert doc.text == ""
