"""Failure injection: malformed inputs and boundary conditions everywhere."""

import json
import os

import pytest

from repro.errors import (
    CollectionError,
    ConditionError,
    ConstraintError,
    DocumentTooLargeError,
    FusionInconsistencyError,
    HierarchyCycleError,
    PatternTreeError,
    QueryTimeoutError,
    ReproError,
    ResourceExhaustedError,
    ResourceLimitError,
    SimilarityInconsistencyError,
    StorageCorruptionError,
    TossError,
    UnknownTermError,
    XPathSyntaxError,
    XmlDbError,
    XmlParseError,
)
from repro.core.system import TossSystem
from repro.guard import ResourceGuard
from repro.ontology import Hierarchy, parse_constraint
from repro.ontology.fusion import canonical_fusion
from repro.similarity.measures import Levenshtein
from repro.similarity.sea import sea
from repro.tax.pattern import PatternTree
from repro.xmldb.collection import Collection
from repro.xmldb.database import Database
from repro.xmldb.parser import parse_document
from repro.xmldb.storage import load_database, save_database
from repro.xmldb.xpath import XPathQuery


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            CollectionError, ConditionError, ConstraintError,
            DocumentTooLargeError, FusionInconsistencyError,
            HierarchyCycleError, PatternTreeError, QueryTimeoutError,
            ResourceExhaustedError, ResourceLimitError,
            SimilarityInconsistencyError, StorageCorruptionError, TossError,
            UnknownTermError, XPathSyntaxError, XmlParseError,
        ],
    )
    def test_all_errors_are_repro_errors(self, exception):
        assert issubclass(exception, ReproError)

    def test_storage_corruption_is_an_xmldb_error(self):
        assert issubclass(StorageCorruptionError, XmlDbError)

    def test_timeout_and_exhaustion_are_resource_limit_errors(self):
        assert issubclass(QueryTimeoutError, ResourceLimitError)
        assert issubclass(ResourceExhaustedError, ResourceLimitError)


class TestMalformedXml:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "plain text",
            "<a attr=unquoted/>",
        ],
    )
    def test_parse_rejects(self, text):
        with pytest.raises(XmlParseError):
            parse_document(text)

    def test_instance_with_malformed_xml_fails_cleanly(self):
        system = TossSystem()
        with pytest.raises(XmlParseError):
            system.add_instance("bad", "<a><b></a>")
        # the failed collection is created but the system stays usable
        system.add_instance("good", "<a><b>x</b></a>")


class TestOversizedDocuments:
    def test_document_cap_and_recovery(self):
        collection = Collection("tiny", max_document_bytes=50)
        with pytest.raises(DocumentTooLargeError):
            collection.add_document("big", "<a>" + "x" * 200 + "</a>")
        # the failed add leaves no partial state
        assert len(collection) == 0
        collection.add_document("small", "<a>ok</a>")
        assert len(collection) == 1


class TestBadQueries:
    @pytest.mark.parametrize(
        "query",
        ["", "//", "//a[", "//a]", "//a[@]", "//a/b[", "foo(", "1 +", "//a[''=]"],
    )
    def test_xpath_syntax_errors(self, query):
        with pytest.raises(XPathSyntaxError):
            XPathQuery(query)

    def test_pattern_validation(self):
        pattern = PatternTree()
        with pytest.raises(PatternTreeError):
            pattern.validate()


class TestInconsistentKnowledge:
    def test_contradictory_constraints(self):
        with pytest.raises(FusionInconsistencyError):
            canonical_fusion(
                {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
                [parse_constraint("a:1 = b:2"), parse_constraint("a:1 != b:2")],
            )

    def test_indirectly_contradictory_constraints(self):
        # a:1 <= b:2 plus b's hierarchy ordering b <= c plus c:2 <= a:1
        # forces {a, b, c} into one equivalence class; a != c then fails.
        hierarchies = {
            1: Hierarchy(nodes=["a"]),
            2: Hierarchy([("b", "c")]),
        }
        with pytest.raises(FusionInconsistencyError):
            canonical_fusion(
                hierarchies,
                [
                    parse_constraint("a:1 <= b:2"),
                    parse_constraint("c:2 <= a:1"),
                    parse_constraint("a:1 != c:2"),
                ],
            )

    def test_similarity_inconsistency_message_names_terms(self):
        hierarchy = Hierarchy([("article", "document")], nodes=["articles"])
        with pytest.raises(SimilarityInconsistencyError) as info:
            sea(hierarchy, Levenshtein(), 1.0)
        message = str(info.value)
        assert "article" in message and "document" in message

    def test_cyclic_ontology_rejected_at_construction(self):
        with pytest.raises(HierarchyCycleError):
            Hierarchy([("a", "b"), ("b", "c"), ("c", "a")])


class TestSystemMisuse:
    def test_unknown_collection_query(self):
        system = TossSystem()
        system.add_instance("dblp", "<a><b>x</b></a>")
        system.build()
        from repro.core.parser import parse_query

        parsed = parse_query("a(b)")
        with pytest.raises(CollectionError):
            system.select("nowhere", parsed.pattern)

    def test_join_needs_right_collection(self):
        system = TossSystem()
        system.add_instance("dblp", "<a><b>x</b></a>")
        system.build()
        with pytest.raises(TossError):
            system.query("dblp", "a(b $x), c(d $y) where $x ~ $y")

    def test_unknown_measure_name(self):
        with pytest.raises(KeyError):
            TossSystem(measure="frobnicator")

    def test_constraint_against_missing_source(self):
        system = TossSystem()
        system.add_instance("dblp", "<a><b>x</b></a>")
        system.add_constraint("b:dblp = c:missing")
        with pytest.raises(ConstraintError):
            system.build()


class TestDegenerateInputs:
    def test_empty_document_element(self):
        system = TossSystem()
        system.add_instance("empty", "<root/>")
        system.build()
        assert system.ontology_size() >= 1

    def test_single_node_hierarchy_sea(self):
        enhancement = sea(Hierarchy(nodes=["only"]), Levenshtein(), 5.0)
        assert len(enhancement.hierarchy) == 1

    def test_empty_hierarchy_sea(self):
        enhancement = sea(Hierarchy(), Levenshtein(), 1.0)
        assert len(enhancement.hierarchy) == 0

    def test_unicode_content_roundtrip(self):
        from repro.xmldb.serializer import serialize

        doc = parse_document("<a><b>Grüße, 世界 — “quotes”</b></a>")
        again = parse_document(serialize(doc))
        assert again.children[0].text == "Grüße, 世界 — “quotes”"

    def test_whitespace_only_content_dropped(self):
        doc = parse_document("<a>   \n\t  </a>")
        assert doc.text == ""


def _small_database():
    db = Database()
    coll = db.create_collection("bib")
    for i in range(4):
        coll.add_document(
            f"doc{i}", f"<bib><paper><title>Paper {i}</title></paper></bib>"
        )
    return db


def _store_files(root):
    """Every data file of a saved store (documents + manifest), sorted."""
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != ".quarantine"]
        for name in filenames:
            found.append(os.path.join(dirpath, name))
    return sorted(found)


class TestCrashRecovery:
    """A kill-9 mid-save must never leave the store unloadable."""

    def test_truncated_document_raise_mode(self, tmp_path):
        root = str(tmp_path / "s")
        save_database(_small_database(), root)
        victim = _store_files(root)[1]  # some document
        with open(victim, "r+") as handle:
            handle.truncate(10)
        with pytest.raises(StorageCorruptionError):
            load_database(root)

    def test_truncated_document_quarantine_mode(self, tmp_path):
        root = str(tmp_path / "s")
        save_database(_small_database(), root)
        doc = next(f for f in _store_files(root) if f.endswith(".xml"))
        with open(doc, "r+") as handle:
            handle.truncate(10)
        db = load_database(root, on_corruption="quarantine")
        report = db.recovery_report
        assert not report.ok
        assert report.loaded_documents == 3
        assert [q.reason for q in report.quarantined] == [
            "checksum mismatch (truncated or corrupted)"
        ]
        # the survivors still answer queries
        assert len(db.xpath("bib", "//title")) == 3

    def test_checksum_flip_detected_even_when_well_formed(self, tmp_path):
        root = str(tmp_path / "s")
        save_database(_small_database(), root)
        doc = next(f for f in _store_files(root) if f.endswith(".xml"))
        with open(doc) as handle:
            text = handle.read()
        with open(doc, "w") as handle:
            handle.write(text.replace("Paper", "Papre", 1))  # still valid XML
        with pytest.raises(StorageCorruptionError, match="checksum"):
            load_database(root)
        db = load_database(root, on_corruption="quarantine")
        assert len(db.recovery_report.quarantined) == 1

    def test_corrupt_manifest_quarantine_salvages_documents(self, tmp_path):
        root = tmp_path / "s"
        save_database(_small_database(), str(root))
        (root / "manifest.json").write_text('{"format": 2, "collections": {')
        db = load_database(str(root), on_corruption="quarantine")
        report = db.recovery_report
        assert not report.manifest_ok
        # the documents are rebuilt from a directory scan
        assert db.collection_names() == ["bib"]
        assert len(db.xpath("bib", "//title")) == 4
        # the torn manifest was moved aside, not destroyed
        moved = report.quarantined[0].quarantined_to
        assert moved and os.path.exists(moved)
        # a fresh manifest was rewritten: the next load is clean
        again = load_database(str(root))
        assert len(again.get_collection("bib")) == 4

    def test_kill9_sweep_store_always_loadable(self, tmp_path):
        """Simulate a crash at every possible point of a save.

        Atomic per-file writes mean the only states a kill -9 can leave
        behind are: a file fully written, absent, or (on filesystems
        without atomic rename, which we still defend against) torn.
        Sweep every file x {truncated, deleted}: quarantine-mode loading
        must always return a working database plus a recovery report.
        """
        pristine = tmp_path / "pristine"
        save_database(_small_database(), str(pristine))
        files = _store_files(str(pristine))
        assert len(files) == 5  # 4 documents + manifest
        import shutil

        for index, victim in enumerate(files):
            for action in ("truncate", "delete"):
                root = tmp_path / f"crash-{index}-{action}"
                shutil.copytree(pristine, root)
                target = os.path.join(str(root), os.path.relpath(victim, pristine))
                if action == "truncate":
                    with open(target, "r+") as handle:
                        handle.truncate(7)
                else:
                    os.remove(target)
                if target.endswith("manifest.json") and action == "delete":
                    # no manifest at all = not a database directory; that is
                    # a usage error, not silent data loss
                    with pytest.raises(XmlDbError):
                        load_database(str(root), on_corruption="quarantine")
                    continue
                db = load_database(str(root), on_corruption="quarantine")
                report = db.recovery_report
                assert report.database is db
                assert not report.ok
                assert report.loaded_documents >= 3 or not report.manifest_ok
                # loading again after quarantine is clean or at least stable
                db2 = load_database(str(root), on_corruption="quarantine")
                assert db2.recovery_report.loaded_documents <= report.loaded_documents


class TestResourceGuard:
    def _big_database(self, papers=200):
        db = Database()
        body = "".join(
            f"<paper><title>Paper number {i}</title></paper>" for i in range(papers)
        )
        db.create_collection("bib").add_document("d", f"<bib>{body}</bib>")
        return db

    def test_guard_rejects_negative_limits(self):
        with pytest.raises(ValueError):
            ResourceGuard(deadline_seconds=-1)
        with pytest.raises(ValueError):
            ResourceGuard(max_steps=-5)

    def test_deadline_raises_query_timeout(self):
        db = self._big_database()
        guard = ResourceGuard(deadline_seconds=0.0)
        guard.start()
        with pytest.raises(QueryTimeoutError) as info:
            db.xpath("bib", "//paper[title]", guard=guard)
        assert info.value.deadline == 0.0
        assert info.value.elapsed >= 0.0

    def test_deadline_enforced_within_twice_the_deadline(self):
        import time

        db = self._big_database(400)
        deadline = 0.02
        guard = ResourceGuard(deadline_seconds=deadline)
        guard.start()
        began = time.monotonic()
        with pytest.raises(QueryTimeoutError):
            for _ in range(1000):  # keep issuing work until the guard trips
                db.xpath("bib", "//paper[contains(title, 'number')]", guard=guard)
        waited = time.monotonic() - began
        assert waited < 10 * deadline + 0.5  # generous CI bound; typical ~1x

    def test_step_budget_raises_resource_exhausted(self):
        db = self._big_database()
        guard = ResourceGuard(max_steps=50)
        guard.start()
        with pytest.raises(ResourceExhaustedError, match="evaluation budget"):
            db.xpath("bib", "//paper/title", guard=guard)

    def test_result_cap_raises_resource_exhausted(self):
        db = self._big_database()
        guard = ResourceGuard(max_results=10)
        guard.start()
        with pytest.raises(ResourceExhaustedError):
            db.xpath("bib", "//title", guard=guard)

    def test_unlimited_guard_is_a_no_op(self):
        db = self._big_database(20)
        guard = ResourceGuard()
        guard.start()
        results = db.xpath("bib", "//title", guard=guard)
        assert len(results) == 20
        assert guard.steps > 0

    def test_guarded_system_query_times_out(self):
        system = TossSystem(epsilon=1.0)
        body = "".join(
            f"<paper><author>Name {i}</author></paper>" for i in range(100)
        )
        system.add_instance("bib", f"<bib>{body}</bib>")
        system.build()
        system.executor.guard = ResourceGuard(deadline_seconds=0.0)
        with pytest.raises(QueryTimeoutError):
            system.query("bib", 'paper(author ~ "Name 1")')

    def test_guarded_seo_build_times_out(self):
        guard = ResourceGuard(deadline_seconds=0.0)
        system = TossSystem(epsilon=2.0, guard=guard)
        system.add_instance("bib", "<bib><paper><author>A</author></paper></bib>")
        with pytest.raises(QueryTimeoutError):
            system.build()

    def test_sea_respects_step_budget(self):
        hierarchy = Hierarchy(nodes=[f"term-{i:03d}" for i in range(60)])
        guard = ResourceGuard(max_steps=20)
        guard.start()
        with pytest.raises(ResourceExhaustedError):
            sea(hierarchy, Levenshtein(), 1.0, guard=guard)


class TestGracefulDegradation:
    def _failing_system(self):
        system = TossSystem(epsilon=2.0)
        system.add_instance(
            "bib",
            "<bib><paper><author>J. Ullman</author></paper>"
            "<paper><author>J Ullman</author></paper></bib>",
        )
        # reference a source that does not exist: build() must fail
        system.add_constraint("author:bib = writer:nowhere")
        return system

    def test_build_failure_raises_by_default(self):
        with pytest.raises(ConstraintError):
            self._failing_system().build()

    def test_build_failure_degrades_on_request(self):
        system = self._failing_system()
        system.build(on_failure="degrade")
        assert system.degraded
        assert isinstance(system.build_error, ConstraintError)
        report = system.query("bib", 'paper(author ~ "J. Ullman")')
        assert report.degraded
        # exact matching: only the literally equal author survives
        assert len(report.results) == 1

    def test_degraded_timeout_also_degrades(self):
        system = TossSystem(epsilon=2.0)
        system.add_instance(
            "bib", "<bib><paper><author>J. Ullman</author></paper></bib>"
        )
        system.build(guard=ResourceGuard(deadline_seconds=0.0), on_failure="degrade")
        assert system.degraded
        assert isinstance(system.build_error, QueryTimeoutError)
        report = system.query("bib", 'paper(author ~ "J. Ullman")')
        assert report.degraded and len(report.results) == 1

    def test_successful_rebuild_clears_degradation(self):
        system = TossSystem(epsilon=2.0)
        system.add_instance(
            "bib", "<bib><paper><author>J. Ullman</author></paper></bib>"
        )
        system.build(guard=ResourceGuard(deadline_seconds=0.0), on_failure="degrade")
        assert system.degraded
        system.build()  # no guard: succeeds
        assert not system.degraded
        assert system.build_error is None
        report = system.query("bib", 'paper(author ~ "J Ullman")')
        assert not report.degraded
        assert len(report.results) == 1  # similarity matching is back

    def test_invalid_on_failure_value(self):
        system = self._failing_system()
        with pytest.raises(ValueError):
            system.build(on_failure="explode")

    def test_degraded_instance_of_matches_nothing(self):
        system = self._failing_system()
        system.build(on_failure="degrade")
        report = system.query("bib", 'paper(author isa "person")')
        assert report.degraded
        assert len(report.results) == 0
