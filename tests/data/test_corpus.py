"""Unit tests for corpus generation, rendering and the relevance oracle."""

import pytest

from repro.data.dblp import render_dblp
from repro.data.ground_truth import Corpus, generate_corpus
from repro.data.lexicon_rules import corpus_lexicon
from repro.data.sigmod import render_sigmod_pages
from repro.data.titles import TitleGenerator
from repro.data.venues import VENUE_POOL, venue_by_key, venue_surface
from repro.xmldb.serializer import document_bytes


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(60, seed=11)


class TestGenerate:
    def test_sizes(self, corpus):
        assert len(corpus.papers) == 60
        assert len(corpus.authors) == 24  # 60 / 2.5
        assert len(corpus.venues) == len(VENUE_POOL)

    def test_deterministic_per_seed(self):
        first = generate_corpus(20, seed=5)
        second = generate_corpus(20, seed=5)
        assert [p.title for p in first.papers] == [p.title for p in second.papers]
        assert [p.author_ids for p in first.papers] == [
            p.author_ids for p in second.papers
        ]

    def test_different_seeds_differ(self):
        first = generate_corpus(20, seed=5)
        second = generate_corpus(20, seed=6)
        assert [p.title for p in first.papers] != [p.title for p in second.papers]

    def test_paper_fields(self, corpus):
        paper = corpus.papers[0]
        assert paper.key == "p00000"
        assert 1 <= len(paper.author_ids) <= 3
        assert 1994 <= paper.year <= 2003
        assert "-" in paper.pages

    def test_venue_restriction(self):
        restricted = generate_corpus(10, seed=0, venue_keys=["sigmod", "vldb"])
        assert {p.venue_key for p in restricted.papers} <= {"sigmod", "vldb"}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_corpus(0)
        with pytest.raises(ValueError):
            generate_corpus(5, venue_keys=["nonexistent"])

    def test_author_variants_precomputed(self, corpus):
        author = next(iter(corpus.authors.values()))
        assert author.canonical in author.variants
        assert len(author.variants) >= 3


class TestOracle:
    def test_relevant_by_author_surface(self, corpus):
        author = next(
            a for a in corpus.authors.values()
            if any(a.entity_id in p.author_ids for p in corpus.papers)
        )
        relevant = corpus.relevant_papers(author_surface=author.canonical)
        expected = {
            p.key for p in corpus.papers if author.entity_id in p.author_ids
        }
        assert relevant == expected

    def test_relevant_by_category(self, corpus):
        relevant = corpus.relevant_papers(venue_category="database conference")
        expected = {
            p.key
            for p in corpus.papers
            if corpus.venues[p.venue_key].category == "database conference"
        }
        assert relevant == expected

    def test_conjunctive_criteria(self, corpus):
        paper = corpus.papers[0]
        relevant = corpus.relevant_papers(
            venue_key=paper.venue_key, year=paper.year
        )
        assert paper.key in relevant
        assert all(
            corpus.paper(key).venue_key == paper.venue_key for key in relevant
        )

    def test_year_range(self, corpus):
        relevant = corpus.relevant_papers(year_range=(1994, 2003))
        assert len(relevant) == len(corpus.papers)

    def test_unknown_surface_is_empty(self, corpus):
        assert corpus.relevant_papers(author_surface="Martian Person") == frozenset()

    def test_record_surface_extends_index(self, corpus):
        author_id = next(iter(corpus.authors))
        corpus.record_surface(author_id, "Totally New Form")
        assert author_id in corpus.entities_for_surface("Totally New Form")


class TestDblpRender:
    def test_schema_shape(self, corpus):
        root = render_dblp(corpus, seed=11)
        assert root.tag == "dblp"
        record = root.children[0]
        assert record.tag == "inproceedings"
        assert record.attributes["key"].startswith("p")
        tags = [c.tag for c in record.children]
        assert "author" in tags and "title" in tags
        assert "booktitle" in tags and "year" in tags and "pages" in tags

    def test_subset_rendering(self, corpus):
        keys = corpus.paper_keys()[:10]
        root = render_dblp(corpus, seed=11, paper_keys=keys)
        assert len(root.children) == 10

    def test_surfaces_recorded(self):
        fresh = generate_corpus(20, seed=3)
        render_dblp(fresh, seed=3)
        assert any(author.surfaces for author in fresh.authors.values())

    def test_deterministic(self, corpus):
        first = render_dblp(corpus, seed=11)
        second = render_dblp(corpus, seed=11)
        assert first.structurally_equal(second)


class TestSigmodRender:
    def test_one_page_per_venue_year(self, corpus):
        pages = render_sigmod_pages(corpus, seed=11)
        sigmod_years = {
            p.year for p in corpus.papers if p.venue_key == "sigmod"
        }
        assert len(pages) == len(sigmod_years)

    def test_page_schema(self, corpus):
        pages = render_sigmod_pages(corpus, seed=11)
        page = pages[0]
        assert page.tag == "ProceedingsPage"
        assert page.child_by_tag("conference").text.startswith("ACM SIGMOD")
        articles = page.child_by_tag("articles")
        article = articles.children[0]
        assert article.child_by_tag("title") is not None
        author = article.child_by_tag("author")
        assert "position" in author.attributes

    def test_only_requested_venues(self, corpus):
        pages = render_sigmod_pages(corpus, seed=11, venue_keys=("vldb",))
        for page in pages:
            assert page.child_by_tag("conference").text == venue_by_key("vldb").long


class TestVenuesAndTitles:
    def test_venue_surface_styles(self):
        venue = venue_by_key("sigmod")
        assert venue_surface(venue, "short") == "SIGMOD Conference"
        assert venue_surface(venue, "long").startswith("ACM SIGMOD")
        typo = venue_surface(venue, "typo")
        assert typo != venue.short and len(typo) == len(venue.short) + 1
        with pytest.raises(ValueError):
            venue_surface(venue, "fancy")

    def test_venue_by_key_unknown(self):
        with pytest.raises(KeyError):
            venue_by_key("nope")

    def test_title_generator_deterministic(self):
        assert TitleGenerator(seed=1).title() == TitleGenerator(seed=1).title()

    def test_title_variant_is_close(self):
        generator = TitleGenerator(seed=2)
        title = generator.title()
        variant = generator.variant(title)
        from repro.similarity.measures import Levenshtein

        assert Levenshtein().distance(title, variant) <= 3

    def test_corpus_lexicon_has_venue_taxonomy(self):
        lexicon = corpus_lexicon()
        assert "database conference" in lexicon.hypernyms("SIGMOD Conference")
        assert "conference" in lexicon.hypernyms("database conference")
        long_form = venue_by_key("kdd").long
        assert "data mining conference" in lexicon.hypernyms(long_form)
