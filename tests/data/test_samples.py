"""Unit tests for the canned paper samples and lexicon persistence."""

import pytest

from repro.data import samples
from repro.ontology.lexicon import Lexicon, bibliography_lexicon
from repro.xmldb import parse_document


class TestSamples:
    def test_figures_parse(self):
        dblp = parse_document(samples.DBLP_FIGURE_1)
        sigmod = parse_document(samples.SIGMOD_FIGURE_2)
        assert len(dblp.find_all("inproceedings")) == 3
        assert len(sigmod.find_all("article")) == 2

    def test_sample_system_answers_example_13(self):
        system = samples.sample_system()
        report = system.query(
            "dblp",
            "inproceedings(title $a), //article(title $b) where $a ~ $b",
            right_collection="sigmod",
        )
        titles = sorted(t.find_all("title")[0].text for t in report.results)
        assert titles == [
            "Materialized View and Index Selection Tool for Microsoft SQL Server 2000",
            "Securing XML Documents",
        ]

    def test_sample_system_constraints_fused(self):
        system = samples.sample_system()
        assert system.seo.leq("SIGMOD Conference", "booktitle")
        assert system.seo.leq("SIGMOD Conference", "conference")


class TestLexiconPersistence:
    def test_round_trip(self, tmp_path):
        original = bibliography_lexicon()
        path = tmp_path / "lexicon.json"
        original.save(str(path))
        loaded = Lexicon.load(str(path))
        assert loaded.hypernyms("google") == original.hypernyms("google")
        assert loaded.holonyms("us army") == original.holonyms("us army")
        assert loaded.synonyms("booktitle") == original.synonyms("booktitle")
        assert loaded.to_dict() == original.to_dict()

    def test_from_dict_rejects_bad_format(self):
        with pytest.raises(ValueError):
            Lexicon.from_dict({"format": 2})

    def test_hand_written_knowledge_file(self):
        lexicon = Lexicon.from_dict(
            {
                "format": 1,
                "hypernyms": {"corgi": ["dog"]},
                "holonyms": {"tail": ["dog"]},
                "synonyms": [["dog", "canine"]],
            }
        )
        assert lexicon.hypernyms("corgi") == frozenset({"dog"})
        assert lexicon.synonyms("canine") == frozenset({"dog"})

    def test_merged_with(self):
        base = bibliography_lexicon()
        extra = Lexicon()
        extra.add_hypernym("sosp", "systems conference")
        merged = base.merged_with(extra)
        assert "systems conference" in merged.hypernyms("sosp")
        assert "person" in merged.hypernyms("author")
        # originals untouched
        assert not base.hypernyms("sosp")
