"""Unit tests for author-name pools and variant generation."""

import pytest

from repro.data.names import NameParts, NameVariantGenerator
from repro.similarity.measures import Levenshtein


@pytest.fixture
def generator():
    return NameVariantGenerator(seed=7)


@pytest.fixture
def name():
    return NameParts("Jeffrey", "Dale", "Ullman")


class TestNameParts:
    def test_canonical_with_middle(self, name):
        assert name.canonical == "Jeffrey Dale Ullman"

    def test_canonical_without_middle(self):
        assert NameParts("Ann", None, "Lee").canonical == "Ann Lee"


class TestVariants:
    def test_full(self, generator, name):
        assert generator.variant(name, "full") == "Jeffrey Dale Ullman"

    def test_no_middle(self, generator, name):
        assert generator.variant(name, "no_middle") == "Jeffrey Ullman"

    def test_middle_initial(self, generator, name):
        assert generator.variant(name, "middle_initial") == "Jeffrey D. Ullman"

    def test_initials(self, generator, name):
        assert generator.variant(name, "initials") == "J. D. Ullman"

    def test_first_initial(self, generator, name):
        assert generator.variant(name, "first_initial") == "J. Ullman"

    def test_joined(self, generator, name):
        assert generator.variant(name, "joined") == "JeffreyDale Ullman"

    def test_typo_is_one_slip(self, generator, name):
        lev = Levenshtein()
        for _ in range(20):
            typo = generator.variant(name, "typo")
            assert lev.distance(typo, name.canonical) <= 1

    def test_unknown_kind(self, generator, name):
        with pytest.raises(ValueError):
            generator.variant(name, "cryptic")

    def test_sampled_kind_is_deterministic_per_seed(self, name):
        first = [NameVariantGenerator(seed=3).variant(name) for _ in range(5)]
        second = [NameVariantGenerator(seed=3).variant(name) for _ in range(5)]
        assert first == second

    def test_all_variants_unique_and_include_full(self, generator, name):
        variants = generator.all_variants(name)
        assert name.canonical in variants
        assert len(variants) == len(set(variants))

    def test_middle_initial_distance_is_three_for_length_four_middles(
        self, generator, name
    ):
        """The tuned epsilon=3-only gap (see names.py docstring)."""
        lev = Levenshtein()
        full = generator.variant(name, "full")
        middle_initial = generator.variant(name, "middle_initial")
        assert lev.distance(full, middle_initial) == 3.0


class TestSampling:
    def test_sample_name_uses_pools(self, generator):
        from repro.data.names import FIRST_NAMES, LAST_NAMES

        name = generator.sample_name()
        assert name.first in FIRST_NAMES
        assert name.last in LAST_NAMES

    def test_confusable_pool_has_close_pairs(self):
        """The pools must contain distinct names within distance 2."""
        lev = Levenshtein()
        from repro.data.names import LAST_NAMES

        close_pairs = [
            (a, b)
            for i, a in enumerate(LAST_NAMES)
            for b in LAST_NAMES[i + 1 :]
            if 0 < lev.distance(a, b) <= 2
        ]
        assert len(close_pairs) >= 10
