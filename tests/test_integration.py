"""Cross-module integration tests: the full pipeline on generated corpora."""

import pytest

from repro.core.parser import parse_query
from repro.core.quality import QualityReport
from repro.core.scoring import ranked_selection
from repro.data import generate_corpus, render_dblp, render_sigmod_pages
from repro.experiments.runner import returned_paper_keys
from repro.experiments.workload import build_selection_workload, build_system
from repro.similarity.persistence import dump_seo, load_seo


@pytest.fixture(scope="module")
def world():
    corpus = generate_corpus(120, seed=21)
    dblp = render_dblp(corpus, seed=21)
    pages = render_sigmod_pages(corpus, seed=21)
    system = build_system(corpus, [dblp], 3.0, sigmod_documents=pages)
    return corpus, dblp, pages, system


class TestAnswerContainment:
    def test_toss_answers_contain_tax_answers(self, world):
        """Monotonicity: TOSS's rewriting only widens the answer set."""
        corpus, dblp, pages, system = world
        tax = system.tax_executor()
        for query in build_selection_workload(corpus, 8, seed=21):
            toss_keys = returned_paper_keys(
                system.select("dblp", query.toss_pattern, query.sl_labels).results
            )
            # TAX baseline with the *TOSS* pattern's exact core: compare
            # against the degraded pattern instead (its answers must be a
            # subset of TOSS's when the contains-condition target matches
            # venue surfaces TOSS also accepts).
            tax_keys = returned_paper_keys(
                tax.selection("dblp", query.tax_pattern, query.sl_labels).results
            )
            # Exact author matches are always within epsilon of themselves.
            assert tax_keys - toss_keys == frozenset() or query.category not in (
                "conference",
            )

    def test_epsilon_monotonicity_end_to_end(self, world):
        corpus, dblp, _, _ = world
        small = build_system(corpus, [dblp], 1.0)
        large = build_system(corpus, [dblp], 4.0)
        for query in build_selection_workload(corpus, 5, seed=3):
            small_keys = returned_paper_keys(
                small.select("dblp", query.toss_pattern, query.sl_labels).results
            )
            large_keys = returned_paper_keys(
                large.select("dblp", query.toss_pattern, query.sl_labels).results
            )
            assert small_keys <= large_keys


class TestDslAgainstHandBuilt:
    def test_dsl_query_equals_manual_pattern(self, world):
        corpus, dblp, pages, system = world
        queries = build_selection_workload(corpus, 3, seed=21)
        query = queries[0]
        text = (
            f'inproceedings(author ~ "{query.author_surface}", '
            f'booktitle below "{query.category}")'
        )
        manual = returned_paper_keys(
            system.select("dblp", query.toss_pattern, query.sl_labels).results
        )
        via_dsl = returned_paper_keys(system.query("dblp", text).results)
        assert via_dsl == manual


class TestPersistenceEndToEnd:
    def test_loaded_seo_gives_same_answers(self, world):
        corpus, dblp, pages, system = world
        from repro.core.conditions import SeoConditionContext
        from repro.core.executor import QueryExecutor

        loaded = load_seo(dump_seo(system.seo))
        executor = QueryExecutor(
            system.database, SeoConditionContext(loaded)
        )
        query = build_selection_workload(corpus, 2, seed=21)[0]
        original = returned_paper_keys(
            system.select("dblp", query.toss_pattern, query.sl_labels).results
        )
        reloaded = returned_paper_keys(
            executor.selection("dblp", query.toss_pattern, query.sl_labels).results
        )
        assert original == reloaded


class TestRankedAgainstOracle:
    def test_top_ranked_results_are_relevant(self, world):
        corpus, dblp, pages, system = world
        queries = build_selection_workload(corpus, 4, seed=21)
        for query in queries:
            ranked = ranked_selection(
                system.instances["dblp"].trees,
                query.toss_pattern,
                system.context,
                sl_labels=query.sl_labels,
            )
            if not ranked:
                continue
            # Precision@1: a zero-distance match must be semantically correct.
            best = ranked[0]
            if best.score == 0.0:
                keys = returned_paper_keys([best.tree])
                assert keys <= query.relevant


class TestCrossSourceJoin:
    def test_join_recovers_shared_papers(self, world):
        corpus, dblp, pages, system = world
        parsed = parse_query(
            'inproceedings(title $a), //article(title $b) where $a ~ $b'
        )
        report = system.join("dblp", "sigmod", parsed.pattern,
                             sl_labels=[parsed.label("a"), parsed.label("b")])
        sigmod_keys = {
            paper.key for paper in corpus.papers if paper.venue_key == "sigmod"
        }
        # Every SIGMOD paper whose title survived rendering similarly
        # should appear; at minimum the join is non-empty and sound.
        assert report.results
        for tree in report.results:
            titles = [node.text for node in tree.find_all("title")]
            assert len(titles) == 2
            assert system.seo.measure.distance(titles[0], titles[1]) <= 3.0
