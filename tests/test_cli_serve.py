"""The ``serve`` subcommand and ``query --jobs`` intra-query parallelism."""

import io
import json

import pytest

from repro.cli import main

PAPERS = (
    "<bib>"
    + "".join(
        f"<paper key='p{index}'>"
        f"<title>Paper {index}</title>"
        f"<author>Author {index % 3}</author>"
        f"</paper>"
        for index in range(6)
    )
    + "</bib>"
)


@pytest.fixture
def papers_file(tmp_path):
    path = tmp_path / "papers.xml"
    path.write_text(PAPERS)
    return str(path)


@pytest.fixture
def queries_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text(
        'paper(author ~ "Author 1")\n'
        "# a comment, skipped\n"
        "\n"
        'paper(author ~ "Author 2")\n'
    )
    return str(path)


class TestServeCommand:
    def test_serves_a_batch(self, papers_file, queries_file, capsys):
        status = main(
            [
                "serve",
                "--source", f"papers={papers_file}",
                "--epsilon", "2",
                "--queries", queries_file,
                "--pool", "2",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "# served 2 queries with 2 workers, 0 errors" in out
        assert 'paper(author ~ "Author 1")' in out

    def test_json_output(self, papers_file, queries_file, capsys):
        status = main(
            [
                "serve",
                "--source", f"papers={papers_file}",
                "--epsilon", "2",
                "--queries", queries_file,
                "--pool", "1",
                "--json",
            ]
        )
        assert status == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        assert all(entry["ok"] for entry in payload)
        assert all("report" in entry for entry in payload)

    def test_query_error_sets_exit_status(self, papers_file, tmp_path, capsys):
        queries = tmp_path / "bad.txt"
        queries.write_text('paper(author ~ "Author 1")\npaper(((\n')
        status = main(
            [
                "serve",
                "--source", f"papers={papers_file}",
                "--epsilon", "2",
                "--queries", str(queries),
                "--pool", "1",
            ]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "# ERROR" in out
        assert "1 errors" in out

    def test_reads_stdin_by_default(self, papers_file, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('paper(author ~ "Author 1")\n')
        )
        status = main(
            [
                "serve",
                "--source", f"papers={papers_file}",
                "--epsilon", "2",
                "--pool", "1",
            ]
        )
        assert status == 0
        assert "# served 1 queries" in capsys.readouterr().out

    def test_empty_input(self, papers_file, capsys, monkeypatch):
        monkeypatch.setattr("sys.stdin", io.StringIO("# only comments\n"))
        status = main(
            [
                "serve",
                "--source", f"papers={papers_file}",
                "--epsilon", "2",
            ]
        )
        assert status == 0
        assert "no queries" in capsys.readouterr().err

    def test_deadline_budget_is_enforced(self, papers_file, tmp_path, capsys):
        queries = tmp_path / "q.txt"
        queries.write_text('paper(author ~ "Author 1")\n')
        status = main(
            [
                "serve",
                "--source", f"papers={papers_file}",
                "--epsilon", "2",
                "--queries", str(queries),
                "--pool", "1",
                "--max-steps", "1",
            ]
        )
        assert status == 1
        assert "ResourceExhaustedError" in capsys.readouterr().out


class TestServeStats:
    def test_stats_prints_rolling_status_line(
        self, papers_file, queries_file, capsys
    ):
        status = main(
            [
                "serve",
                "--source", f"papers={papers_file}",
                "--epsilon", "2",
                "--queries", queries_file,
                "--pool", "1",
                "--stats",
            ]
        )
        assert status == 0
        captured = capsys.readouterr()
        assert "# served 2 queries" in captured.out
        # The final status line lands on stderr and reflects the batch.
        assert "[10s]" in captured.err


class TestQueryJobs:
    def test_jobs_matches_serial_output(self, papers_file, capsys):
        argv = [
            "query",
            "--source", f"papers={papers_file}",
            "--epsilon", "2",
            'paper(author ~ "Author 1")',
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv[:1] + ["--jobs", "2"] + argv[1:]) == 0
        partitioned = capsys.readouterr().out
        # Identical result trees; the timing line differs.
        assert serial.splitlines()[1:] == partitioned.splitlines()[1:]
