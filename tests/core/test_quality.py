"""Unit tests for precision/recall/quality metrics."""

import math

import pytest

from repro.core.quality import QualityReport, precision_recall, quality


class TestPrecisionRecall:
    def test_perfect(self):
        assert precision_recall({"a", "b"}, {"a", "b"}) == (1.0, 1.0)

    def test_half_precision(self):
        precision, recall = precision_recall({"a", "x"}, {"a", "b"})
        assert precision == 0.5
        assert recall == 0.5

    def test_empty_returned_has_full_precision(self):
        """TAX's empty answers count as precision 1 (nothing wrong)."""
        assert precision_recall(set(), {"a"}) == (1.0, 0.0)

    def test_empty_ground_truth_has_full_recall(self):
        assert precision_recall({"a"}, set()) == (0.0, 1.0)

    def test_accepts_lists(self):
        precision, recall = precision_recall(["a", "a", "b"], ["a"])
        assert precision == 0.5  # duplicates collapse
        assert recall == 1.0


class TestQuality:
    def test_definition(self):
        assert quality(0.9, 0.4) == pytest.approx(math.sqrt(0.36))

    def test_zero_recall_zero_quality(self):
        assert quality(1.0, 0.0) == 0.0


class TestQualityReport:
    def test_evaluate(self):
        report = QualityReport.evaluate({"a", "b", "x"}, {"a", "b", "c"})
        assert report.hits == 2
        assert report.returned == 3
        assert report.correct == 3
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)
        assert report.quality == pytest.approx(2 / 3)

    def test_f1(self):
        report = QualityReport.evaluate({"a"}, {"a", "b"})
        assert report.f1 == pytest.approx(2 * 1.0 * 0.5 / 1.5)

    def test_f1_degenerate(self):
        report = QualityReport(0.0, 0.0, 0, 0, 0)
        assert report.f1 == 0.0

    def test_str_renders_metrics(self):
        text = str(QualityReport.evaluate({"a"}, {"a"}))
        assert "P=1.000" in text and "R=1.000" in text
