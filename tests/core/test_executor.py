"""Unit tests for the Query Executor and XPath compilation (Section 6)."""

import pytest

from repro.errors import QueryExecutionError
from repro.core.conditions import Below, SeoConditionContext, SimilarTo
from repro.core.executor import (
    QueryExecutor,
    compile_pattern_to_xpath,
    _content_predicates,
    _side_condition,
    _subtree_pattern,
)
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.conditions import (
    And,
    Comparison,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Or,
)
from repro.tax.pattern import AD, PC, pattern_of
from repro.xmldb.database import Database

DBLP = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <title>Paper One</title>
    <year>1999</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <title>Paper Two</title>
    <year>2000</year>
    <booktitle>VLDB</booktitle>
  </inproceedings>
</dblp>
"""

SIGMOD = """
<ProceedingsPage>
  <articles>
    <article key="p1">
      <title>Paper One.</title>
      <author>J. Smith</author>
    </article>
  </articles>
</ProceedingsPage>
"""


@pytest.fixture
def database():
    db = Database()
    db.create_collection("dblp").add_document("d", DBLP)
    db.create_collection("sigmod").add_document("s", SIGMOD)
    return db


@pytest.fixture
def context():
    hierarchy = Hierarchy(
        [
            ("J. Smith", "author"),
            ("J. Smyth", "author"),
            ("SIGMOD Conference", "database conference"),
            ("VLDB", "database conference"),
        ]
    )
    seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 1.0)
    return SeoConditionContext(seo)


class TestXPathCompilation:
    def test_simple_pattern(self):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeContent(2), Constant("J. Smith")),
        )
        xpath = compile_pattern_to_xpath(pattern)
        assert xpath == "//inproceedings[author[. = 'J. Smith']]"

    def test_ad_edge_uses_descendant_path(self):
        pattern = pattern_of([(1, None, PC), (2, 1, AD)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("dblp")),
            Comparison("=", NodeTag(2), Constant("title")),
        )
        assert compile_pattern_to_xpath(pattern) == "//dblp[.//title]"

    def test_unconstrained_tags_become_wildcards(self):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        assert compile_pattern_to_xpath(pattern) == "//*[*]"

    def test_multi_tag_restriction_uses_name_predicate(self):
        pattern = pattern_of([(1, None, PC)])
        pattern.condition = Or(
            Comparison("=", NodeTag(1), Constant("article")),
            Comparison("=", NodeTag(1), Constant("inproceedings")),
        )
        xpath = compile_pattern_to_xpath(pattern)
        assert "name() = 'article'" in xpath
        assert "name() = 'inproceedings'" in xpath

    def test_numeric_comparison_pushdown(self):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(2), Constant("year")),
            Comparison("<=", NodeContent(2), Constant("2000")),
        )
        xpath = compile_pattern_to_xpath(pattern)
        assert "number(.) <= 2000" in xpath

    def test_quotes_handled(self):
        predicates = _content_predicates(
            Comparison("=", NodeContent(1), Constant("O'Neil"))
        )
        assert predicates[1] == ['. = "O\'Neil"']

    def test_unquotable_values_skipped(self):
        predicates = _content_predicates(
            Comparison("=", NodeContent(1), Constant("both ' and \" quotes"))
        )
        assert predicates == {}

    def test_contains_not_pushed_down(self):
        predicates = _content_predicates(
            Contains(NodeContent(1), Constant("conference"))
        )
        assert predicates == {}

    def test_or_over_one_label_pushed(self):
        condition = Or(
            Comparison("=", NodeContent(1), Constant("a")),
            Comparison("=", NodeContent(1), Constant("b")),
        )
        predicates = _content_predicates(condition)
        assert predicates[1] == ["(. = 'a' or . = 'b')"]

    def test_or_over_mixed_labels_not_pushed(self):
        condition = Or(
            Comparison("=", NodeContent(1), Constant("a")),
            Comparison("=", NodeContent(2), Constant("b")),
        )
        assert _content_predicates(condition) == {}


class TestHelpers:
    def test_subtree_pattern(self):
        pattern = pattern_of(
            [(0, None, PC), (1, 0, PC), (2, 1, AD), (3, 0, PC)]
        )
        sub = _subtree_pattern(pattern, 1)
        assert sub.root == 1
        assert sub.labels() == [1, 2]
        assert sub.node(2).edge == AD

    def test_side_condition_keeps_only_side_conjuncts(self):
        condition = And(
            Comparison("=", NodeTag(1), Constant("a")),
            Comparison("=", NodeTag(3), Constant("b")),
            SimilarTo(NodeContent(1), NodeContent(3)),
        )
        side = _side_condition(condition, {1})
        assert side.labels() == {1}


class TestSelectionExecution:
    def test_toss_selection(self, database, context):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            SimilarTo(NodeContent(2), Constant("J. Smith")),
        )
        report = QueryExecutor(database, context).selection("dblp", pattern, [1])
        keys = {t.attributes["key"] for t in report.results}
        assert keys == {"p1", "p2"}
        assert report.total_seconds >= 0
        assert report.candidates >= 2
        assert len(report.xpath_queries) == 1

    def test_tax_executor_exact_only(self, database):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeContent(2), Constant("J. Smith")),
        )
        report = QueryExecutor(database, context=None).selection("dblp", pattern, [1])
        assert {t.attributes["key"] for t in report.results} == {"p1"}

    def test_below_condition_via_executor(self, database, context):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("booktitle")),
            Below(NodeContent(2), Constant("database conference")),
        )
        report = QueryExecutor(database, context).selection("dblp", pattern, [1])
        assert {t.attributes["key"] for t in report.results} == {"p1", "p2"}

    def test_ontology_accesses_counted(self, database, context):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            SimilarTo(NodeContent(2), Constant("J. Smith")),
        )
        toss_report = QueryExecutor(database, context).selection("dblp", pattern, [1])
        assert toss_report.ontology_accesses > 0
        tax_pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        tax_pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeContent(2), Constant("J. Smith")),
        )
        tax_report = QueryExecutor(database, None).selection("dblp", tax_pattern, [1])
        assert tax_report.ontology_accesses == 0

    def test_projection_execution(self, database, context):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            SimilarTo(NodeContent(2), Constant("J. Smith")),
        )
        report = QueryExecutor(database, context).projection("dblp", pattern, [2])
        assert sorted(t.text for t in report.results) == ["J. Smith", "J. Smyth"]


class TestJoinExecution:
    def make_join_pattern(self):
        pattern = pattern_of(
            [(0, None, PC), (1, 0, PC), (2, 1, PC), (3, 0, AD), (4, 3, PC)]
        )
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("title")),
            Comparison("=", NodeTag(3), Constant("article")),
            Comparison("=", NodeTag(4), Constant("title")),
            SimilarTo(NodeContent(2), NodeContent(4)),
        )
        return pattern

    def test_similarity_join(self, database, context):
        report = QueryExecutor(database, context).join(
            "dblp", "sigmod", self.make_join_pattern(), sl_labels=[2, 4]
        )
        assert len(report.results) == 1
        titles = [n.text for n in report.results[0].find_all("title")]
        assert titles == ["Paper One", "Paper One."]
        assert len(report.xpath_queries) == 2

    def test_join_requires_two_subtrees(self, database, context):
        bad = pattern_of([(0, None, PC), (1, 0, PC)])
        with pytest.raises(QueryExecutionError):
            QueryExecutor(database, context).join("dblp", "sigmod", bad)

    def test_tax_join_misses_similar_titles(self, database):
        pattern = self.make_join_pattern()
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("title")),
            Comparison("=", NodeTag(3), Constant("article")),
            Comparison("=", NodeTag(4), Constant("title")),
            Comparison("=", NodeContent(2), NodeContent(4)),
        )
        report = QueryExecutor(database, context=None).join(
            "dblp", "sigmod", pattern, sl_labels=[2, 4]
        )
        assert report.results == []
