"""Unit tests for the TOSS algebra (Section 5.1.2)."""

import pytest

from repro.core.algebra import TossAlgebra
from repro.core.conditions import Below, SeoConditionContext, SimilarTo
from repro.core.instance import SemistructuredInstance, SeoInstance
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.pattern import AD, PC, pattern_of
from repro.xmldb.parser import parse_document

DBLP = """
<dblp>
  <inproceedings>
    <author>J. Smith</author>
    <title>Paper One</title>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings>
    <author>J. Smyth</author>
    <title>Paper Two</title>
    <booktitle>VLDB</booktitle>
  </inproceedings>
  <inproceedings>
    <author>P. Chen</author>
    <title>Paper Three</title>
    <booktitle>SOSP</booktitle>
  </inproceedings>
</dblp>
"""


@pytest.fixture
def algebra():
    hierarchy = Hierarchy(
        [
            ("J. Smith", "author"),
            ("J. Smyth", "author"),
            ("P. Chen", "author"),
            ("SIGMOD Conference", "database conference"),
            ("VLDB", "database conference"),
            ("SOSP", "systems conference"),
        ]
    )
    seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 1.0)
    return TossAlgebra(SeoConditionContext(seo))


@pytest.fixture
def dblp():
    return [parse_document(DBLP)]


def author_similar_pattern(surface):
    pattern = pattern_of([(1, None, PC), (2, 1, PC)])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        SimilarTo(NodeContent(2), Constant(surface)),
    )
    return pattern


class TestSelection:
    def test_similarity_widens_selection(self, algebra, dblp):
        results = algebra.selection(dblp, author_similar_pattern("J. Smith"), [1])
        titles = sorted(t.find_first("title").text for t in results)
        assert titles == ["Paper One", "Paper Two"]

    def test_below_condition(self, algebra, dblp):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("booktitle")),
            Below(NodeContent(2), Constant("database conference")),
        )
        results = algebra.selection(dblp, pattern, [1])
        titles = sorted(t.find_first("title").text for t in results)
        assert titles == ["Paper One", "Paper Two"]

    def test_accepts_instances(self, algebra, dblp):
        instance = SemistructuredInstance("dblp", dblp)
        results = algebra.selection(instance, author_similar_pattern("J. Smith"), [1])
        assert len(results) == 2


class TestProjection:
    def test_projection_through_seo(self, algebra, dblp):
        pattern = author_similar_pattern("J. Smith")
        results = algebra.projection(dblp, pattern, [2])
        assert sorted(t.text for t in results) == ["J. Smith", "J. Smyth"]


class TestJoinAndSets:
    def test_join_on_similar_authors(self, algebra, dblp):
        other = [parse_document(DBLP.replace("J. Smyth", "J. Smith"))]
        pattern = pattern_of(
            [(0, None, PC), (1, 0, AD), (2, 1, PC), (3, 0, AD), (4, 3, PC)]
        )
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeTag(3), Constant("inproceedings")),
            Comparison("=", NodeTag(4), Constant("author")),
            SimilarTo(NodeContent(2), NodeContent(4)),
        )
        results = algebra.join(dblp, other, pattern, sl_labels=[2, 4])
        pairs = {
            tuple(node.text for node in tree.find_all("author"))
            for tree in results
        }
        # Smith ~ Smith, Smith ~ Smyth, Smyth ~ Smith, Chen ~ Chen...
        assert ("J. Smith", "J. Smith") in pairs
        assert ("J. Smyth", "J. Smith") in pairs
        assert ("P. Chen", "P. Chen") in pairs
        assert ("P. Chen", "J. Smith") not in pairs

    def test_product(self, algebra, dblp):
        pairs = algebra.product(dblp, dblp)
        assert len(pairs) == 1
        assert len(pairs[0].children) == 2

    def test_set_operators(self, algebra, dblp):
        a = algebra.selection(dblp, author_similar_pattern("J. Smith"), [1])
        b = algebra.selection(dblp, author_similar_pattern("P. Chen"), [1])
        assert len(algebra.union(a, b)) == 3
        assert len(algebra.intersection(a, b)) == 0
        assert len(algebra.difference(a, b)) == 2
        assert len(algebra.intersection(a, a)) == 2


class TestGrouping:
    def test_grouping_under_seo_conditions(self, algebra, dblp):
        from repro.tax.conditions import NodeContent as Content
        from repro.tax.grouping import GROUP_BASIS_TAG

        pattern = author_similar_pattern("J. Smith")
        groups = algebra.grouping(dblp, pattern, [Content(2)], sl_labels=[1])
        keys = sorted(
            g.child_by_tag(GROUP_BASIS_TAG).children[0].text for g in groups
        )
        assert keys == ["J. Smith", "J. Smyth"]


class TestLift:
    def test_lift_produces_seo_instance(self, algebra, dblp):
        instance = SemistructuredInstance("dblp", dblp)
        lifted = algebra.lift(instance)
        assert isinstance(lifted, SeoInstance)
        assert lifted.seo is algebra.context.seo
