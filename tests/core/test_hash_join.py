"""Unit tests for the executor's similarity hash join."""

import pytest

from repro.core.conditions import SeoConditionContext, SimilarTo
from repro.core.executor import QueryExecutor, _cross_similarity_atom
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.pattern import pattern_of
from repro.xmldb.database import Database

LEFT = """
<dblp>
  <inproceedings key="l1"><title>Alpha Beta Gamma</title></inproceedings>
  <inproceedings key="l2"><title>Delta Epsilon</title></inproceedings>
  <inproceedings key="l3"><title>Completely Different Thing</title></inproceedings>
</dblp>
"""

RIGHT = """
<page>
  <article key="r1"><title>Alpha Beta Gamma.</title></article>
  <article key="r2"><title>Delta Epsilom</title></article>
  <article key="r3"><title>Unrelated</title></article>
</page>
"""


def join_pattern(similar=True):
    pattern = pattern_of(
        [(0, None, "pc"), (1, 0, "pc"), (2, 1, "pc"), (3, 0, "ad"), (4, 3, "pc")]
    )
    cross = (
        SimilarTo(NodeContent(2), NodeContent(4))
        if similar
        else Comparison("=", NodeContent(2), NodeContent(4))
    )
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("article")),
        Comparison("=", NodeTag(4), Constant("title")),
        cross,
    )
    return pattern


@pytest.fixture
def database():
    db = Database()
    db.create_collection("left").add_document("l", LEFT)
    db.create_collection("right").add_document("r", RIGHT)
    return db


@pytest.fixture
def context():
    hierarchy = Hierarchy(nodes=["title"])
    seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 2.0)
    return SeoConditionContext(seo)


class TestCrossAtomDetection:
    def test_finds_cross_atom(self):
        pattern = join_pattern()
        atom = _cross_similarity_atom(pattern.condition, {1, 2}, {3, 4})
        assert atom is not None
        assert atom.left.labels() == {2}
        assert atom.right.labels() == {4}

    def test_normalises_orientation(self):
        pattern = pattern_of([(0, None, "pc"), (1, 0, "pc"), (2, 0, "pc")])
        pattern.condition = SimilarTo(NodeContent(2), NodeContent(1))
        atom = _cross_similarity_atom(pattern.condition, {1}, {2})
        assert atom.left.labels() == {1}

    def test_same_side_atom_ignored(self):
        condition = SimilarTo(NodeContent(1), NodeContent(2))
        assert _cross_similarity_atom(condition, {1, 2}, {3}) is None

    def test_constant_atom_ignored(self):
        condition = SimilarTo(NodeContent(1), Constant("x"))
        assert _cross_similarity_atom(condition, {1}, {2}) is None


class TestHashJoinEquivalence:
    def test_matches_expected_pairs(self, database, context):
        executor = QueryExecutor(database, context)
        report = executor.join("left", "right", join_pattern(), sl_labels=[2, 4])
        pairs = set()
        for tree in report.results:
            titles = tuple(n.text for n in tree.find_all("title"))
            pairs.add(titles)
        assert pairs == {
            ("Alpha Beta Gamma", "Alpha Beta Gamma."),
            ("Delta Epsilon", "Delta Epsilom"),
        }

    def test_agrees_with_naive_product(self, database, context):
        fast = QueryExecutor(database, context, similarity_hash_join=True)
        slow = QueryExecutor(database, context, similarity_hash_join=False)
        pattern = join_pattern()
        fast_results = fast.join("left", "right", pattern, sl_labels=[2, 4])
        slow_results = slow.join("left", "right", pattern, sl_labels=[2, 4])
        assert {t.canonical_key() for t in fast_results.results} == {
            t.canonical_key() for t in slow_results.results
        }

    def test_falls_back_without_cross_atom(self, database, context):
        executor = QueryExecutor(database, context)
        report = executor.join(
            "left", "right", join_pattern(similar=False), sl_labels=[2, 4]
        )
        assert report.results == []  # no exactly-equal titles

    def test_known_ontology_terms_bypass_distance_pruning(self, database):
        # "booktitle" and "conference" are fused (equal) terms: string
        # distance 8, but similar through the SEO.  The hash join must
        # not drop the pair.
        from repro.ontology import parse_constraint

        left = Hierarchy(nodes=["booktitle"])
        right = Hierarchy(nodes=["conference"])
        seo = SimilarityEnhancedOntology.build(
            {1: left, 2: right},
            Levenshtein(),
            1.0,
            [parse_constraint("booktitle:1 = conference:2")],
        )
        context = SeoConditionContext(seo)
        db = Database()
        db.create_collection("left").add_document(
            "l", "<x><r key='a'><v>booktitle</v></r></x>"
        )
        db.create_collection("right").add_document(
            "r", "<y><s key='b'><w>conference</w></s></y>"
        )
        pattern = pattern_of(
            [(0, None, "pc"), (1, 0, "pc"), (2, 1, "pc"), (3, 0, "ad"), (4, 3, "pc")]
        )
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("r")),
            Comparison("=", NodeTag(2), Constant("v")),
            Comparison("=", NodeTag(3), Constant("s")),
            Comparison("=", NodeTag(4), Constant("w")),
            SimilarTo(NodeContent(2), NodeContent(4)),
        )
        executor = QueryExecutor(db, context)
        report = executor.join("left", "right", pattern)
        assert len(report.results) == 1
