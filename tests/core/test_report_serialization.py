"""Round-trip tests for the canonical report serializers.

``ExecutionReport.to_dict``/``from_dict`` is the single serialization
path shared by the CLI (``query --json``, ``db trace``), the experiment
runner and the event sinks; these tests pin the round trip and guard
against a field being added to the dataclass without a serializer entry.
"""

import dataclasses

from repro.core.build_report import BuildReport, RelationBuild
from repro.core.executor import ExecutionReport
from repro.xmldb.parser import parse_fragment
from repro.xmldb.serializer import serialize

TRACE = {
    "name": "query.selection",
    "seconds": 0.012,
    "attributes": {"results": 1},
    "children": [
        {"name": "rewrite", "seconds": 0.002},
        {"name": "xpath", "seconds": 0.01},
    ],
}


def sample_report(**overrides):
    values = dict(
        results=[parse_fragment("<inproceedings key='p1'><title>T</title></inproceedings>")],
        rewrite_seconds=0.002,
        planner_seconds=0.001,
        xpath_seconds=0.01,
        convert_seconds=0.003,
        xpath_queries=["//inproceedings[title]", "//inproceedings[author]"],
        candidates=5,
        ontology_accesses=7,
        degraded=False,
        docs_total=10,
        docs_scanned=4,
        index_used=True,
        plan_cache_hit=True,
        trace=dict(TRACE),
    )
    values.update(overrides)
    return ExecutionReport(**values)


class TestExecutionReportRoundTrip:
    def test_scalars_survive(self):
        report = sample_report()
        rebuilt = ExecutionReport.from_dict(report.to_dict())
        for name in ExecutionReport._SCALAR_FIELDS:
            assert getattr(rebuilt, name) == getattr(report, name), name
        assert rebuilt.trace == report.trace
        assert rebuilt.total_seconds == report.total_seconds
        assert rebuilt.docs_pruned == report.docs_pruned

    def test_results_reparsed_when_included(self):
        report = sample_report()
        payload = report.to_dict(include_results=True)
        rebuilt = ExecutionReport.from_dict(payload)
        assert len(rebuilt.results) == 1
        assert serialize(rebuilt.results[0]) == serialize(report.results[0])

    def test_results_omitted_by_default(self):
        payload = sample_report().to_dict()
        assert "results" not in payload
        assert payload["result_count"] == 1
        assert ExecutionReport.from_dict(payload).results == []

    def test_trace_omitted_when_absent(self):
        payload = sample_report(trace=None).to_dict()
        assert "trace" not in payload
        assert ExecutionReport.from_dict(payload).trace is None

    def test_derived_fields_match_payload(self):
        report = sample_report()
        payload = report.to_dict()
        assert payload["total_seconds"] == report.total_seconds
        assert payload["docs_pruned"] == 6

    def test_scalar_fields_cover_the_dataclass(self):
        # Drift guard: a field added to ExecutionReport must either be a
        # serialized scalar or one of the two specially-handled fields.
        field_names = {f.name for f in dataclasses.fields(ExecutionReport)}
        assert field_names == set(ExecutionReport._SCALAR_FIELDS) | {
            "results",
            "trace",
        }


class TestBuildReportRoundTrip:
    def sample(self):
        return BuildReport(
            measure="levenshtein",
            epsilon=2.0,
            mode="order-safe",
            workers=2,
            candidate_filter=True,
            cache_used=True,
            build_seconds=1.25,
            relations=[
                RelationBuild(
                    relation="isa",
                    cache_hit=False,
                    fusion_seconds=0.5,
                    sea_seconds=0.7,
                    total_seconds=1.2,
                    sea={"total_pairs": 10, "pairs_pruned": 4, "candidates": 6},
                )
            ],
            trace={
                "name": "build",
                "seconds": 1.25,
                "children": [{"name": "relation.isa", "seconds": 1.2}],
            },
        )

    def test_round_trip(self):
        report = self.sample()
        rebuilt = BuildReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.trace == report.trace
        assert rebuilt.relations[0].relation == "isa"
        assert rebuilt.total_pairs == 10

    def test_trace_omitted_when_absent(self):
        report = self.sample()
        report.trace = None
        payload = report.to_dict()
        assert "trace" not in payload
        assert BuildReport.from_dict(payload).trace is None
