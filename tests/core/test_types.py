"""Unit tests for the type system and conversion functions (Section 5)."""

import pytest

from repro.errors import ConversionError, TypeSystemError
from repro.core.types import STRING, TypeSystem, default_type_system


class TestRegistration:
    def test_string_always_present(self):
        system = TypeSystem()
        assert system.has_type(STRING)

    def test_add_type_below_supertype(self):
        system = TypeSystem()
        system.add_type("int", supertype=STRING, parser=int)
        assert system.subtype("int", STRING)

    def test_duplicate_type_rejected(self):
        system = TypeSystem()
        system.add_type("int")
        with pytest.raises(TypeSystemError):
            system.add_type("int")

    def test_unknown_supertype_rejected(self):
        with pytest.raises(TypeSystemError):
            TypeSystem().add_type("x", supertype="nope")

    def test_duplicate_conversion_rejected(self):
        """The paper assumes at most one conversion per type pair."""
        system = TypeSystem()
        system.add_type("a")
        system.add_type("b")
        system.add_conversion("a", "b", str)
        with pytest.raises(TypeSystemError):
            system.add_conversion("a", "b", repr)

    def test_conversion_requires_known_types(self):
        with pytest.raises(TypeSystemError):
            TypeSystem().add_conversion("x", STRING, str)


class TestConversion:
    def test_identity_exists_for_every_type(self):
        system = TypeSystem()
        system.add_type("mm")
        assert system.convert(5, "mm", "mm") == 5

    def test_direct_conversion(self):
        system = default_type_system()
        assert system.convert(25.0, "length_mm", "length_cm") == 2.5

    def test_composed_conversion(self):
        system = default_type_system()
        # mm -> cm -> m composes automatically.
        assert system.convert(2500.0, "length_mm", "length_m") == pytest.approx(2.5)

    def test_missing_conversion_raises(self):
        system = default_type_system()
        with pytest.raises(ConversionError):
            system.convert(1.0, "usd", "length_m")

    def test_can_convert(self):
        system = default_type_system()
        assert system.can_convert("length_mm", "length_m")
        assert not system.can_convert("eur", "length_cm")
        assert system.can_convert("year", STRING)

    def test_parse_value(self):
        system = default_type_system()
        assert system.parse_value("1999", "year") == 1999
        assert system.parse_value("free text", STRING) == "free text"

    def test_parse_value_domain_violation(self):
        system = default_type_system()
        with pytest.raises(ConversionError):
            system.parse_value("not-a-year", "year")

    def test_in_domain(self):
        system = default_type_system()
        assert system.in_domain(1999, "year")
        assert not system.in_domain("x", "int")


class TestLeastCommonSupertype:
    def test_siblings_meet_at_parent(self):
        system = default_type_system()
        assert system.least_common_supertype("usd", "eur") == "currency"
        assert system.least_common_supertype("length_mm", "length_cm") == "length"

    def test_comparable_pair(self):
        system = default_type_system()
        assert system.least_common_supertype("year", "int") == "int"

    def test_same_type(self):
        system = default_type_system()
        assert system.least_common_supertype("usd", "usd") == "usd"

    def test_cross_branch_meets_at_string(self):
        system = default_type_system()
        assert system.least_common_supertype("usd", "length_mm") == STRING

    def test_unknown_type_gives_none(self):
        system = default_type_system()
        assert system.least_common_supertype("usd", "martian") is None


class TestValidation:
    def test_default_system_validates(self):
        default_type_system().validate(check_routes=True, probes=[1.0, 10.0])

    def test_missing_hierarchy_conversion_detected(self):
        system = TypeSystem()
        system.add_type("broken", supertype=STRING)  # no conversion to string
        with pytest.raises(TypeSystemError):
            system.validate()

    def test_inconsistent_routes_detected(self):
        system = TypeSystem()
        system.add_type("a")
        system.add_type("b")
        system.add_type("c")
        system.add_conversion("a", "b", lambda v: v * 2)
        system.add_conversion("b", "c", lambda v: v + 1)
        system.add_conversion("a", "c", lambda v: v)  # disagrees with a->b->c
        with pytest.raises(TypeSystemError):
            system.validate(check_routes=True, probes=[3])
