"""Unit tests for semistructured / ontology-extended / SEO instances."""

import pytest

from repro.core.instance import (
    OntologyExtendedInstance,
    SemistructuredInstance,
    SeoInstance,
)
from repro.ontology import Hierarchy, Ontology
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.xmldb.parser import parse_document

DOC = "<dblp><inproceedings><author>A</author></inproceedings></dblp>"


@pytest.fixture
def trees():
    return [parse_document(DOC)]


class TestSemistructuredInstance:
    def test_basic_accessors(self, trees):
        instance = SemistructuredInstance("dblp", trees)
        assert len(instance) == 1
        assert instance.total_nodes() == 3
        assert instance.total_bytes() > 0
        assert instance.tags() == {"dblp", "inproceedings", "author"}

    def test_default_typing_is_tag(self, trees):
        instance = SemistructuredInstance("dblp", trees)
        author = trees[0].find_first("author")
        assert instance.type_of(author, "tag") == "author"
        assert instance.type_of(author, "content") == "author"

    def test_custom_typing(self, trees):
        instance = SemistructuredInstance(
            "dblp", trees, typing=lambda node, attr: "custom"
        )
        assert instance.type_of(trees[0], "tag") == "custom"


class TestOntologyExtendedInstance:
    def test_carries_ontology(self, trees):
        ontology = Ontology({Ontology.ISA: Hierarchy([("author", "person")])})
        instance = OntologyExtendedInstance("dblp", trees, ontology)
        assert instance.isa.leq("author", "person")
        assert len(instance.part_of) == 0


class TestSeoInstance:
    def test_lift_shares_seo(self, trees):
        seo = SimilarityEnhancedOntology.for_hierarchy(
            Hierarchy([("author", "person")]), Levenshtein(), 1.0
        )
        base = SemistructuredInstance("dblp", trees)
        lifted = SeoInstance.lift(base, seo)
        assert lifted.seo is seo
        assert lifted.trees == base.trees
        assert lifted.name == "dblp"
