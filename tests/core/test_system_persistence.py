"""Unit tests for whole-system persistence."""

import pytest

from repro.errors import TossError
from repro.core.parser import parse_query
from repro.core.persistence import load_system, save_system
from repro.core.system import TossSystem
from repro.data import samples


@pytest.fixture
def built_system():
    return samples.sample_system(epsilon=3.0)


class TestRoundTrip:
    def test_queries_survive(self, built_system, tmp_path):
        save_system(built_system, str(tmp_path / "sys"))
        loaded = load_system(str(tmp_path / "sys"))
        query = "inproceedings(title $a), //article(title $b) where $a ~ $b"
        original = built_system.query(
            "dblp", query, right_collection="sigmod"
        ).results
        restored = loaded.query("dblp", query, right_collection="sigmod").results
        assert {t.canonical_key() for t in original} == {
            t.canonical_key() for t in restored
        }

    def test_configuration_survives(self, built_system, tmp_path):
        save_system(built_system, str(tmp_path / "sys"))
        loaded = load_system(str(tmp_path / "sys"))
        assert loaded.epsilon == built_system.epsilon
        assert loaded.measure.name == built_system.measure.name
        assert sorted(loaded.instances) == sorted(built_system.instances)
        assert loaded.ontology_size() == built_system.ontology_size()

    def test_constraints_survive_and_rebuild_works(self, built_system, tmp_path):
        save_system(built_system, str(tmp_path / "sys"))
        loaded = load_system(str(tmp_path / "sys"))
        loaded.build()  # recompute from restored documents + constraints
        assert loaded.seo.leq("SIGMOD Conference", "booktitle")

    def test_part_of_relation_restored(self, built_system, tmp_path):
        save_system(built_system, str(tmp_path / "sys"))
        loaded = load_system(str(tmp_path / "sys"))
        assert "part-of" in loaded.context.seos


class TestErrors:
    def test_unbuilt_system_rejected(self, tmp_path):
        system = TossSystem()
        system.add_instance("x", "<a><b>1</b></a>")
        with pytest.raises(TossError):
            save_system(system, str(tmp_path / "sys"))

    def test_missing_directory(self, tmp_path):
        with pytest.raises(TossError):
            load_system(str(tmp_path / "nothing-here"))

    def test_corrupt_system_file(self, tmp_path):
        save_system(samples.sample_system(epsilon=3.0), str(tmp_path / "sys"))
        (tmp_path / "sys" / "system.json").write_text("{torn")
        with pytest.raises(TossError):
            load_system(str(tmp_path / "sys"))


class TestCorruptionRecovery:
    def test_corrupt_document_raises_by_default(self, built_system, tmp_path):
        root = tmp_path / "sys"
        save_system(built_system, str(root))
        victim = next((root / "database" / "dblp").glob("*.xml"))
        victim.write_text("garbage")
        from repro.errors import StorageCorruptionError

        with pytest.raises(StorageCorruptionError):
            load_system(str(root))

    def test_corrupt_document_quarantined(self, built_system, tmp_path):
        root = tmp_path / "sys"
        save_system(built_system, str(root))
        victim = next((root / "database" / "dblp").glob("*.xml"))
        victim.write_text("garbage")
        loaded = load_system(str(root), on_corruption="quarantine")
        report = loaded.database.recovery_report
        assert len(report.quarantined) == 1
        # the surviving collections still answer queries
        out = loaded.query("sigmod", "article(title)")
        assert len(out.results) > 0

    def test_corrupt_seo_rebuilt_from_documents(self, built_system, tmp_path):
        root = tmp_path / "sys"
        save_system(built_system, str(root))
        (root / "seo" / "isa.json").write_text("{torn json")
        with pytest.raises(TossError):
            load_system(str(root))
        loaded = load_system(str(root), on_corruption="quarantine")
        assert not loaded.degraded  # rebuilt, not degraded
        query = "inproceedings(title $a), //article(title $b) where $a ~ $b"
        original = built_system.query(
            "dblp", query, right_collection="sigmod"
        ).results
        restored = loaded.query("dblp", query, right_collection="sigmod").results
        assert {t.canonical_key() for t in original} == {
            t.canonical_key() for t in restored
        }
