"""Unit tests for the textual query language."""

import pytest

from repro.errors import ConditionError
from repro.core.conditions import Below, PartOf, SimilarTo
from repro.core.parser import parse_query
from repro.tax.conditions import And, Comparison, Constant, Contains, NodeTag
from repro.tax.pattern import AD, PC


def condition_atoms(pattern):
    condition = pattern.condition
    return list(condition.operands) if isinstance(condition, And) else [condition]


class TestElements:
    def test_bare_element(self):
        parsed = parse_query("inproceedings")
        assert len(parsed.pattern) == 1
        assert parsed.roots == [1]
        atoms = condition_atoms(parsed.pattern)
        assert repr(atoms[0]) == "(#1.tag = 'inproceedings')"

    def test_wildcard_element_has_no_tag_condition(self):
        parsed = parse_query("*(author)")
        atoms = condition_atoms(parsed.pattern)
        assert all("'*'" not in repr(atom) for atom in atoms)

    def test_children_default_pc(self):
        parsed = parse_query("inproceedings(author, title)")
        assert len(parsed.pattern) == 3
        assert parsed.pattern.node(2).edge == PC
        assert parsed.pattern.node(3).edge == PC

    def test_double_slash_makes_ad(self):
        parsed = parse_query("dblp(//author)")
        assert parsed.pattern.node(2).edge == AD

    def test_nesting(self):
        parsed = parse_query("articles(article(title, author))")
        assert parsed.pattern.node(3).parent == 2
        assert parsed.pattern.node(4).parent == 2


class TestConditions:
    def test_child_content_condition(self):
        parsed = parse_query('inproceedings(year = "1999")')
        atoms = condition_atoms(parsed.pattern)
        assert any(repr(a) == "(#2.content = '1999')" for a in atoms)

    def test_similarity_operator(self):
        parsed = parse_query('inproceedings(author ~ "J. Ullman")')
        atoms = condition_atoms(parsed.pattern)
        assert any(isinstance(a, SimilarTo) for a in atoms)

    def test_keyword_operators(self):
        parsed = parse_query(
            'paper(venue below "conference", affiliation part_of "us government",'
            ' title contains "XML")'
        )
        atoms = condition_atoms(parsed.pattern)
        kinds = {type(a).__name__ for a in atoms}
        assert {"Below", "PartOf", "Contains"} <= kinds

    def test_dot_condition_applies_to_element_itself(self):
        parsed = parse_query('author(. = "J. Ullman")')
        atoms = condition_atoms(parsed.pattern)
        assert any(repr(a) == "(#1.content = 'J. Ullman')" for a in atoms)

    def test_numeric_style_comparisons(self):
        parsed = parse_query('inproceedings(year <= "2000", year > "1995")')
        atoms = condition_atoms(parsed.pattern)
        operators = [a.op for a in atoms if isinstance(a, Comparison) and a.op != "="]
        assert sorted(operators) == ["<=", ">"]

    def test_single_quotes_work(self):
        parsed = parse_query("author(. = 'X')")
        assert any("'X'" in repr(a) for a in condition_atoms(parsed.pattern))


class TestVariablesAndJoins:
    def test_variable_binding(self):
        parsed = parse_query("inproceedings(title $t)")
        assert parsed.variables == {"t": 2}
        assert parsed.label("$t") == 2
        assert parsed.label("t") == 2

    def test_unknown_variable_lookup(self):
        parsed = parse_query("inproceedings")
        with pytest.raises(ConditionError):
            parsed.label("missing")

    def test_duplicate_variable_rejected(self):
        with pytest.raises(ConditionError):
            parse_query("a(b $x, c $x)")

    def test_join_query_builds_product_pattern(self):
        parsed = parse_query(
            'inproceedings(title $a), article(title $b) where $a ~ $b'
        )
        root = parsed.pattern.root
        children = parsed.pattern.children(root)
        assert len(children) == 2
        assert all(child.edge == AD for child in children)
        assert parsed.roots == [child.label for child in children]
        atoms = condition_atoms(parsed.pattern)
        similar = [a for a in atoms if isinstance(a, SimilarTo)]
        assert len(similar) == 1
        assert similar[0].labels() == {parsed.label("a"), parsed.label("b")}

    def test_where_with_literal(self):
        parsed = parse_query('inproceedings(year $y) where $y = "1999"')
        atoms = condition_atoms(parsed.pattern)
        assert any(repr(a) == "(#2.content = '1999')" for a in atoms)

    def test_where_and_chains(self):
        parsed = parse_query(
            'inproceedings(year $y, title $t) where $y = "1999" and $t contains "XML"'
        )
        atoms = condition_atoms(parsed.pattern)
        assert sum(isinstance(a, (Comparison, Contains)) for a in atoms) >= 4

    def test_where_unknown_variable(self):
        with pytest.raises(ConditionError):
            parse_query('inproceedings where $nope = "x"')


class TestErrors:
    def test_empty_query(self):
        with pytest.raises(ConditionError):
            parse_query("   ")

    def test_unbalanced_parens(self):
        with pytest.raises(ConditionError):
            parse_query("a(b")

    def test_trailing_garbage(self):
        with pytest.raises(ConditionError):
            parse_query("a b c")

    def test_missing_operand(self):
        with pytest.raises(ConditionError):
            parse_query("a(b =)")

    def test_bad_character(self):
        with pytest.raises(ConditionError):
            parse_query("a(&)")


class TestEndToEnd:
    def test_parsed_pattern_runs_through_tax(self):
        from repro.tax.algebra import selection
        from repro.xmldb import parse_document

        doc = parse_document(
            "<dblp><inproceedings><title>X</title><year>1999</year>"
            "</inproceedings></dblp>"
        )
        parsed = parse_query('inproceedings(title, year = "1999")')
        results = selection([doc], parsed.pattern, sl_labels=parsed.roots)
        assert len(results) == 1
        assert results[0].find_first("title").text == "X"
