"""Guard accounting parity: batched verify vs per-document verify.

The batched verifier must be invisible to the resource guard: one tick
per candidate document (and per probed join pair), the same ``what``
labels, the same ``stage_steps == steps`` partition, and — when a step
budget trips mid-verify — the same exception with the same message at
the same step count.  Otherwise a budget tuned against one path would
silently admit (or kill) queries on the other.
"""

import pytest

from repro.data import generate_corpus, render_dblp
from repro.data.sigmod import render_sigmod_pages
from repro.errors import ResourceExhaustedError
from repro.experiments.workload import (
    build_join_pattern,
    build_scalability_pattern,
    build_system,
)
from repro.guard import ResourceGuard

SEED = 11
EPSILON = 3.0


def _sharded(corpus, keys):
    return [render_dblp(corpus, seed=SEED, paper_keys=[key]) for key in keys]


@pytest.fixture(scope="module")
def system():
    corpus = generate_corpus(30, seed=SEED)
    keys = corpus.paper_keys()
    documents = _sharded(corpus, keys)
    pages = render_sigmod_pages(corpus, seed=SEED, paper_keys=keys)
    system = build_system(
        corpus, documents, EPSILON, sigmod_documents=pages, use_cache=False
    )
    system.executor.similarity_hash_join = False
    return system


def _selection(system, guard):
    pattern = build_scalability_pattern()
    return system.executor.selection(
        "dblp", pattern, sl_labels=[1], guard=guard
    )


def _join(system, guard):
    return system.executor.join(
        "dblp", "sigmod", build_join_pattern(), sl_labels=[2, 5], guard=guard
    )


def _run_both(system, run, max_steps):
    """((outcome, guard) batched, (outcome, guard) per-document)."""
    executor = system.executor
    snapshots = []
    for batched in (True, False):
        executor.verify_batched = batched
        guard = ResourceGuard(max_steps=max_steps)
        try:
            outcome = ("ok", [t.canonical_key() for t in run(system, guard).results])
        except ResourceExhaustedError as exc:
            outcome = ("error", str(exc))
        snapshots.append((outcome, guard))
    executor.verify_batched = True
    return snapshots


class TestSelectionGuardParity:
    def test_ample_budget_identical_accounting(self, system):
        (out_b, g_b), (out_u, g_u) = _run_both(system, _selection, 10**6)
        assert out_b[0] == out_u[0] == "ok"
        assert out_b[1] == out_u[1]
        assert g_b.steps == g_u.steps > 0
        assert g_b.stage_steps == g_u.stage_steps
        assert sum(g_b.stage_steps.values()) == g_b.steps
        assert g_b.stage_steps["result verification"] > 0

    def test_step_budget_trips_identically(self, system):
        # Pick a budget that lands mid-verify: enough for the xpath
        # phase, short of the full candidate sweep.
        _, full_guard = _run_both(system, _selection, 10**6)[0]
        verify_ticks = full_guard.stage_steps["result verification"]
        budget = full_guard.steps - verify_ticks // 2
        (out_b, g_b), (out_u, g_u) = _run_both(system, _selection, budget)
        assert out_b[0] == out_u[0] == "error"
        assert out_b[1] == out_u[1]
        assert g_b.steps == g_u.steps
        assert g_b.stage_steps == g_u.stage_steps


class TestJoinGuardParity:
    def test_ample_budget_identical_accounting(self, system):
        (out_b, g_b), (out_u, g_u) = _run_both(system, _join, 10**7)
        assert out_b[0] == out_u[0] == "ok"
        assert out_b[1] == out_u[1]
        assert g_b.steps == g_u.steps > 0
        assert g_b.stage_steps == g_u.stage_steps
        assert sum(g_b.stage_steps.values()) == g_b.steps
        # One product tick per probed pair, one verification tick per pair.
        assert g_b.stage_steps["join product"] > 0
        assert g_b.stage_steps["result verification"] > 0

    def test_step_budget_trips_identically(self, system):
        _, full_guard = _run_both(system, _join, 10**7)[0]
        verify_ticks = full_guard.stage_steps["result verification"]
        budget = full_guard.steps - verify_ticks // 2
        (out_b, g_b), (out_u, g_u) = _run_both(system, _join, budget)
        assert out_b[0] == out_u[0] == "error"
        assert out_b[1] == out_u[1]
        assert g_b.steps == g_u.steps
        assert g_b.stage_steps == g_u.stage_steps
