"""Unit tests for QueryExecutor.explain and the SEO expansion cache."""

import pytest

from repro.core.conditions import SeoConditionContext, SimilarTo
from repro.core.executor import QueryExecutor
from repro.core.parser import parse_query
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.xmldb.database import Database


@pytest.fixture
def executor():
    hierarchy = Hierarchy(
        [("J. Smith", "author"), ("J. Smyth", "author"),
         ("SIGMOD Conference", "database conference")]
    )
    seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 1.0)
    database = Database()
    database.create_collection("dblp")
    return QueryExecutor(database, SeoConditionContext(seo))


class TestExplain:
    def test_selection_plan_shows_expansion(self, executor):
        parsed = parse_query('inproceedings(author ~ "J. Smith")')
        plan = executor.explain(parsed.pattern)
        assert "~" in plan.original
        assert "J. Smyth" in plan.rewritten  # the SEO expansion is visible
        assert len(plan.xpath_queries) == 1
        assert plan.xpath_queries[0].startswith("//inproceedings")

    def test_join_plan_has_two_xpaths(self, executor):
        parsed = parse_query(
            "inproceedings(title $a), article(title $b) where $a ~ $b"
        )
        plan = executor.explain(parsed.pattern)
        assert len(plan.xpath_queries) == 2

    def test_str_rendering(self, executor):
        parsed = parse_query('inproceedings(author ~ "J. Smith")')
        text = str(executor.explain(parsed.pattern))
        assert "original" in text and "rewritten" in text and "xpath[0]" in text

    def test_tax_plan_is_identity(self):
        database = Database()
        tax = QueryExecutor(database, context=None)
        parsed = parse_query('inproceedings(author = "X")')
        plan = tax.explain(parsed.pattern)
        assert plan.original == plan.rewritten


class TestExpansionCache:
    def test_expansions_cached_and_stable(self, executor):
        seo = executor.context.seo
        first = seo.expand_below("database conference")
        second = seo.expand_below("database conference")
        assert first is second  # memoised
        assert seo.expand_similar("J. Smith") is seo.expand_similar("J. Smith")
        assert seo.expand_above("J. Smith") is seo.expand_above("J. Smith")

    def test_unknown_terms_cached_too(self, executor):
        seo = executor.context.seo
        assert seo.expand_similar("Zzzz") is seo.expand_similar("Zzzz")
