"""Unit tests for the TOSS extended condition language (Section 5.1.1)."""

import pytest

from repro.errors import ConditionError, IllTypedConditionError
from repro.core.conditions import (
    Above,
    Below,
    InstanceOf,
    Isa,
    PartOf,
    SeoConditionContext,
    SimilarTo,
    SubtypeOf,
    TypedComparison,
    default_typing,
    rewrite_condition,
)
from repro.core.types import default_type_system
from repro.ontology import Hierarchy, Ontology
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.conditions import (
    And,
    Comparison,
    ConditionContext,
    Constant,
    NodeContent,
    NodeTag,
    Not,
    Or,
)
from repro.xmldb.model import build


@pytest.fixture
def seo():
    hierarchy = Hierarchy(
        [
            ("J. Smith", "author"),
            ("J. Smyth", "author"),
            ("author", "person"),
            ("SIGMOD Conference", "database conference"),
            ("VLDB", "database conference"),
            ("database conference", "conference"),
        ]
    )
    return SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 1.0)


@pytest.fixture
def part_of_seo():
    hierarchy = Hierarchy(
        [("US Census Bureau", "us government"), ("us government", "government")]
    )
    return SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 0.0)


@pytest.fixture
def context(seo, part_of_seo):
    return SeoConditionContext(seo, seos={"part-of": part_of_seo})


@pytest.fixture
def binding():
    paper = build(
        "inproceedings",
        build("author", "J. Smith"),
        build("booktitle", "SIGMOD Conference"),
        build("year", "1999"),
    )
    paper.renumber()
    return {
        1: paper,
        2: paper.children[0],
        3: paper.children[1],
        4: paper.children[2],
    }


class TestSemanticHooks:
    def test_similar(self, context):
        assert context.similar("J. Smith", "J. Smyth")
        assert not context.similar("J. Smith", "VLDB")

    def test_subtype_of_reflexive(self, context):
        assert context.subtype_of("author", "author")
        assert context.subtype_of("VLDB", "conference")

    def test_instance_of_strict(self, context):
        assert context.instance_of("J. Smith", "author")
        assert not context.instance_of("author", "author")

    def test_below_above(self, context):
        assert context.below("VLDB", "conference")
        assert context.above("conference", "VLDB")
        assert not context.below("conference", "VLDB")

    def test_part_of_uses_other_seo(self, context):
        assert context.part_of("US Census Bureau", "us government")
        assert not context.part_of("J. Smith", "us government")

    def test_part_of_missing_relation(self, seo):
        bare = SeoConditionContext(seo, seos={})
        with pytest.raises(ConditionError):
            bare.part_of("a", "b")


class TestAtoms:
    def test_similar_to_atom(self, context, binding):
        atom = SimilarTo(NodeContent(2), Constant("J. Smyth"))
        assert atom.evaluate(binding, context)

    def test_below_atom(self, context, binding):
        atom = Below(NodeContent(3), Constant("conference"))
        assert atom.evaluate(binding, context)

    def test_above_atom(self, context, binding):
        atom = Above(Constant("conference"), NodeContent(3))
        assert atom.evaluate(binding, context)

    def test_isa_is_subtype_alias(self, context, binding):
        assert issubclass(Isa, SubtypeOf)
        atom = Isa(NodeContent(3), Constant("database conference"))
        assert atom.evaluate(binding, context)

    def test_instance_of_atom(self, context, binding):
        atom = InstanceOf(NodeContent(2), Constant("author"))
        assert atom.evaluate(binding, context)

    def test_part_of_atom(self, context):
        node = build("affiliation", "US Census Bureau")
        node.renumber()
        atom = PartOf(NodeContent(1), Constant("us government"))
        assert atom.evaluate({1: node}, context)

    def test_atoms_fail_on_plain_tax_context(self, binding):
        atom = SimilarTo(NodeContent(2), Constant("J. Smyth"))
        with pytest.raises(ConditionError):
            atom.evaluate(binding, ConditionContext())

    def test_labels(self):
        atom = SimilarTo(NodeContent(2), NodeContent(4))
        assert atom.labels() == {2, 4}


class TestTypedComparison:
    def test_year_compares_numerically(self, context, binding):
        # "1999" as year vs "02000" as year: numeric, not lexicographic.
        atom = TypedComparison("<=", NodeContent(4), Constant("02000", "year"))
        assert atom.evaluate(binding, context)

    def test_ontology_types_degrade_to_string(self, context, binding):
        atom = TypedComparison("=", NodeContent(2), Constant("J. Smith"))
        assert atom.evaluate(binding, context)

    def test_cross_unit_comparison(self, context):
        node = build("width", "25")
        node.renumber()

        def typing(n, attr):
            return "length_mm" if attr == "content" else default_typing(n, attr)

        ctx = SeoConditionContext(
            context.seo, type_system=default_type_system(), typing=typing
        )
        atom = TypedComparison("<=", NodeContent(1), Constant("3", "length_cm"))
        assert atom.evaluate({1: node}, ctx)
        atom = TypedComparison(">", NodeContent(1), Constant("2", "length_cm"))
        assert atom.evaluate({1: node}, ctx)

    def test_ill_typed_raises(self, context):
        node = build("width", "25")
        node.renumber()

        def typing(n, attr):
            return "length_mm" if attr == "content" else default_typing(n, attr)

        ctx = SeoConditionContext(
            context.seo, type_system=default_type_system(), typing=typing
        )
        # length vs currency meet at string, but "25" parses under both...
        # use an unparseable domain value instead:
        atom = TypedComparison("<=", NodeContent(1), Constant("not-number", "usd"))
        with pytest.raises((IllTypedConditionError, Exception)):
            atom.evaluate({1: node}, ctx)

    def test_plain_context_falls_back_to_syntactic(self, binding):
        atom = TypedComparison("=", NodeContent(4), Constant("1999"))
        assert atom.evaluate(binding, ConditionContext())

    def test_invalid_operator(self):
        with pytest.raises(ConditionError):
            TypedComparison("like", NodeTag(1), Constant("x"))


class TestRewrite:
    def test_similar_to_constant_expands(self, context):
        atom = SimilarTo(NodeContent(2), Constant("J. Smith"))
        rewritten = rewrite_condition(atom, context)
        assert isinstance(rewritten, Or)
        values = {op.right.value for op in rewritten.operands}
        assert values == {"J. Smith", "J. Smyth"}

    def test_below_expands_to_descendant_terms(self, context):
        atom = Below(NodeContent(3), Constant("database conference"))
        rewritten = rewrite_condition(atom, context)
        values = {op.right.value for op in rewritten.operands}
        assert {"SIGMOD Conference", "VLDB", "database conference"} <= values

    def test_instance_of_excludes_the_term_itself(self, context):
        atom = InstanceOf(NodeContent(3), Constant("database conference"))
        rewritten = rewrite_condition(atom, context)
        values = {op.right.value for op in rewritten.operands}
        assert "database conference" not in values

    def test_node_to_node_atom_left_alone(self, context):
        atom = SimilarTo(NodeContent(2), NodeContent(3))
        assert rewrite_condition(atom, context) is atom

    def test_rewrite_preserves_structure(self, context):
        condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Not(SimilarTo(NodeContent(2), Constant("J. Smith"))),
        )
        rewritten = rewrite_condition(condition, context)
        assert isinstance(rewritten, And)
        assert isinstance(rewritten.operands[1], Not)

    def test_rewritten_condition_equivalent_under_context(self, context, binding):
        original = SimilarTo(NodeContent(2), Constant("J. Smyth"))
        rewritten = rewrite_condition(original, context)
        assert original.evaluate(binding, context) == rewritten.evaluate(
            binding, ConditionContext()
        )

    def test_singleton_expansion_becomes_plain_comparison(self, context):
        atom = SimilarTo(NodeContent(2), Constant("VLDB"))
        rewritten = rewrite_condition(atom, context)
        assert isinstance(rewritten, Comparison)
