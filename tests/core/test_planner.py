"""Unit tests for the index-aware query planner and the plan cache."""

import pytest

from repro.core.conditions import (
    InstanceOf,
    SeoConditionContext,
    SimilarTo,
)
from repro.core.executor import (
    MAX_OR_ALTERNATIVES,
    QueryExecutor,
    compile_pattern_to_xpath,
)
from repro.core.planner import (
    ValuesProbe,
    build_plan_spec,
    find_cross_probe,
    has_semantic_atom,
    prune_candidates,
)
from repro.errors import ResourceExhaustedError
from repro.guard import ResourceGuard
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.conditions import (
    And,
    Comparison,
    Constant,
    NodeContent,
    NodeTag,
    Or,
)
from repro.tax.pattern import AD, PC, pattern_of
from repro.xmldb.database import Database

DOCS = {
    "a": """
    <dblp>
      <inproceedings key="p1">
        <author>J. Smith</author>
        <title>Paper One</title>
        <booktitle>SIGMOD Conference</booktitle>
      </inproceedings>
    </dblp>
    """,
    "b": """
    <dblp>
      <inproceedings key="p2">
        <author>J. Smythe</author>
        <title>Paper Two</title>
        <booktitle>VLDB</booktitle>
      </inproceedings>
    </dblp>
    """,
    "c": """
    <dblp>
      <inproceedings key="p3">
        <author>A. Different</author>
        <title>Paper Three</title>
        <booktitle>TCS</booktitle>
      </inproceedings>
    </dblp>
    """,
}


@pytest.fixture
def database():
    db = Database()
    col = db.create_collection("dblp")
    for key, text in DOCS.items():
        col.add_document(key, text)
    return db


@pytest.fixture
def context():
    hierarchy = Hierarchy(
        [
            ("J. Smith", "author"),
            ("SIGMOD Conference", "database conference"),
            ("VLDB", "database conference"),
        ]
    )
    seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 2.0)
    return SeoConditionContext(seo)


def _author_pattern(atom):
    pattern = pattern_of([(1, None, PC), (2, 1, PC)])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        atom,
    )
    return pattern


class TestPlanSpec:
    def test_equality_and_structure_probes(self, context):
        pattern = _author_pattern(
            Comparison("=", NodeContent(2), Constant("J. Smith"))
        )
        spec = build_plan_spec(pattern, pattern.condition, context, False)
        assert spec.prunable
        assert frozenset({"inproceedings"}) in spec.tag_probes
        assert frozenset({("inproceedings", "author")}) in spec.pc_probes
        [probe] = spec.value_probes
        assert probe == ValuesProbe(
            2, frozenset({"author"}), frozenset({"J. Smith"})
        )

    def test_ad_edge_produces_ad_probe(self, context):
        pattern = pattern_of([(1, None, PC), (2, 1, AD)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("dblp")),
            Comparison("=", NodeTag(2), Constant("title")),
        )
        spec = build_plan_spec(pattern, pattern.condition, context, False)
        assert frozenset({("dblp", "title")}) in spec.ad_probes
        assert not spec.pc_probes

    def test_or_of_equalities_becomes_union_probe(self, context):
        pattern = _author_pattern(
            Or(
                Comparison("=", NodeContent(2), Constant("J. Smith")),
                Comparison("=", NodeContent(2), Constant("J. Smythe")),
            )
        )
        spec = build_plan_spec(pattern, pattern.condition, context, False)
        [probe] = spec.value_probes
        assert probe.values == frozenset({"J. Smith", "J. Smythe"})

    def test_similar_to_expands_and_keeps_probe_constant(self, context):
        pattern = _author_pattern(
            SimilarTo(NodeContent(2), Constant("J. Smith"))
        )
        spec = build_plan_spec(pattern, pattern.condition, context, False)
        [probe] = spec.value_probes
        assert "J. Smith" in probe.values
        assert probe.similar_to == "J. Smith"

    def test_semantic_atom_without_context_refuses_to_prune(self):
        pattern = _author_pattern(
            SimilarTo(NodeContent(2), Constant("J. Smith"))
        )
        assert has_semantic_atom(pattern.condition)
        spec = build_plan_spec(pattern, pattern.condition, None, False)
        assert not spec.prunable
        assert "SEO context" in spec.reason

    def test_exact_fallback_instance_of_probes_nothing(self, database):
        # Under ExactFallbackContext, instance_of is always False: the
        # probe is the empty set, so the whole collection prunes away —
        # exactly matching the scan path's empty answer.
        pattern = _author_pattern(
            InstanceOf(NodeContent(2), Constant("author"))
        )
        spec = build_plan_spec(pattern, pattern.condition, None, True)
        [probe] = spec.value_probes
        assert probe.values == frozenset()
        index = database.get_collection("dblp").search_index()
        assert prune_candidates(spec, index) == set()


class TestPruneCandidates:
    def test_equality_prunes_to_matching_documents(self, database, context):
        pattern = _author_pattern(
            Comparison("=", NodeContent(2), Constant("J. Smith"))
        )
        spec = build_plan_spec(pattern, pattern.condition, context, False)
        index = database.get_collection("dblp").search_index()
        assert prune_candidates(
            spec, index, seo=context.seo
        ) == {"a"}

    def test_similarity_augments_with_off_ontology_terms(self, database, context):
        # "J. Smythe" is in no ontology but within edit distance 2 of the
        # constant: verification would accept it, so pruning must keep it.
        pattern = _author_pattern(
            SimilarTo(NodeContent(2), Constant("J. Smith"))
        )
        spec = build_plan_spec(pattern, pattern.condition, context, False)
        index = database.get_collection("dblp").search_index()
        kept = prune_candidates(spec, index, seo=context.seo)
        assert kept == {"a", "b"}

    def test_index_probes_tick_the_guard(self, database, context):
        pattern = _author_pattern(
            Comparison("=", NodeContent(2), Constant("J. Smith"))
        )
        spec = build_plan_spec(pattern, pattern.condition, context, False)
        index = database.get_collection("dblp").search_index()
        guard = ResourceGuard(max_steps=1000)
        prune_candidates(spec, index, guard=guard, seo=context.seo)
        assert guard.steps > 0
        with pytest.raises(ResourceExhaustedError):
            prune_candidates(
                spec, index, guard=ResourceGuard(max_steps=1), seo=context.seo
            )


class TestCrossProbe:
    def test_node_to_node_similarity_is_found(self, context):
        condition = And(
            Comparison("=", NodeTag(2), Constant("title")),
            Comparison("=", NodeTag(5), Constant("title")),
            SimilarTo(NodeContent(2), NodeContent(5)),
        )
        probe = find_cross_probe(condition, {1, 2}, {4, 5}, context, False)
        assert probe is not None
        assert probe.kind == "similar"
        assert (probe.left_label, probe.right_label) == (2, 5)

    def test_orientation_is_normalised(self, context):
        condition = SimilarTo(NodeContent(5), NodeContent(2))
        probe = find_cross_probe(condition, {1, 2}, {4, 5}, context, False)
        assert (probe.left_label, probe.right_label) == (2, 5)

    def test_no_context_no_fallback_gives_no_similarity_probe(self):
        condition = SimilarTo(NodeContent(2), NodeContent(5))
        assert find_cross_probe(condition, {1, 2}, {4, 5}, None, False) is None


class TestExecutorIntegration:
    def _results(self, executor, pattern):
        report = executor.selection("dblp", pattern, sl_labels=[1])
        return [tree.canonical_key() for tree in report.results]

    def test_indexed_equals_scan_and_reports_pruning(self, database, context):
        pattern = _author_pattern(
            SimilarTo(NodeContent(2), Constant("J. Smith"))
        )
        indexed = QueryExecutor(database, context, use_index=True)
        scan = QueryExecutor(database, context, use_index=False)
        assert self._results(indexed, pattern) == self._results(scan, pattern)

        report = indexed.selection("dblp", pattern, sl_labels=[1])
        assert report.index_used
        assert report.docs_total == 3
        assert report.docs_scanned == 2  # "c" pruned
        assert report.docs_pruned == 1

        report = scan.selection("dblp", pattern, sl_labels=[1])
        assert not report.index_used
        assert report.docs_scanned == report.docs_total

    def test_plan_cache_hits_on_repeat(self, database, context):
        pattern = _author_pattern(
            Comparison("=", NodeContent(2), Constant("J. Smith"))
        )
        executor = QueryExecutor(database, context)
        first = executor.selection("dblp", pattern, sl_labels=[1])
        second = executor.selection("dblp", pattern, sl_labels=[1])
        assert not first.plan_cache_hit
        assert second.plan_cache_hit
        assert executor.plan_cache_hits == 1

    def test_plan_cache_evicts_least_recently_used(self, database, context):
        p1 = _author_pattern(Comparison("=", NodeContent(2), Constant("x")))
        p2 = _author_pattern(Comparison("=", NodeContent(2), Constant("y")))
        executor = QueryExecutor(database, context, plan_cache_size=1)
        for _ in range(2):
            executor.selection("dblp", p1, sl_labels=[1])
            executor.selection("dblp", p2, sl_labels=[1])
        # Alternating two plans through a one-slot cache: every lookup
        # after the first pair misses because the other plan evicted it.
        assert executor.plan_cache_hits == 0
        assert executor.plan_cache_misses == 4

    def test_zero_cache_size_disables_caching(self, database, context):
        pattern = _author_pattern(Comparison("=", NodeContent(2), Constant("x")))
        executor = QueryExecutor(database, context, plan_cache_size=0)
        executor.selection("dblp", pattern, sl_labels=[1])
        report = executor.selection("dblp", pattern, sl_labels=[1])
        assert not report.plan_cache_hit

    def test_explain_shows_index_plan(self, database, context):
        pattern = _author_pattern(
            SimilarTo(NodeContent(2), Constant("J. Smith"))
        )
        plan = str(QueryExecutor(database, context).explain(pattern))
        assert "index    : tag in {inproceedings}" in plan
        assert "pc pair in {inproceedings/author}" in plan
        assert "terms within epsilon of 'J. Smith'" in plan

    def test_explain_reports_full_scan_when_disabled(self, database, context):
        pattern = _author_pattern(
            Comparison("=", NodeContent(2), Constant("J. Smith"))
        )
        executor = QueryExecutor(database, context, use_index=False)
        assert "full scan (use_index=False)" in str(executor.explain(pattern))


class TestOrAlternativeCap:
    def _wide_pattern(self, width):
        return _author_pattern(
            Or(
                *(
                    Comparison("=", NodeContent(2), Constant(f"value-{i}"))
                    for i in range(width)
                ),
                Comparison("=", NodeContent(2), Constant("J. Smith")),
            )
        )

    def test_narrow_or_compiles_value_predicates(self):
        pattern = self._wide_pattern(2)
        assert ". = 'J. Smith'" in compile_pattern_to_xpath(pattern)

    def test_wide_or_is_capped_out_of_the_xpath(self):
        pattern = self._wide_pattern(MAX_OR_ALTERNATIVES + 1)
        assert ". = " not in compile_pattern_to_xpath(pattern)

    def test_capped_or_still_answers_correctly(self, database, context):
        pattern = self._wide_pattern(MAX_OR_ALTERNATIVES + 1)
        executor = QueryExecutor(database, context)
        report = executor.selection("dblp", pattern, sl_labels=[1])
        keys = {tree.attributes.get("key") for tree in report.results}
        assert keys == {"p1"}
