"""Unit tests for incremental document addition."""

import pytest

from repro.errors import TossError
from repro.core.parser import parse_query
from repro.core.system import TossSystem

FIRST = """
<dblp>
  <inproceedings key="p1"><author>J. Smith</author><title>One</title></inproceedings>
</dblp>
"""

SECOND = """
<dblp>
  <inproceedings key="p2"><author>J. Smyth</author><title>Two</title></inproceedings>
</dblp>
"""


class TestAddDocuments:
    def test_appends_and_invalidates(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", FIRST)
        system.build()
        system.add_documents("dblp", SECOND)
        # The SEO is stale: querying before rebuild raises.
        parsed = parse_query('inproceedings(author ~ "J. Smith")')
        with pytest.raises(TossError):
            system.select("dblp", parsed.pattern, parsed.roots)

    def test_rebuild_sees_new_terms(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", FIRST)
        system.build()
        before = system.ontology_size()
        system.add_documents("dblp", SECOND)
        system.build()
        assert system.ontology_size() > before
        parsed = parse_query('inproceedings(author ~ "J. Smith")')
        report = system.select("dblp", parsed.pattern, parsed.roots)
        assert {t.attributes["key"] for t in report.results} == {"p1", "p2"}

    def test_unknown_instance_rejected(self):
        system = TossSystem()
        with pytest.raises(TossError):
            system.add_documents("nope", FIRST)

    def test_document_keys_do_not_collide(self):
        system = TossSystem(epsilon=0.0)
        system.add_instance("dblp", [FIRST])
        system.add_documents("dblp", [SECOND])
        system.add_documents("dblp", [FIRST.replace("p1", "p3")])
        assert len(system.database.get_collection("dblp")) == 3

    def test_instance_object_replaced_not_mutated(self):
        system = TossSystem(epsilon=0.0)
        original = system.add_instance("dblp", FIRST)
        system.add_documents("dblp", SECOND)
        assert len(original.trees) == 1  # caller's snapshot unchanged
        assert len(system.instances["dblp"].trees) == 2
