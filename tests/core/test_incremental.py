"""Unit tests for incremental document addition."""

import pytest

from repro.errors import TossError
from repro.core.parser import parse_query
from repro.core.system import TossSystem

FIRST = """
<dblp>
  <inproceedings key="p1"><author>J. Smith</author><title>One</title></inproceedings>
</dblp>
"""

SECOND = """
<dblp>
  <inproceedings key="p2"><author>J. Smyth</author><title>Two</title></inproceedings>
</dblp>
"""


class TestAddDocuments:
    def test_appends_and_invalidates(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", FIRST)
        system.build()
        system.add_documents("dblp", SECOND)
        # The SEO is stale: querying before rebuild raises.
        parsed = parse_query('inproceedings(author ~ "J. Smith")')
        with pytest.raises(TossError):
            system.select("dblp", parsed.pattern, parsed.roots)

    def test_rebuild_sees_new_terms(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", FIRST)
        system.build()
        before = system.ontology_size()
        system.add_documents("dblp", SECOND)
        system.build()
        assert system.ontology_size() > before
        parsed = parse_query('inproceedings(author ~ "J. Smith")')
        report = system.select("dblp", parsed.pattern, parsed.roots)
        assert {t.attributes["key"] for t in report.results} == {"p1", "p2"}

    def test_unknown_instance_rejected(self):
        system = TossSystem()
        with pytest.raises(TossError):
            system.add_documents("nope", FIRST)

    def test_document_keys_do_not_collide(self):
        system = TossSystem(epsilon=0.0)
        system.add_instance("dblp", [FIRST])
        system.add_documents("dblp", [SECOND])
        system.add_documents("dblp", [FIRST.replace("p1", "p3")])
        assert len(system.database.get_collection("dblp")) == 3

    def test_instance_object_replaced_not_mutated(self):
        system = TossSystem(epsilon=0.0)
        original = system.add_instance("dblp", FIRST).instance
        system.add_documents("dblp", SECOND)
        assert len(original.trees) == 1  # caller's snapshot unchanged
        assert len(system.instances["dblp"].trees) == 2


class TestMutationReceipts:
    def test_add_instance_receipt(self):
        system = TossSystem()
        receipt = system.add_instance("dblp", FIRST)
        assert receipt.source == "dblp"
        assert receipt.operation == "add_instance"
        assert receipt.generation_before == 0
        assert receipt.generations_advanced == 1
        assert len(receipt.documents_added) == 1
        assert "author" in receipt.terms_added

    def test_add_documents_receipt_is_incremental(self):
        system = TossSystem()
        system.add_instance("dblp", FIRST)
        receipt = system.add_documents("dblp", SECOND)
        assert receipt.operation == "add_documents"
        assert receipt.incremental
        assert receipt.generations_advanced == 1
        assert receipt.instance is system.instances["dblp"]

    def test_replace_receipt_reports_keys_and_forces_full(self):
        system = TossSystem()
        system.add_instance("dblp", FIRST)
        (key,) = system.database.get_collection("dblp").keys()
        receipt = system.replace_documents("dblp", {key: SECOND})
        assert receipt.operation == "replace_documents"
        assert receipt.documents_removed == (key,)
        assert not receipt.incremental

    def test_remove_receipt_retires_terms(self):
        system = TossSystem()
        system.add_instance("dblp", [FIRST, SECOND.replace("title", "journal")])
        keys = list(system.database.get_collection("dblp").keys())
        receipt = system.remove_documents("dblp", (keys[1],))
        assert receipt.operation == "remove_documents"
        assert receipt.documents_removed == (keys[1],)
        assert "journal" in receipt.terms_removed
        assert not receipt.incremental

    def test_mutation_emits_event_and_counter(self, tmp_path):
        from repro.obs import Observability
        from repro.obs.metrics import REGISTRY as METRICS

        system = TossSystem(observability=Observability(directory=tmp_path))
        system.add_instance("dblp", FIRST)
        before = METRICS.counter("system.mutations").value
        system.add_documents("dblp", SECOND)
        assert METRICS.counter("system.mutations").value == before + 1
        assert system.observability.event_log is not None
        mutation = [
            entry
            for entry in system.observability.event_log.read()
            if entry["event"] == "system.mutation"
        ]
        assert mutation, "no system.mutation event logged"
        assert mutation[-1]["operation"] == "add_documents"
        assert mutation[-1]["source"] == "dblp"
        assert mutation[-1]["incremental"] is True
