"""Unit tests for ranked similarity queries."""

import pytest

from repro.core.conditions import SeoConditionContext, SimilarTo
from repro.core.scoring import ScoredResult, ranked_selection, similarity_atoms
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag, Not
from repro.tax.pattern import pattern_of
from repro.xmldb import parse_document

DOC = """
<dblp>
  <inproceedings key="exact"><author>J. Smith</author></inproceedings>
  <inproceedings key="near"><author>J. Smyth</author></inproceedings>
  <inproceedings key="far"><author>J. Smythe</author></inproceedings>
  <inproceedings key="other"><author>P. Chen</author></inproceedings>
</dblp>
"""


@pytest.fixture
def context():
    hierarchy = Hierarchy(
        [
            ("J. Smith", "author"),
            ("J. Smyth", "author"),
            ("J. Smythe", "author"),
            ("P. Chen", "author"),
        ]
    )
    seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 2.0)
    return SeoConditionContext(seo)


@pytest.fixture
def doc():
    return parse_document(DOC)


def author_pattern(surface):
    pattern = pattern_of([(1, None, "pc"), (2, 1, "pc")])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        SimilarTo(NodeContent(2), Constant(surface)),
    )
    return pattern


class TestSimilarityAtoms:
    def test_collects_conjunctive_atoms(self):
        condition = And(
            SimilarTo(NodeContent(1), Constant("x")),
            Comparison("=", NodeTag(1), Constant("a")),
            SimilarTo(NodeContent(2), Constant("y")),
        )
        assert len(similarity_atoms(condition)) == 2

    def test_ignores_negated_atoms(self):
        condition = Not(SimilarTo(NodeContent(1), Constant("x")))
        assert similarity_atoms(condition) == []


class TestRankedSelection:
    def test_results_ordered_by_distance(self, doc, context):
        ranked = ranked_selection(
            [doc], author_pattern("J. Smith"), context, sl_labels=[1]
        )
        keys = [result.tree.attributes["key"] for result in ranked]
        assert keys == ["exact", "near", "far"]
        scores = [result.score for result in ranked]
        assert scores == sorted(scores)
        assert scores[0] == 0.0

    def test_ranking_refines_boolean_answer(self, doc, context):
        """Ranked results = boolean TOSS results, just ordered."""
        from repro.tax.algebra import selection

        boolean = selection([doc], author_pattern("J. Smith"), [1], context)
        ranked = ranked_selection(
            [doc], author_pattern("J. Smith"), context, sl_labels=[1]
        )
        assert {r.tree.canonical_key() for r in ranked} == {
            t.canonical_key() for t in boolean
        }

    def test_top_k(self, doc, context):
        ranked = ranked_selection(
            [doc], author_pattern("J. Smith"), context, sl_labels=[1], top_k=2
        )
        assert len(ranked) == 2
        assert ranked[0].score <= ranked[1].score

    def test_duplicate_witnesses_keep_best_score(self, context):
        doc = parse_document(
            "<dblp><inproceedings key='two'>"
            "<author>J. Smith</author><author>J. Smyth</author>"
            "</inproceedings></dblp>"
        )
        ranked = ranked_selection(
            [doc], author_pattern("J. Smith"), context, sl_labels=[1]
        )
        assert len(ranked) == 1
        assert ranked[0].score == 0.0  # the exact-match embedding wins

    def test_no_similarity_atoms_gives_zero_scores(self, doc, context):
        pattern = pattern_of([(1, None, "pc")])
        pattern.condition = Comparison("=", NodeTag(1), Constant("author"))
        ranked = ranked_selection([doc], pattern, context)
        assert all(result.score == 0.0 for result in ranked)
        assert len(ranked) == 4


class TestScoredPattern:
    def test_atom_weights_scale_scores(self, doc, context):
        from repro.core.scoring import ScoredPattern

        pattern = author_pattern("J. Smith")
        plain = ranked_selection([doc], pattern, context, sl_labels=[1])
        weighted = ranked_selection(
            [doc],
            ScoredPattern(pattern, atom_weights=[2.0]),
            context,
            sl_labels=[1],
        )
        assert [r.score for r in weighted] == [r.score * 2 for r in plain]

    def test_weight_arity_checked(self, doc, context):
        from repro.errors import TossError
        from repro.core.scoring import ScoredPattern

        pattern = author_pattern("J. Smith")
        with pytest.raises(TossError):
            ranked_selection(
                [doc],
                ScoredPattern(pattern, atom_weights=[1.0, 2.0]),
                context,
            )

    def test_node_scorers_add_penalties(self, doc, context):
        from repro.core.scoring import ScoredPattern

        pattern = author_pattern("J. Smith")
        # Penalise the record whose key is "exact" so it ranks last.
        scored = ScoredPattern(
            pattern,
            node_scorers={
                1: lambda node: 10.0 if node.attributes.get("key") == "exact" else 0.0
            },
        )
        ranked = ranked_selection([doc], scored, context, sl_labels=[1])
        keys = [r.tree.attributes["key"] for r in ranked]
        assert keys[-1] == "exact"
        assert ranked[-1].score == pytest.approx(10.0)
