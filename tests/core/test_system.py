"""Unit tests for the TossSystem facade (Figure 8 wiring)."""

import pytest

from repro.errors import SimilarityInconsistencyError, TossError
from repro.core.conditions import SimilarTo
from repro.core.system import TossSystem
from repro.ontology.constraints import parse_constraint
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.pattern import pattern_of

DBLP = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <booktitle>VLDB</booktitle>
  </inproceedings>
</dblp>
"""

SIGMOD = """
<ProceedingsPage>
  <conference>ACM SIGMOD International Conference on Management of Data</conference>
  <articles>
    <article key="p1"><author>J. Smith</author></article>
  </articles>
</ProceedingsPage>
"""


def author_pattern(surface):
    pattern = pattern_of([(1, None, "pc"), (2, 1, "pc")])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        SimilarTo(NodeContent(2), Constant(surface)),
    )
    return pattern


class TestAdministration:
    def test_add_instance_builds_ontology(self):
        system = TossSystem()
        instance = system.add_instance("dblp", DBLP).instance
        assert instance.isa.leq("author", "person")
        assert "dblp" in system.database

    def test_duplicate_instance_rejected(self):
        system = TossSystem()
        system.add_instance("dblp", DBLP)
        with pytest.raises(TossError):
            system.add_instance("dblp", DBLP)

    def test_multiple_documents_per_instance(self):
        system = TossSystem()
        system.add_instance("x", [DBLP, DBLP.replace("p1", "p9")])
        assert len(system.database.get_collection("x")) == 2

    def test_measure_by_name_or_object(self):
        from repro.similarity.rules import NameRuleMeasure

        assert TossSystem(measure="jaro").measure.name == "jaro"
        assert isinstance(TossSystem(measure=NameRuleMeasure()).measure, NameRuleMeasure)

    def test_query_before_build_raises(self):
        system = TossSystem()
        system.add_instance("dblp", DBLP)
        with pytest.raises(TossError):
            system.select("dblp", author_pattern("J. Smith"))

    def test_build_without_instances_raises(self):
        with pytest.raises(TossError):
            TossSystem().build()

    def test_adding_instance_invalidates_context(self):
        system = TossSystem()
        system.add_instance("dblp", DBLP)
        system.build()
        system.add_instance("other", SIGMOD)
        with pytest.raises(TossError):
            system.select("dblp", author_pattern("J. Smith"))


class TestBuild:
    def test_build_records_time_and_size(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", DBLP)
        system.build()
        assert system.build_seconds > 0
        assert system.ontology_size() > 0

    def test_epsilon_override_at_build(self):
        system = TossSystem(epsilon=0.0)
        system.add_instance("dblp", DBLP)
        system.build(epsilon=1.0)
        assert system.epsilon == 1.0
        assert system.seo.similar("J. Smith", "J. Smyth")

    def test_auto_constraints_fuse_shared_terms(self):
        system = TossSystem(epsilon=0.0)
        system.add_instance("dblp", DBLP)
        system.add_instance("sigmod", SIGMOD)
        system.build()
        # author appears in both schemas; shared-term constraints fuse it,
        # so the fused node carries one "author" string reachable once.
        assert "author" in system.seo

    def test_dba_constraints_applied(self):
        system = TossSystem(epsilon=0.0)
        system.add_instance("dblp", DBLP)
        system.add_instance("sigmod", SIGMOD)
        system.add_constraint("booktitle:dblp = conference:sigmod")
        system.build()
        assert system.seo.leq(
            "SIGMOD Conference", "conference"
        ) or system.seo.leq("SIGMOD Conference", "booktitle")

    def test_constraint_parsing_inline(self):
        system = TossSystem()
        constraint = system.add_constraint("a:dblp != b:sigmod")
        assert str(constraint.left) == "a:dblp"

    def test_strict_mode_can_raise(self):
        system = TossSystem(epsilon=3.0)
        # "article" and "articles" play different structural roles.
        system.add_instance(
            "x", "<articles><article><author>A</author></article></articles>"
        )
        with pytest.raises(SimilarityInconsistencyError):
            system.build(mode="strict")
        system.build(mode="order-safe")  # succeeds


class TestQuerying:
    def test_select_and_report(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", DBLP)
        system.build()
        report = system.select("dblp", author_pattern("J. Smith"), sl_labels=[1])
        assert {t.attributes["key"] for t in report.results} == {"p1", "p2"}

    def test_project(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", DBLP)
        system.build()
        report = system.project("dblp", author_pattern("J. Smith"), [2])
        assert sorted(t.text for t in report.results) == ["J. Smith", "J. Smyth"]

    def test_tax_executor_is_contextless(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", DBLP)
        system.build()
        tax = system.tax_executor()
        assert tax.context is None

    def test_algebra_bound_to_context(self):
        system = TossSystem(epsilon=1.0)
        system.add_instance("dblp", DBLP)
        system.build()
        algebra = system.algebra()
        results = algebra.selection(
            system.instances["dblp"], author_pattern("J. Smith"), [1]
        )
        assert len(results) == 2

    def test_repr(self):
        system = TossSystem()
        assert "not built" in repr(system)
