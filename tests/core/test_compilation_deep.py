"""Deeper XPath-compilation cases: nested patterns, mixed edges, soundness."""

import pytest

from repro.core.executor import QueryExecutor, compile_pattern_to_xpath
from repro.core.parser import parse_query
from repro.tax.algebra import selection
from repro.xmldb.database import Database
from repro.xmldb.parser import parse_document

DOC = """
<library>
  <shelf>
    <section name="db">
      <book key="b1"><title>Data Systems</title><year>1999</year></book>
      <book key="b2"><title>Other Topic</title><year>2001</year></book>
    </section>
  </shelf>
  <book key="b3"><title>Data Systems</title><year>1999</year></book>
</library>
"""


@pytest.fixture
def database():
    db = Database()
    db.create_collection("lib").add_document("d", DOC)
    return db


class TestDeepCompilation:
    def test_three_level_pattern(self):
        parsed = parse_query('shelf(section(book(title = "Data Systems")))')
        xpath = compile_pattern_to_xpath(parsed.pattern)
        assert xpath == "//shelf[section[book[title[. = 'Data Systems']]]]"

    def test_mixed_pc_ad_edges(self):
        parsed = parse_query('library(//book(year = "1999"))')
        xpath = compile_pattern_to_xpath(parsed.pattern)
        assert xpath == "//library[.//book[year[. = '1999']]]"

    def test_executor_agrees_with_algebra_on_nested(self, database):
        parsed = parse_query('shelf(section(book(title = "Data Systems")))')
        executor = QueryExecutor(database, context=None)
        via_executor = executor.selection("lib", parsed.pattern, parsed.roots)
        doc = database.get_collection("lib").get_document("d")
        via_algebra = selection([doc], parsed.pattern, parsed.roots)
        assert {t.canonical_key() for t in via_executor.results} == {
            t.canonical_key() for t in via_algebra
        }
        assert len(via_executor.results) == 1

    def test_ad_pattern_finds_both_depths(self, database):
        parsed = parse_query('library(//book(title = "Data Systems"))')
        executor = QueryExecutor(database, context=None)
        report = executor.selection("lib", parsed.pattern, [parsed.roots[0]])
        assert len(report.results) == 1  # one library witness
        # Verify by projecting the books instead.
        parsed2 = parse_query('book(title = "Data Systems")')
        report2 = executor.selection("lib", parsed2.pattern, parsed2.roots)
        keys = {t.attributes.get("key") for t in report2.results}
        assert keys == {"b1", "b3"}

    def test_wildcard_intermediate(self, database):
        parsed = parse_query('*(book(year = "2001"))')
        executor = QueryExecutor(database, context=None)
        report = executor.selection("lib", parsed.pattern, parsed.roots)
        tags = {t.tag for t in report.results}
        assert tags == {"section"}

    def test_candidate_count_reported(self, database):
        parsed = parse_query("book(title)")
        executor = QueryExecutor(database, context=None)
        report = executor.selection("lib", parsed.pattern, parsed.roots)
        assert report.candidates == 3


class TestNegatedSemanticAtoms:
    """The XPath prefilter must stay sound under negation."""

    def test_not_similar_query(self, database):
        from repro.core.conditions import SeoConditionContext, SimilarTo
        from repro.ontology import Hierarchy
        from repro.similarity.measures import Levenshtein
        from repro.similarity.seo import SimilarityEnhancedOntology
        from repro.tax.conditions import (
            And, Comparison, Constant, NodeContent, NodeTag, Not,
        )
        from repro.tax.pattern import pattern_of

        hierarchy = Hierarchy(
            [("Data Systems", "title"), ("Other Topic", "title")]
        )
        seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 1.0)
        context = SeoConditionContext(seo)

        pattern = pattern_of([(1, None, "pc"), (2, 1, "pc")])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("book")),
            Comparison("=", NodeTag(2), Constant("title")),
            Not(SimilarTo(NodeContent(2), Constant("Data Systems"))),
        )
        executor = QueryExecutor(database, context)
        report = executor.selection("lib", pattern, [1])
        keys = {t.attributes.get("key") for t in report.results}
        assert keys == {"b2"}  # only the non-similar title survives

        # Agreement with direct algebra evaluation.
        from repro.tax.algebra import selection

        doc = database.get_collection("lib").get_document("d")
        direct = selection([doc], pattern, [1], context)
        assert {t.canonical_key() for t in report.results} == {
            t.canonical_key() for t in direct
        }
