"""Unit tests for the embedded lexical knowledge base."""

import pytest

from repro.ontology.lexicon import Lexicon, bibliography_lexicon


class TestLexicon:
    def test_hypernyms_case_insensitive(self):
        lexicon = Lexicon()
        lexicon.add_hypernym("Google", "Web Search Company")
        assert lexicon.hypernyms("google") == frozenset({"web search company"})
        assert lexicon.hypernyms("GOOGLE") == frozenset({"web search company"})

    def test_hypernym_closure(self):
        lexicon = Lexicon()
        lexicon.add_isa_chain("google", "web search company", "company")
        assert lexicon.hypernym_closure("google") == frozenset(
            {"web search company", "company"}
        )

    def test_closure_handles_diamonds(self):
        lexicon = Lexicon()
        lexicon.add_hypernym("x", "a")
        lexicon.add_hypernym("x", "b")
        lexicon.add_hypernym("a", "top")
        lexicon.add_hypernym("b", "top")
        assert lexicon.hypernym_closure("x") == frozenset({"a", "b", "top"})

    def test_holonyms(self):
        lexicon = Lexicon()
        lexicon.add_holonym("wheel", "car")
        assert lexicon.holonyms("wheel") == frozenset({"car"})

    def test_synonyms_symmetric_without_self(self):
        lexicon = Lexicon()
        lexicon.add_synonyms("paper", "article")
        assert lexicon.synonyms("paper") == frozenset({"article"})
        assert lexicon.synonyms("article") == frozenset({"paper"})

    def test_synonym_groups(self):
        lexicon = Lexicon()
        lexicon.add_synonyms("a", "b", "c")
        assert lexicon.synonyms("a") == frozenset({"b", "c"})

    def test_knows(self):
        lexicon = Lexicon()
        lexicon.add_hypernym("a", "b")
        assert lexicon.knows("a")
        assert not lexicon.knows("zzz")

    def test_terms_include_targets(self):
        lexicon = Lexicon()
        lexicon.add_hypernym("a", "b")
        lexicon.add_holonym("c", "d")
        assert lexicon.terms() >= {"a", "b", "c", "d"}
        assert len(lexicon) == 4

    def test_unknown_lookups_empty(self):
        lexicon = Lexicon()
        assert lexicon.hypernyms("x") == frozenset()
        assert lexicon.holonyms("x") == frozenset()
        assert lexicon.synonyms("x") == frozenset()


class TestBibliographyLexicon:
    def setup_method(self):
        self.lexicon = bibliography_lexicon()

    def test_paper_intro_chain(self):
        """Google isa web search company isa computer company isa company."""
        closure = self.lexicon.hypernym_closure("google")
        assert {"web search company", "computer company", "company"} <= closure

    def test_us_government_parts(self):
        assert "us government" in self.lexicon.holonyms("US Census Bureau")
        assert "us government" in self.lexicon.holonyms("us army")

    def test_booktitle_conference_synonyms(self):
        assert "conference" in self.lexicon.synonyms("booktitle")

    def test_publication_kinds(self):
        for kind in ("article", "inproceedings", "book"):
            assert "publication" in self.lexicon.hypernyms(kind)

    def test_author_is_person(self):
        assert "person" in self.lexicon.hypernyms("author")

    def test_record_parts(self):
        assert "publication" in self.lexicon.holonyms("title")
