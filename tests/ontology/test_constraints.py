"""Unit tests for interoperation constraints (Definition 4)."""

import pytest

from repro.errors import ConstraintError
from repro.ontology.constraints import (
    EqualityConstraint,
    InequalityConstraint,
    ScopedTerm,
    SubsumptionConstraint,
    parse_constraint,
    parse_constraints,
)
from repro.ontology.hierarchy import Hierarchy


class TestScopedTerm:
    def test_str_uses_paper_notation(self):
        assert str(ScopedTerm("booktitle", 1)) == "booktitle:1"

    def test_ordering_and_hash(self):
        a = ScopedTerm("a", 1)
        also_a = ScopedTerm("a", 1)
        assert a == also_a
        assert hash(a) == hash(also_a)
        assert ScopedTerm("a", 1) < ScopedTerm("b", 1)


class TestConstruction:
    def test_same_source_rejected(self):
        with pytest.raises(ConstraintError):
            SubsumptionConstraint(ScopedTerm("a", 1), ScopedTerm("b", 1))

    def test_equality_decomposes(self):
        eq = EqualityConstraint(ScopedTerm("a", 1), ScopedTerm("b", 2))
        first, second = eq.decompose()
        assert isinstance(first, SubsumptionConstraint)
        assert first.left == ScopedTerm("a", 1)
        assert second.left == ScopedTerm("b", 2)

    def test_constraint_equality_is_type_sensitive(self):
        left, right = ScopedTerm("a", 1), ScopedTerm("b", 2)
        assert SubsumptionConstraint(left, right) != InequalityConstraint(left, right)
        assert SubsumptionConstraint(left, right) == SubsumptionConstraint(left, right)


class TestValidation:
    def test_validate_ok(self):
        hierarchies = {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])}
        constraint = SubsumptionConstraint(ScopedTerm("a", 1), ScopedTerm("b", 2))
        constraint.validate(hierarchies)  # no raise

    def test_validate_unknown_source(self):
        constraint = SubsumptionConstraint(ScopedTerm("a", 1), ScopedTerm("b", 9))
        with pytest.raises(ConstraintError):
            constraint.validate({1: Hierarchy(nodes=["a"])})

    def test_validate_unknown_term(self):
        hierarchies = {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["x"])}
        constraint = SubsumptionConstraint(ScopedTerm("a", 1), ScopedTerm("b", 2))
        with pytest.raises(ConstraintError):
            constraint.validate(hierarchies)


class TestParsing:
    def test_parse_equality_example_9(self):
        constraint = parse_constraint("booktitle:1 = conference:2")
        assert isinstance(constraint, EqualityConstraint)
        assert constraint.left == ScopedTerm("booktitle", 1)
        assert constraint.right == ScopedTerm("conference", 2)

    def test_parse_subsumption(self):
        constraint = parse_constraint("kdd:dblp <= conference:sigmod")
        assert isinstance(constraint, SubsumptionConstraint)
        assert constraint.left.source == "dblp"

    def test_parse_inequality(self):
        constraint = parse_constraint("a:1 != b:2")
        assert isinstance(constraint, InequalityConstraint)

    def test_parse_terms_with_spaces(self):
        constraint = parse_constraint("SIGMOD Conference:1 = conference:2")
        assert constraint.left.term == "SIGMOD Conference"

    def test_numeric_sources_become_ints(self):
        constraint = parse_constraint("a:1 = b:2")
        assert constraint.left.source == 1

    def test_parse_garbage_raises(self):
        with pytest.raises(ConstraintError):
            parse_constraint("this is not a constraint")

    def test_parse_many(self):
        constraints = parse_constraints(["a:1 = b:2", "c:1 <= d:2"])
        assert len(constraints) == 2
