"""Unit tests for Hierarchy (Hasse diagrams) and Ontology."""

import pytest

from repro.errors import HierarchyCycleError, OntologyError, UnknownTermError
from repro.ontology.hierarchy import Hierarchy, Ontology


@pytest.fixture
def diamond():
    return Hierarchy(
        [("bottom", "left"), ("bottom", "right"), ("left", "top"), ("right", "top")]
    )


class TestConstruction:
    def test_empty(self):
        hierarchy = Hierarchy()
        assert len(hierarchy) == 0
        assert list(hierarchy) == []

    def test_from_mapping(self):
        hierarchy = Hierarchy({"a": ["b"], "b": ["c"]})
        assert hierarchy.leq("a", "c")

    def test_isolated_nodes(self):
        hierarchy = Hierarchy(nodes=["x", "y"])
        assert "x" in hierarchy and "y" in hierarchy
        assert not hierarchy.comparable("x", "y")

    def test_reflexive_pairs_dropped(self):
        hierarchy = Hierarchy([("a", "a"), ("a", "b")])
        assert hierarchy.edge_count() == 1

    def test_normalises_to_hasse_form(self):
        # The transitive edge a->c must be removed (minimal edge set).
        hierarchy = Hierarchy([("a", "b"), ("b", "c"), ("a", "c")])
        assert hierarchy.edge_count() == 2
        assert hierarchy.leq("a", "c")

    def test_cycle_rejected(self):
        with pytest.raises(HierarchyCycleError):
            Hierarchy([("a", "b"), ("b", "a")])

    def test_example_7(self):
        """The paper's Example 7: the part-of hierarchy of an article."""
        hierarchy = Hierarchy(
            [("author", "article"), ("title", "article"),
             ("article", "article"), ("author", "author"), ("title", "title")]
        )
        assert set(hierarchy.edges()) == {
            ("author", "article"), ("title", "article")
        }


class TestOrderQueries:
    def test_leq_reflexive(self, diamond):
        assert diamond.leq("left", "left")

    def test_leq_transitive(self, diamond):
        assert diamond.leq("bottom", "top")

    def test_leq_not_symmetric(self, diamond):
        assert not diamond.leq("top", "bottom")

    def test_lt_strict(self, diamond):
        assert diamond.lt("bottom", "top")
        assert not diamond.lt("left", "left")

    def test_unknown_term_raises(self, diamond):
        with pytest.raises(UnknownTermError):
            diamond.leq("bottom", "martian")

    def test_ancestors_descendants(self, diamond):
        assert diamond.ancestors("bottom") == {"left", "right", "top"}
        assert diamond.descendants("top") == {"left", "right", "bottom"}
        assert diamond.ancestors("top") == frozenset()

    def test_below_above_include_self(self, diamond):
        assert "left" in diamond.below("left")
        assert "left" in diamond.above("left")

    def test_parents_children(self, diamond):
        assert diamond.parents("bottom") == {"left", "right"}
        assert diamond.children("top") == {"left", "right"}

    def test_roots_and_leaves(self, diamond):
        assert diamond.roots() == {"top"}
        assert diamond.leaves() == {"bottom"}

    def test_comparable(self, diamond):
        assert diamond.comparable("bottom", "top")
        assert not diamond.comparable("left", "right")


class TestLeastUpperBound:
    def test_diamond_has_lub(self, diamond):
        assert diamond.least_upper_bound("left", "right") == "top"

    def test_lub_of_comparable_pair(self, diamond):
        assert diamond.least_upper_bound("bottom", "left") == "left"

    def test_no_upper_bound(self):
        hierarchy = Hierarchy(nodes=["x", "y"])
        assert hierarchy.least_upper_bound("x", "y") is None

    def test_ambiguous_lub(self):
        # x and y are both below two incomparable uppers: no least one.
        hierarchy = Hierarchy(
            [("x", "u1"), ("x", "u2"), ("y", "u1"), ("y", "u2")]
        )
        assert hierarchy.least_upper_bound("x", "y") is None


class TestDerivation:
    def test_restrict_preserves_reachability(self):
        hierarchy = Hierarchy([("a", "b"), ("b", "c")])
        restricted = hierarchy.restrict(["a", "c"])
        assert restricted.leq("a", "c")
        assert "b" not in restricted

    def test_restrict_unknown_raises(self, diamond):
        with pytest.raises(UnknownTermError):
            diamond.restrict(["bottom", "nope"])

    def test_with_edges(self, diamond):
        extended = diamond.with_edges([("left", "right")])
        assert extended.leq("left", "right")
        assert not diamond.leq("left", "right")  # original untouched

    def test_with_terms(self, diamond):
        extended = diamond.with_terms(["extra"])
        assert "extra" in extended

    def test_relabel(self):
        hierarchy = Hierarchy([("a", "b")])
        renamed = hierarchy.relabel({"a": "x"})
        assert renamed.leq("x", "b")

    def test_relabel_must_be_injective(self):
        hierarchy = Hierarchy([("a", "b")])
        with pytest.raises(OntologyError):
            hierarchy.relabel({"a": "b"})


class TestValueSemantics:
    def test_equality_ignores_edge_order(self):
        first = Hierarchy([("a", "b"), ("c", "b")])
        second = Hierarchy([("c", "b"), ("a", "b")])
        assert first == second
        assert hash(first) == hash(second)

    def test_equality_includes_redundant_edge_normalisation(self):
        first = Hierarchy([("a", "b"), ("b", "c")])
        second = Hierarchy([("a", "b"), ("b", "c"), ("a", "c")])
        assert first == second

    def test_pretty_renders_roots_first(self, diamond):
        text = diamond.pretty()
        assert text.splitlines()[0] == "top"
        assert "  left" in text

    def test_to_dot(self, diamond):
        dot = diamond.to_dot(name="g")
        assert dot.startswith("digraph g {")
        assert '"bottom" -> "left";' in dot
        assert dot.rstrip().endswith("}")

    def test_to_dot_escapes_quotes(self):
        hierarchy = Hierarchy([('say "hi"', "top")])
        dot = hierarchy.to_dot()
        assert '\\"hi\\"' in dot


class TestOntology:
    def test_distinguished_hierarchies_always_defined(self):
        ontology = Ontology()
        assert len(ontology.isa) == 0
        assert len(ontology.part_of) == 0

    def test_getitem_unknown(self):
        with pytest.raises(KeyError):
            Ontology()["color-of"]

    def test_with_hierarchy_is_persistent(self):
        base = Ontology()
        extended = base.with_hierarchy("isa", Hierarchy([("a", "b")]))
        assert len(base.isa) == 0
        assert extended.isa.leq("a", "b")

    def test_term_count_sums_hierarchies(self):
        ontology = Ontology(
            {
                Ontology.ISA: Hierarchy([("a", "b")]),
                Ontology.PART_OF: Hierarchy([("c", "d"), ("e", "d")]),
            }
        )
        assert ontology.term_count() == 5

    def test_relations(self):
        assert Ontology().relations() == {"isa", "part-of"}

    def test_equality(self):
        assert Ontology() == Ontology()
