"""Unit tests for the Ontology Maker."""

import pytest

from repro.ontology.hierarchy import Ontology
from repro.ontology.lexicon import Lexicon
from repro.ontology.maker import OntologyMaker
from repro.xmldb import parse_document

DBLP_DOC = """
<dblp>
  <inproceedings>
    <author>Jeffrey D. Ullman</author>
    <title>A Survey</title>
    <year>1999</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
</dblp>
"""


class TestPartOfExtraction:
    def test_nesting_becomes_part_of(self):
        ontology = OntologyMaker().make(parse_document(DBLP_DOC))
        part_of = ontology.part_of
        assert part_of.leq("author", "inproceedings")
        assert part_of.leq("inproceedings", "dblp")
        assert part_of.leq("author", "dblp")

    def test_self_nesting_does_not_cycle(self):
        doc = parse_document("<cite><cite><ref>x</ref></cite></cite>")
        ontology = OntologyMaker().make(doc)
        assert "cite" in ontology.part_of  # present, no crash

    def test_mutual_nesting_keeps_first_direction(self):
        doc = parse_document("<a><b><a><c/></a></b></a>")
        ontology = OntologyMaker().make(doc)
        part_of = ontology.part_of
        # one of the two directions survives, never both
        assert part_of.comparable("a", "b")

    def test_lexicon_holonyms_added_for_tags(self):
        ontology = OntologyMaker().make(parse_document(DBLP_DOC))
        # title part-of publication comes from the lexicon.
        assert ontology.part_of.leq("title", "publication")


class TestIsaExtraction:
    def test_tags_get_lexicon_hypernyms(self):
        ontology = OntologyMaker().make(parse_document(DBLP_DOC))
        isa = ontology.isa
        assert isa.leq("author", "person")
        assert isa.leq("inproceedings", "publication")

    def test_chains_are_transitive(self):
        ontology = OntologyMaker().make(parse_document(DBLP_DOC))
        assert ontology.isa.leq("author", "entity")

    def test_content_values_below_their_tag(self):
        ontology = OntologyMaker().make(parse_document(DBLP_DOC))
        assert ontology.isa.leq("Jeffrey D. Ullman", "author")
        assert ontology.isa.leq("SIGMOD Conference", "booktitle")

    def test_titles_not_lifted_by_default(self):
        ontology = OntologyMaker().make(parse_document(DBLP_DOC))
        assert "A Survey" not in ontology.isa

    def test_content_tags_configurable(self):
        maker = OntologyMaker(content_tags={"title"})
        ontology = maker.make(parse_document(DBLP_DOC))
        assert "A Survey" in ontology.isa
        assert "Jeffrey D. Ullman" not in ontology.isa

    def test_max_content_terms_caps_lifting(self):
        doc = parse_document(
            "<db>" + "".join(
                f"<r><author>Person {i}</author></r>" for i in range(10)
            ) + "</db>"
        )
        maker = OntologyMaker(max_content_terms=3)
        ontology = maker.make(doc)
        lifted = [t for t in ontology.isa.terms if str(t).startswith("Person")]
        assert len(lifted) == 3

    def test_all_tags_present_even_isolated(self):
        ontology = OntologyMaker().make(parse_document("<weird><thing/></weird>"))
        assert "weird" in ontology.isa
        assert "thing" in ontology.isa


class TestRules:
    def test_dba_rules_layered(self):
        maker = OntologyMaker(
            rules=[("isa", "SIGMOD Conference", "database conference")]
        )
        ontology = maker.make(parse_document(DBLP_DOC))
        assert ontology.isa.leq("SIGMOD Conference", "database conference")

    def test_part_of_rules(self):
        maker = OntologyMaker(rules=[("part-of", "year", "calendar")])
        ontology = maker.make(parse_document(DBLP_DOC))
        assert ontology.part_of.leq("year", "calendar")

    def test_unknown_relation_rejected(self):
        maker = OntologyMaker(rules=[("color-of", "a", "b")])
        with pytest.raises(ValueError):
            maker.make(parse_document(DBLP_DOC))


class TestCombined:
    def test_make_combined_unions_documents(self):
        docs = [
            parse_document("<db><r><author>A One</author></r></db>"),
            parse_document("<db><r><author>B Two</author></r></db>"),
        ]
        ontology = OntologyMaker().make_combined(docs)
        assert ontology.isa.leq("A One", "author")
        assert ontology.isa.leq("B Two", "author")

    def test_make_many_returns_one_per_document(self):
        docs = [parse_document("<a/>"), parse_document("<b/>")]
        ontologies = OntologyMaker().make_many(docs)
        assert len(ontologies) == 2
        assert all(isinstance(o, Ontology) for o in ontologies)
