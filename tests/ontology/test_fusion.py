"""Unit tests for canonical fusion (Definitions 5-6, Figures 9-11)."""

import pytest

from repro.errors import ConstraintError, FusionInconsistencyError
from repro.ontology.constraints import ScopedTerm, parse_constraint
from repro.ontology.fusion import (
    FusedNode,
    canonical_fusion,
    fuse_single,
    hierarchy_graph,
)
from repro.ontology.hierarchy import Hierarchy


def sigmod_hierarchy():
    """Figure 9(a): the SIGMOD proceedings part-of hierarchy (simplified)."""
    return Hierarchy(
        [
            ("article", "articles"),
            ("articles", "ProceedingsPage"),
            ("author", "article"),
            ("title", "article"),
            ("conference", "ProceedingsPage"),
            ("confYear", "ProceedingsPage"),
        ]
    )


def dblp_hierarchy():
    """Figure 9(b): the DBLP part-of hierarchy (simplified)."""
    return Hierarchy(
        [
            ("author", "inproceedings"),
            ("title", "inproceedings"),
            ("booktitle", "inproceedings"),
            ("year", "inproceedings"),
        ]
    )


FIGURE_10_CONSTRAINTS = [
    "conference:1 = booktitle:2",
    "title:1 = title:2",
    "author:1 = author:2",
    "confYear:1 = year:2",
]


class TestFusedNode:
    def test_strings_and_label(self):
        node = FusedNode(frozenset({ScopedTerm("b", 1), ScopedTerm("a", 2)}))
        assert node.strings == frozenset({"a", "b"})
        assert node.label == "a"
        assert str(node) == "{a, b}"

    def test_single_term_str(self):
        node = FusedNode(frozenset({ScopedTerm("only", 1)}))
        assert str(node) == "only"

    def test_contains_term(self):
        node = FusedNode(frozenset({ScopedTerm("a", 1)}))
        assert node.contains_term("a")
        assert not node.contains_term("b")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FusedNode(frozenset())


class TestHierarchyGraph:
    def test_contains_hasse_and_constraint_edges(self):
        graph = hierarchy_graph(
            {1: Hierarchy([("a", "b")]), 2: Hierarchy([("c", "d")])},
            [parse_constraint("a:1 <= c:2")],
        )
        assert ScopedTerm("c", 2) in graph[ScopedTerm("a", 1)]
        assert ScopedTerm("b", 1) in graph[ScopedTerm("a", 1)]

    def test_equality_contributes_both_directions(self):
        graph = hierarchy_graph(
            {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
            [parse_constraint("a:1 = b:2")],
        )
        assert ScopedTerm("b", 2) in graph[ScopedTerm("a", 1)]
        assert ScopedTerm("a", 1) in graph[ScopedTerm("b", 2)]

    def test_inequality_contributes_no_edges(self):
        graph = hierarchy_graph(
            {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
            [parse_constraint("a:1 != b:2")],
        )
        assert graph[ScopedTerm("a", 1)] == set()


class TestCanonicalFusion:
    def test_figure_11_example(self):
        """The paper's Figure 10 -> Figure 11 canonical fusion."""
        fusion = canonical_fusion(
            {1: sigmod_hierarchy(), 2: dblp_hierarchy()},
            [parse_constraint(text) for text in FIGURE_10_CONSTRAINTS],
        )
        # conference:1 and booktitle:2 merge into one node.
        conference = fusion.node_of("conference", 1)
        assert conference == fusion.node_of("booktitle", 2)
        assert conference.strings == frozenset({"conference", "booktitle"})
        # title:1/title:2 merge; the fused node is below both parents.
        title = fusion.node_of("title", 1)
        assert title == fusion.node_of("title", 2)
        article = fusion.node_of("article", 1)
        inproceedings = fusion.node_of("inproceedings", 2)
        assert fusion.hierarchy.leq(title, article)
        assert fusion.hierarchy.leq(title, inproceedings)
        # confYear:1 = year:2.
        assert fusion.node_of("confYear", 1) == fusion.node_of("year", 2)

    def test_definition_5_axiom_1_order_preservation(self):
        """psi_i(x) <= psi_i(y) whenever x <=_i y."""
        hierarchies = {1: sigmod_hierarchy(), 2: dblp_hierarchy()}
        fusion = canonical_fusion(
            hierarchies, [parse_constraint(t) for t in FIGURE_10_CONSTRAINTS]
        )
        for source, hierarchy in hierarchies.items():
            psi = fusion.psi(source)
            for lower in hierarchy.terms:
                for upper in hierarchy.terms:
                    if hierarchy.leq(lower, upper):
                        assert fusion.hierarchy.leq(psi[lower], psi[upper])

    def test_definition_5_axiom_2_constraint_preservation(self):
        constraints = [parse_constraint(t) for t in FIGURE_10_CONSTRAINTS]
        fusion = canonical_fusion(
            {1: sigmod_hierarchy(), 2: dblp_hierarchy()}, constraints
        )
        for constraint in constraints:
            left = fusion.witness[constraint.left]
            right = fusion.witness[constraint.right]
            assert fusion.hierarchy.leq(left, right)
            assert fusion.hierarchy.leq(right, left)

    def test_subsumption_only_keeps_nodes_separate(self):
        fusion = canonical_fusion(
            {1: Hierarchy(nodes=["kdd"]), 2: Hierarchy(nodes=["conference"])},
            [parse_constraint("kdd:1 <= conference:2")],
        )
        kdd = fusion.node_of("kdd", 1)
        conference = fusion.node_of("conference", 2)
        assert kdd != conference
        assert fusion.hierarchy.lt(kdd, conference)

    def test_subsumption_cycle_merges(self):
        """x <= y and y <= x (via chains) force one fused node."""
        fusion = canonical_fusion(
            {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
            [parse_constraint("a:1 <= b:2"), parse_constraint("b:2 <= a:1")],
        )
        assert fusion.node_of("a", 1) == fusion.node_of("b", 2)

    def test_inequality_violation_raises(self):
        with pytest.raises(FusionInconsistencyError):
            canonical_fusion(
                {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
                [
                    parse_constraint("a:1 = b:2"),
                    parse_constraint("a:1 != b:2"),
                ],
            )

    def test_inequality_satisfied_is_fine(self):
        fusion = canonical_fusion(
            {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
            [parse_constraint("a:1 != b:2")],
        )
        assert fusion.node_of("a", 1) != fusion.node_of("b", 2)

    def test_constraint_on_unknown_term_raises(self):
        with pytest.raises(ConstraintError):
            canonical_fusion(
                {1: Hierarchy(nodes=["a"]), 2: Hierarchy(nodes=["b"])},
                [parse_constraint("zz:1 = b:2")],
            )


class TestFusionResultLookups:
    def test_node_of_requires_source_on_ambiguity(self):
        fusion = canonical_fusion(
            {1: Hierarchy(nodes=["title"]), 2: Hierarchy(nodes=["title"])}
        )
        with pytest.raises(ConstraintError):
            fusion.node_of("title")  # ambiguous without source
        assert fusion.node_of("title", 1) != fusion.node_of("title", 2)

    def test_node_of_unknown_term(self):
        fusion = fuse_single(Hierarchy(nodes=["x"]))
        with pytest.raises(ConstraintError):
            fusion.node_of("martian")

    def test_nodes_of_term(self):
        fusion = canonical_fusion(
            {1: Hierarchy(nodes=["title"]), 2: Hierarchy(nodes=["title"])}
        )
        assert len(fusion.nodes_of_term("title")) == 2

    def test_fuse_single_is_isomorphic(self):
        hierarchy = Hierarchy([("a", "b"), ("c", "b")])
        fusion = fuse_single(hierarchy)
        assert len(fusion.hierarchy) == 3
        assert fusion.hierarchy.leq(fusion.node_of("a"), fusion.node_of("b"))
