"""CLI tests for the observability commands: explain, db trace, db obs."""

import json

import pytest

from repro.cli import main

DBLP = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <title>Paper One</title>
  </inproceedings>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <title>Paper Two</title>
  </inproceedings>
</dblp>
"""

QUERY = 'inproceedings(author ~ "J. Smith")'


@pytest.fixture
def dblp_file(tmp_path):
    path = tmp_path / "dblp.xml"
    path.write_text(DBLP)
    return str(path)


@pytest.fixture
def store(dblp_file, tmp_path, capsys):
    root = str(tmp_path / "store")
    assert main(
        ["db", "build", "--source", f"dblp={dblp_file}", "--epsilon", "1", root]
    ) == 0
    capsys.readouterr()  # discard build output
    return root


class TestExplainCommand:
    def test_explain_from_source(self, dblp_file, capsys):
        status = main(
            ["explain", "--source", f"dblp={dblp_file}", "--epsilon", "1",
             QUERY]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "original :" in out
        assert "rewritten:" in out
        assert "xpath[0]" in out

    def test_explain_json(self, store, capsys):
        assert main(["explain", "--load", store, "--json", QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["xpath_queries"]
        assert "index_plan" in payload


class TestDbTraceCommand:
    def test_trace_prints_span_tree_and_stage_line(self, store, capsys):
        status = main(["db", "trace", store, QUERY])
        assert status == 0
        out = capsys.readouterr().out
        assert "# 2 results" in out
        assert "query.selection" in out
        for stage in ("rewrite", "plan", "xpath", "verify"):
            assert stage in out
        assert "# stages account for" in out
        assert "wall" in out

    def test_trace_stage_seconds_sum_to_wall_time(self, store, capsys):
        assert main(["db", "trace", store, "--json", QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        trace = payload["trace"]
        assert trace["name"] == "query.selection"
        stage_sum = sum(child["seconds"] for child in trace["children"])
        assert stage_sum <= trace["seconds"] + 1e-6
        assert stage_sum >= trace["seconds"] * 0.5

    def test_trace_populates_slow_log_when_threshold_zero(
        self, store, capsys
    ):
        assert main(
            ["db", "trace", store, "--slow-threshold", "0", QUERY]
        ) == 0
        capsys.readouterr()
        assert main(["db", "obs", "slow", store]) == 0
        out = capsys.readouterr().out
        assert "selection" in out
        # The logged query is the compiled XPath form of the pattern.
        assert "inproceedings" in out


class TestDbObsCommands:
    def test_metrics_after_traced_query(self, store, capsys):
        assert main(["db", "trace", store, QUERY]) == 0
        capsys.readouterr()
        assert main(["db", "obs", "metrics", store]) == 0
        out = capsys.readouterr().out
        assert "executor.queries" in out
        assert "executor.seconds" in out

    def test_metrics_json(self, store, capsys):
        assert main(["db", "trace", store, QUERY]) == 0
        capsys.readouterr()
        assert main(["db", "obs", "metrics", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor.queries"]["type"] == "counter"
        assert payload["executor.queries"]["value"] >= 1

    def test_slow_with_trace_renders_span_tree(self, store, capsys):
        assert main(
            ["db", "trace", store, "--slow-threshold", "0", QUERY]
        ) == 0
        capsys.readouterr()
        assert main(["db", "obs", "slow", store, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "query.selection" in out
        assert "plan:" in out

    def test_slow_empty(self, store, capsys):
        assert main(["db", "obs", "slow", store]) == 0
        assert "(no slow queries recorded)" in capsys.readouterr().out


class TestDbTraceRequestFlag:
    def test_no_query_and_no_request_is_an_error(self, store, capsys):
        assert main(["db", "trace", store]) == 2
        assert "needs a query" in capsys.readouterr().err

    def test_trace_prints_request_id_header(self, store, capsys):
        assert main(["db", "trace", store, QUERY]) == 0
        out = capsys.readouterr().out
        header = [line for line in out.splitlines()
                  if line.startswith("# request ")]
        assert len(header) == 1
        rid = header[0].split()[-1]
        assert len(rid) == 16

    def test_request_timeline_after_slow_traced_query(self, store, capsys):
        assert main(
            ["db", "trace", store, "--slow-threshold", "0", QUERY]
        ) == 0
        out = capsys.readouterr().out
        rid = next(
            line.split()[-1] for line in out.splitlines()
            if line.startswith("# request ")
        )
        assert main(["db", "trace", store, "--request", rid]) == 0
        out = capsys.readouterr().out
        assert f"# request {rid}" in out
        assert "query.selection" in out  # the slow-log span tree rides in


class TestDbTraceProfile:
    def test_profile_flag_reports_samples_and_phases(self, store, capsys):
        assert main(
            ["db", "trace", store, "--profile-hz", "500", QUERY]
        ) == 0
        out = capsys.readouterr().out
        assert "# profile:" in out
        assert "Hz" in out

    def test_profile_json_attaches_exemplar(self, store, capsys):
        assert main(
            ["db", "trace", store, "--json", "--profile-hz", "500", QUERY]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile"]["hz"] == 500.0
        assert "phase_seconds" in payload["profile"]


class TestDbObsExport:
    def test_prometheus_export_round_trips(self, store, capsys):
        """Acceptance: ``db obs export --format prometheus`` output must
        survive a parse of the exposition format."""
        from repro.obs.export import parse_prometheus

        assert main(["db", "trace", store, QUERY]) == 0
        capsys.readouterr()
        assert main(["db", "obs", "export", store]) == 0
        text = capsys.readouterr().out
        families = parse_prometheus(text)
        assert families["toss_executor_queries_total"]["type"] == "counter"
        (sample,) = families["toss_executor_queries_total"]["samples"]
        assert sample[1] >= 1.0
        assert any(name.endswith("_bucket") for name in families)

    def test_json_export_shape(self, store, capsys):
        assert main(["db", "trace", store, QUERY]) == 0
        capsys.readouterr()
        assert main(["db", "obs", "export", store, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["executor.queries"]["value"] >= 1

    def test_out_writes_file(self, store, tmp_path, capsys):
        from repro.obs.export import parse_prometheus

        assert main(["db", "trace", store, QUERY]) == 0
        capsys.readouterr()
        target = tmp_path / "metrics.prom"
        assert main(
            ["db", "obs", "export", store, "--out", str(target)]
        ) == 0
        assert "wrote prometheus export" in capsys.readouterr().out
        assert parse_prometheus(target.read_text())

    def test_export_empty_store_is_empty_but_ok(self, store, capsys):
        from repro.obs.window import WINDOWS

        # Rolling windows are process-local; clear residue from earlier
        # in-process queries so only the store's (empty) metrics show.
        WINDOWS.reset()
        assert main(["db", "obs", "export", store]) == 0
        assert capsys.readouterr().out.strip() == ""


class TestQueryJsonAndNoObs:
    def test_query_prints_request_id_on_stderr(self, store, capsys):
        assert main(["query", "--load", store, QUERY]) == 0
        captured = capsys.readouterr()
        assert "# request " in captured.err
        assert "# request " not in captured.out  # stdout layout unchanged


    def test_query_json_report(self, store, capsys):
        assert main(["query", "--load", store, "--json", QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result_count"] == 2
        assert len(payload["results"]) == 2
        assert "total_seconds" in payload

    def test_no_obs_skips_sink_attachment(self, store, tmp_path, capsys):
        assert main(["query", "--load", store, "--no-obs", QUERY]) == 0
        capsys.readouterr()
        # Nothing recorded: the obs metrics file was never flushed to.
        assert main(["db", "obs", "metrics", store]) == 0
        assert "(no metrics recorded)" in capsys.readouterr().out
