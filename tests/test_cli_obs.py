"""CLI tests for the observability commands: explain, db trace, db obs."""

import json

import pytest

from repro.cli import main

DBLP = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <title>Paper One</title>
  </inproceedings>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <title>Paper Two</title>
  </inproceedings>
</dblp>
"""

QUERY = 'inproceedings(author ~ "J. Smith")'


@pytest.fixture
def dblp_file(tmp_path):
    path = tmp_path / "dblp.xml"
    path.write_text(DBLP)
    return str(path)


@pytest.fixture
def store(dblp_file, tmp_path, capsys):
    root = str(tmp_path / "store")
    assert main(
        ["db", "build", "--source", f"dblp={dblp_file}", "--epsilon", "1", root]
    ) == 0
    capsys.readouterr()  # discard build output
    return root


class TestExplainCommand:
    def test_explain_from_source(self, dblp_file, capsys):
        status = main(
            ["explain", "--source", f"dblp={dblp_file}", "--epsilon", "1",
             QUERY]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "original :" in out
        assert "rewritten:" in out
        assert "xpath[0]" in out

    def test_explain_json(self, store, capsys):
        assert main(["explain", "--load", store, "--json", QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["xpath_queries"]
        assert "index_plan" in payload


class TestDbTraceCommand:
    def test_trace_prints_span_tree_and_stage_line(self, store, capsys):
        status = main(["db", "trace", store, QUERY])
        assert status == 0
        out = capsys.readouterr().out
        assert "# 2 results" in out
        assert "query.selection" in out
        for stage in ("rewrite", "plan", "xpath", "verify"):
            assert stage in out
        assert "# stages account for" in out
        assert "wall" in out

    def test_trace_stage_seconds_sum_to_wall_time(self, store, capsys):
        assert main(["db", "trace", store, "--json", QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        trace = payload["trace"]
        assert trace["name"] == "query.selection"
        stage_sum = sum(child["seconds"] for child in trace["children"])
        assert stage_sum <= trace["seconds"] + 1e-6
        assert stage_sum >= trace["seconds"] * 0.5

    def test_trace_populates_slow_log_when_threshold_zero(
        self, store, capsys
    ):
        assert main(
            ["db", "trace", store, "--slow-threshold", "0", QUERY]
        ) == 0
        capsys.readouterr()
        assert main(["db", "obs", "slow", store]) == 0
        out = capsys.readouterr().out
        assert "selection" in out
        # The logged query is the compiled XPath form of the pattern.
        assert "inproceedings" in out


class TestDbObsCommands:
    def test_metrics_after_traced_query(self, store, capsys):
        assert main(["db", "trace", store, QUERY]) == 0
        capsys.readouterr()
        assert main(["db", "obs", "metrics", store]) == 0
        out = capsys.readouterr().out
        assert "executor.queries" in out
        assert "executor.seconds" in out

    def test_metrics_json(self, store, capsys):
        assert main(["db", "trace", store, QUERY]) == 0
        capsys.readouterr()
        assert main(["db", "obs", "metrics", store, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor.queries"]["type"] == "counter"
        assert payload["executor.queries"]["value"] >= 1

    def test_slow_with_trace_renders_span_tree(self, store, capsys):
        assert main(
            ["db", "trace", store, "--slow-threshold", "0", QUERY]
        ) == 0
        capsys.readouterr()
        assert main(["db", "obs", "slow", store, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "query.selection" in out
        assert "plan:" in out

    def test_slow_empty(self, store, capsys):
        assert main(["db", "obs", "slow", store]) == 0
        assert "(no slow queries recorded)" in capsys.readouterr().out


class TestQueryJsonAndNoObs:
    def test_query_json_report(self, store, capsys):
        assert main(["query", "--load", store, "--json", QUERY]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result_count"] == 2
        assert len(payload["results"]) == 2
        assert "total_seconds" in payload

    def test_no_obs_skips_sink_attachment(self, store, tmp_path, capsys):
        assert main(["query", "--load", store, "--no-obs", QUERY]) == 0
        capsys.readouterr()
        # Nothing recorded: the obs metrics file was never flushed to.
        assert main(["db", "obs", "metrics", store]) == 0
        assert "(no metrics recorded)" in capsys.readouterr().out
