"""Per-stage step accounting on the ResourceGuard.

The guard's ``stage_steps`` breakdown feeds the trace tree and the
slow-query log, so the invariant that the per-stage values sum exactly
to ``steps`` must hold — including when steps are absorbed from a
multiprocessing worker pool.
"""

from repro.guard import ResourceGuard
from repro.parallel import BuildOptions, parallel_group_edges


class TestStageAccounting:
    def test_stage_steps_partition_total(self):
        guard = ResourceGuard(max_steps=10**6).start()
        guard.tick(10, what="xpath")
        guard.tick(5, what="verify")
        guard.tick(3, what="xpath")
        assert guard.stage_steps == {"xpath": 13, "verify": 5}
        assert sum(guard.stage_steps.values()) == guard.steps == 18

    def test_default_stage_label(self):
        guard = ResourceGuard(max_steps=10**6).start()
        guard.tick(2)
        assert guard.stage_steps == {"operation": 2}

    def test_start_resets_stage_breakdown(self):
        guard = ResourceGuard(max_steps=10**6).start()
        guard.tick(7, what="xpath")
        guard.start()
        assert guard.steps == 0
        assert guard.stage_steps == {}

    def test_stage_steps_returns_a_copy(self):
        guard = ResourceGuard(max_steps=10**6).start()
        guard.tick(1, what="xpath")
        snapshot = guard.stage_steps
        snapshot["xpath"] = 999
        assert guard.stage_steps == {"xpath": 1}


class TestWorkerPoolAccounting:
    def test_pool_absorbed_steps_keep_stage_partition(self):
        guard = ResourceGuard(max_steps=10**9).start()
        options = BuildOptions(workers=2, parallel_threshold=0)
        parallel_group_edges(
            {0: ["paper", "papers", "pattern"]},
            "levenshtein",
            2.0,
            options,
            guard=guard,
        )
        assert guard.steps > 0
        assert sum(guard.stage_steps.values()) == guard.steps

    def test_serial_and_parallel_agree_on_totals(self):
        groups = {0: ["paper", "papers", "pattern", "papyrus"]}
        serial_guard = ResourceGuard(max_steps=10**9).start()
        parallel_group_edges(
            groups, "levenshtein", 2.0,
            BuildOptions(workers=1), guard=serial_guard,
        )
        pool_guard = ResourceGuard(max_steps=10**9).start()
        parallel_group_edges(
            groups, "levenshtein", 2.0,
            BuildOptions(workers=2, parallel_threshold=0), guard=pool_guard,
        )
        assert pool_guard.steps == serial_guard.steps
        assert sum(pool_guard.stage_steps.values()) == pool_guard.steps
