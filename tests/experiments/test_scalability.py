"""Integration tests for the scalability sweeps (small configurations)."""

import pytest

from repro.experiments.reporting import epsilon_table, scalability_table
from repro.experiments.scalability import (
    epsilon_sweep,
    join_scalability,
    selection_scalability,
)


@pytest.fixture(scope="module")
def selection_points():
    return selection_scalability(
        paper_counts=(50, 100), ontology_caps=(10, None), repeats=1, seed=2
    )


@pytest.fixture(scope="module")
def join_points():
    return join_scalability(
        paper_counts=(40, 80), ontology_caps=(None,), repeats=1, seed=2
    )


class TestSelectionScalability:
    def test_point_grid(self, selection_points):
        papers = {p.papers for p in selection_points}
        assert papers == {50, 100}
        tax_points = [p for p in selection_points if p.system_name == "TAX"]
        assert len(tax_points) == 2

    def test_bytes_grow_with_papers(self, selection_points):
        by_papers = {}
        for point in selection_points:
            by_papers[point.papers] = point.data_bytes
        assert by_papers[100] > by_papers[50]

    def test_phases_sum_to_total(self, selection_points):
        for point in selection_points:
            assert point.seconds == pytest.approx(
                point.rewrite_seconds + point.xpath_seconds + point.convert_seconds
            )

    def test_toss_returns_more_than_tax(self, selection_points):
        toss_results = max(
            p.results for p in selection_points if p.system_name.startswith("TOSS")
        )
        tax_results = max(
            p.results for p in selection_points if p.system_name == "TAX"
        )
        assert toss_results > tax_results

    def test_table_renders(self, selection_points):
        table = scalability_table(selection_points, "test")
        assert "papers" in table and "TAX" in table


class TestJoinScalability:
    def test_points_and_results(self, join_points):
        assert {p.papers for p in join_points} == {40, 80}
        toss = [p for p in join_points if p.system_name.startswith("TOSS")]
        assert all(p.results >= 0 for p in toss)

    def test_join_time_grows(self, join_points):
        toss = sorted(
            (p for p in join_points if p.system_name.startswith("TOSS")),
            key=lambda p: p.papers,
        )
        assert toss[-1].seconds >= toss[0].seconds * 0.5  # noise-tolerant


class TestEpsilonSweep:
    def test_results_monotone_in_epsilon(self):
        points = epsilon_sweep(
            epsilons=(0.0, 2.0, 4.0), papers=60, join_papers=40, repeats=1, seed=2
        )
        for operation in ("selection", "join"):
            series = sorted(
                (p for p in points if p.operation == operation),
                key=lambda p: p.epsilon,
            )
            counts = [p.results for p in series]
            assert counts == sorted(counts)

    def test_table_renders(self):
        points = epsilon_sweep(
            epsilons=(0.0,), papers=30, join_papers=20, repeats=1, seed=2
        )
        assert "epsilon" in epsilon_table(points)
