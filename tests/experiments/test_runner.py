"""Integration tests for the precision/recall experiment runner."""

import pytest

from repro.experiments import run_precision_recall_experiment
from repro.experiments.reporting import (
    epsilon_table,
    fig15a_summary,
    fig15a_table,
    fig15b_series,
    fig15c_series,
    format_table,
    scalability_table,
)
from repro.experiments.runner import QueryOutcome, returned_paper_keys
from repro.xmldb.parser import parse_document


@pytest.fixture(scope="module")
def results():
    return run_precision_recall_experiment(
        n_datasets=1, papers_per_dataset=60, n_queries=6, epsilons=(2.0, 3.0), seed=4
    )


class TestReturnedKeys:
    def test_key_on_root(self):
        tree = parse_document('<inproceedings key="p1"><title>x</title></inproceedings>')
        assert returned_paper_keys([tree]) == frozenset({"p1"})

    def test_key_on_descendant(self):
        tree = parse_document('<wrap><article key="p2"/></wrap>')
        assert returned_paper_keys([tree]) == frozenset({"p2"})

    def test_no_key(self):
        tree = parse_document("<nothing/>")
        assert returned_paper_keys([tree]) == frozenset()


class TestRunner:
    def test_outcomes_per_system(self, results):
        systems = results.systems()
        assert systems == ["TAX", "TOSS(e=2)", "TOSS(e=3)"]
        per_system = {name: len(results.for_system(name)) for name in systems}
        assert len(set(per_system.values())) == 1  # same count each

    def test_tax_precision_always_one(self, results):
        assert all(o.precision == 1.0 for o in results.for_system("TAX"))

    def test_toss_recall_dominates_tax(self, results):
        _, tax_recall, _ = results.averages("TAX")
        _, toss_recall, _ = results.averages("TOSS(e=3)")
        assert toss_recall > tax_recall

    def test_recall_monotone_in_epsilon_per_query(self, results):
        for tax, toss3 in results.paired("TOSS(e=3)"):
            pass  # pairing exercised below
        index2 = {
            (o.dataset, o.query_id): o for o in results.for_system("TOSS(e=2)")
        }
        for outcome in results.for_system("TOSS(e=3)"):
            other = index2[(outcome.dataset, outcome.query_id)]
            assert outcome.recall >= other.recall - 1e-9

    def test_paired_aligns_datasets_and_queries(self, results):
        pairs = results.paired("TOSS(e=3)")
        assert pairs
        for tax, toss in pairs:
            assert tax.system_name == "TAX"
            assert (tax.dataset, tax.query_id) == (toss.dataset, toss.query_id)

    def test_fraction_tax_recall_below(self, results):
        fraction = results.fraction_tax_recall_below(0.5)
        assert 0.0 <= fraction <= 1.0

    def test_outcome_metrics_consistent(self, results):
        for outcome in results.outcomes:
            assert outcome.quality == pytest.approx(
                (outcome.precision * outcome.recall) ** 0.5
            )
            assert outcome.seconds >= 0


class TestReporting:
    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [[1, 2.5], ["xx", "y"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[:2])

    def test_fig15a_table_lists_all_queries(self, results):
        table = fig15a_table(results)
        assert "TAX P" in table
        assert table.count("Q0") >= 6

    def test_fig15a_summary_mentions_threshold(self, results):
        summary = fig15a_summary(results)
        assert "TAX recall < 0.5" in summary

    def test_fig15b_series_sorted_by_tax_recall(self, results):
        series = fig15b_series(results)
        assert "sqrt(TAX recall)" in series

    def test_fig15c_series(self, results):
        series = fig15c_series(results)
        assert "norm. recall gain" in series
