"""The Figure 15 orderings must hold for seeds the workload was not tuned on."""

import pytest

from repro.experiments import run_precision_recall_experiment


@pytest.mark.parametrize("seed", [7, 23])
def test_fig15_shape_holds_across_seeds(seed):
    results = run_precision_recall_experiment(
        n_datasets=1, papers_per_dataset=100, n_queries=12, seed=seed
    )
    tax_p, tax_r, tax_q = results.averages("TAX")
    toss2_p, toss2_r, toss2_q = results.averages("TOSS(e=2)")
    toss3_p, toss3_r, toss3_q = results.averages("TOSS(e=3)")

    assert tax_p == 1.0
    assert toss3_r > toss2_r > tax_r
    assert toss2_p >= toss3_p - 0.05
    assert toss3_q > tax_q
    assert toss3_p > 0.75
