"""Unit tests for the experiment workload builders."""

import pytest

from repro.core.conditions import Below, SimilarTo
from repro.data import generate_corpus, render_dblp
from repro.experiments.workload import (
    build_join_pattern,
    build_scalability_pattern,
    build_selection_workload,
    build_system,
)
from repro.tax.conditions import And, Comparison, Contains


@pytest.fixture(scope="module")
def corpus():
    corpus = generate_corpus(100, seed=1)
    render_dblp(corpus, seed=1)  # records surfaces
    return corpus


class TestSelectionWorkload:
    def test_twelve_queries(self, corpus):
        queries = build_selection_workload(corpus, 12, seed=1)
        assert len(queries) == 12
        assert [q.query_id for q in queries] == [f"Q{i:02d}" for i in range(1, 13)]

    def test_query_shape_one_isa_one_similar_three_tags(self, corpus):
        for query in build_selection_workload(corpus, 12, seed=1):
            operands = query.toss_pattern.condition.operands
            assert sum(isinstance(op, SimilarTo) for op in operands) == 1
            assert sum(isinstance(op, Below) for op in operands) == 1
            assert sum(isinstance(op, Comparison) for op in operands) == 3

    def test_tax_degradation(self, corpus):
        for query in build_selection_workload(corpus, 12, seed=1):
            operands = query.tax_pattern.condition.operands
            assert sum(isinstance(op, Contains) for op in operands) == 1
            assert sum(isinstance(op, Comparison) for op in operands) == 4
            assert not any(isinstance(op, (SimilarTo, Below)) for op in operands)

    def test_ground_truth_nonempty(self, corpus):
        for query in build_selection_workload(corpus, 12, seed=1):
            assert query.relevant

    def test_surface_is_recorded_form(self, corpus):
        for query in build_selection_workload(corpus, 12, seed=1):
            assert corpus.entities_for_surface(query.author_surface)

    def test_includes_rare_author_queries(self, corpus):
        queries = build_selection_workload(corpus, 12, seed=1)
        sizes = [len(q.relevant) for q in queries]
        assert min(sizes) <= 3, "some queries must have tiny answer sets"
        assert max(sizes) >= 5, "some queries must have large answer sets"


class TestScalabilityPatterns:
    def test_selection_pattern_shape(self):
        pattern = build_scalability_pattern()
        operands = pattern.condition.operands
        assert sum(isinstance(op, Below) for op in operands) == 2
        assert sum(isinstance(op, Comparison) for op in operands) == 4

    def test_tax_fallback_swaps_isa_for_exact(self):
        pattern = build_scalability_pattern(tax_fallback=True)
        operands = pattern.condition.operands
        assert not any(isinstance(op, Below) for op in operands)
        assert sum(isinstance(op, Comparison) for op in operands) == 6

    def test_join_pattern_shape(self):
        pattern = build_join_pattern()
        operands = pattern.condition.operands
        assert sum(isinstance(op, SimilarTo) for op in operands) == 1
        assert sum(isinstance(op, Comparison) for op in operands) == 5
        assert len(pattern.children(pattern.root)) == 2

    def test_join_tax_fallback(self):
        pattern = build_join_pattern(tax_fallback=True)
        assert not any(
            isinstance(op, SimilarTo) for op in pattern.condition.operands
        )


class TestBuildSystem:
    def test_build_system_ready_to_query(self, corpus):
        dblp = render_dblp(corpus, seed=1)
        system = build_system(corpus, [dblp], epsilon=2.0)
        assert system.context is not None
        assert system.ontology_size() > 50

    def test_ontology_cap_controls_size(self, corpus):
        dblp = render_dblp(corpus, seed=1)
        small = build_system(corpus, [dblp], 2.0, max_content_terms=10)
        large = build_system(corpus, [dblp], 2.0, max_content_terms=None)
        assert small.ontology_size() < large.ontology_size()
