"""The candidate-generation layer: filters prune, never drop, pairs."""

import random

import pytest

from repro.errors import ResourceExhaustedError
from repro.guard import ResourceGuard
from repro.similarity.candidates import (
    bigram_occurrences,
    block_edges,
    length_sorted_order,
    pair_count,
    supports_filter,
)
from repro.similarity.measures import (
    DamerauLevenshtein,
    Jaccard,
    Levenshtein,
    NormalizedLevenshtein,
)


def brute_force(reps, measure, epsilon):
    edges = set()
    for i in range(len(reps)):
        for j in range(i + 1, len(reps)):
            if reps[i] == reps[j] or measure.distance(reps[i], reps[j]) <= epsilon:
                edges.add((i, j))
    return edges


def full_run(reps, measure, epsilon, use_filter=True):
    order = length_sorted_order(reps)
    edges, stats = block_edges(
        reps, order, measure, epsilon, 0, len(reps), use_filter=use_filter
    )
    return edges, stats


class TestSupportsFilter:
    def test_only_plain_levenshtein(self):
        assert supports_filter(Levenshtein())
        assert not supports_filter(DamerauLevenshtein())
        assert not supports_filter(NormalizedLevenshtein())
        assert not supports_filter(Jaccard())


class TestBigramOccurrences:
    def test_counts_repeated_grams_separately(self):
        assert bigram_occurrences("aaa") == (("aa", 1), ("aa", 2))

    def test_short_strings_use_pseudo_gram(self):
        assert bigram_occurrences("") == (("", 1),)
        assert bigram_occurrences("x") == (("x", 1),)

    def test_profile_size_is_length_minus_one(self):
        for text in ("ab", "abcd", "aabbaa"):
            assert len(bigram_occurrences(text)) == len(text) - 1


class TestBlockEdges:
    @pytest.mark.parametrize("epsilon", [0.0, 1.0, 1.5, 2.0, 3.0])
    def test_filter_matches_brute_force(self, epsilon):
        rng = random.Random(int(epsilon * 10))
        reps = [
            "".join(rng.choice("abcdef") for _ in range(rng.randint(0, 10)))
            for _ in range(80)
        ]
        measure = Levenshtein()
        truth = brute_force(reps, measure, epsilon)
        filtered, fstats = full_run(reps, measure, epsilon, use_filter=True)
        allpairs, astats = full_run(reps, measure, epsilon, use_filter=False)
        assert set(filtered) == truth
        assert set(allpairs) == truth
        assert fstats.edges == astats.edges == len(truth)
        # The filter must verify no more candidates than all-pairs does.
        assert fstats.candidates <= astats.candidates

    def test_block_union_equals_full_run(self):
        rng = random.Random(11)
        reps = [
            "".join(rng.choice("abc") for _ in range(rng.randint(1, 6)))
            for _ in range(50)
        ]
        measure = Levenshtein()
        full, _ = full_run(reps, measure, 1.0)
        order = length_sorted_order(reps)
        union = []
        for lo, hi in [(0, 13), (13, 14), (14, 40), (40, 50)]:
            edges, _ = block_edges(reps, order, measure, 1.0, lo, hi)
            union.extend(edges)
        assert sorted(union) == sorted(full)
        assert len(union) == len(set(union))  # no pair reported twice

    def test_duplicate_reps_always_connect(self):
        edges, _ = full_run(["same", "same", "other"], Levenshtein(), 0.0)
        assert (0, 1) in edges

    def test_empty_and_tiny_inputs(self):
        measure = Levenshtein()
        assert full_run([], measure, 1.0)[0] == []
        assert full_run(["solo"], measure, 1.0)[0] == []
        edges, _ = full_run(["a", "b"], measure, 1.0)
        assert edges == [(0, 1)]

    def test_out_of_range_block_raises(self):
        reps = ["a", "b"]
        order = length_sorted_order(reps)
        with pytest.raises(ValueError):
            block_edges(reps, order, Levenshtein(), 1.0, 0, 3)
        with pytest.raises(ValueError):
            block_edges(reps, order, Levenshtein(), 1.0, 2, 1)

    def test_fractional_epsilon(self):
        # epsilon 0.5 admits only exact matches for unit-cost edit distance.
        edges, _ = full_run(["cat", "bat", "cat"], Levenshtein(), 0.5)
        assert set(edges) == {(0, 2)}

    def test_guard_ticks_per_probe_and_candidate(self):
        reps = [f"term{i:02d}" for i in range(30)]
        guard = ResourceGuard(max_steps=5)
        guard.start()
        with pytest.raises(ResourceExhaustedError):
            full_run_with_guard(reps, guard)


def full_run_with_guard(reps, guard):
    order = length_sorted_order(reps)
    return block_edges(
        reps, order, Levenshtein(), 2.0, 0, len(reps), guard=guard
    )


def test_pair_count():
    assert pair_count([]) == 0
    assert pair_count([1]) == 0
    assert pair_count([2, 3]) == 1 + 3
    assert pair_count([100]) == 4950
