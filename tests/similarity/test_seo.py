"""Unit tests for SimilarityEnhancedOntology (string-level SEO API)."""

import pytest

from repro.errors import UnknownTermError
from repro.ontology import Hierarchy, parse_constraint
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology


@pytest.fixture
def seo():
    hierarchy = Hierarchy(
        [
            ("J. Smith", "author"),
            ("J. Smyth", "author"),
            ("P. Chen", "author"),
            ("author", "person"),
            ("SIGMOD Conference", "database conference"),
            ("database conference", "conference"),
        ]
    )
    return SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 1.0)


class TestBuild:
    def test_build_from_multiple_sources(self):
        left = Hierarchy([("title", "article")])
        right = Hierarchy([("title", "inproceedings")])
        seo = SimilarityEnhancedOntology.build(
            {1: left, 2: right},
            Levenshtein(),
            0.0,
            [parse_constraint("article:1 = inproceedings:2"),
             parse_constraint("title:1 = title:2")],
        )
        assert "title" in seo
        assert seo.leq("title", "article")
        assert seo.leq("title", "inproceedings")

    def test_term_count(self, seo):
        # J. Smith, J. Smyth, P. Chen, author, person,
        # SIGMOD Conference, database conference, conference
        assert seo.term_count() == 8

    def test_strings(self, seo):
        assert "J. Smith" in seo.strings()
        assert "conference" in seo.strings()


class TestSimilar:
    def test_cohabiting_terms_similar(self, seo):
        assert seo.similar("J. Smith", "J. Smyth")

    def test_identity(self, seo):
        assert seo.similar("whatever", "whatever")

    def test_distant_terms_not_similar(self, seo):
        assert not seo.similar("J. Smith", "P. Chen")

    def test_unknown_terms_fall_back_to_measure(self, seo):
        assert seo.similar("zzzz", "zzzy")  # distance 1, neither known
        assert not seo.similar("zzzz", "aaaa")


class TestExpansion:
    def test_expand_similar_known_term(self, seo):
        assert seo.expand_similar("J. Smith") == frozenset(
            {"J. Smith", "J. Smyth"}
        )

    def test_expand_similar_unknown_term_scans(self, seo):
        expansion = seo.expand_similar("J. Smitt")  # 1 from Smith, Smyth? 2
        assert "J. Smith" in expansion
        assert "J. Smitt" in expansion

    def test_expand_below_category(self, seo):
        below = seo.expand_below("conference")
        assert "SIGMOD Conference" in below
        assert "database conference" in below
        assert "J. Smith" not in below

    def test_expand_below_includes_similars_of_members(self, seo):
        below = seo.expand_below("person")
        assert {"J. Smith", "J. Smyth", "P. Chen", "author"} <= set(below)

    def test_expand_below_unknown_term_is_singleton(self, seo):
        assert seo.expand_below("nonexistent") == frozenset({"nonexistent"})

    def test_expand_above(self, seo):
        above = seo.expand_above("SIGMOD Conference")
        assert {"database conference", "conference"} <= set(above)


class TestOrder:
    def test_leq_through_enhancement(self, seo):
        assert seo.leq("J. Smith", "person")
        assert not seo.leq("person", "J. Smith")

    def test_leq_reflexive_via_shared_node(self, seo):
        assert seo.leq("J. Smith", "J. Smyth")  # same enhanced node

    def test_leq_unknown_raises(self, seo):
        with pytest.raises(UnknownTermError):
            seo.leq("martian", "person")

    def test_nodes_of(self, seo):
        nodes = seo.nodes_of("J. Smith")
        assert len(nodes) == 1
        assert next(iter(nodes)).strings == frozenset({"J. Smith", "J. Smyth"})
        assert seo.nodes_of("unknown") == frozenset()
