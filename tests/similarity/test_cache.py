"""The persistent similarity-graph cache: keys, round trips, corruption."""

import json
import os

import pytest

from repro.ontology.constraints import EqualityConstraint, ScopedTerm
from repro.ontology.hierarchy import Hierarchy
from repro.similarity.cache import SimilarityGraphCache, cache_key
from repro.similarity.measures import Levenshtein, get_measure
from repro.similarity.persistence import dump_seo
from repro.similarity.seo import SimilarityEnhancedOntology

ORDER_SAFE = "order-safe"


def levenshtein():
    """A *named* (registry) measure — cacheable, unlike ``Levenshtein()``."""
    return get_measure("levenshtein")


@pytest.fixture
def hierarchies():
    return {
        "a": Hierarchy(
            [("databases", "computer science"), ("data mining", "computer science")]
        ),
        "b": Hierarchy([("database", "science"), ("algorithms", "science")]),
    }


@pytest.fixture
def cache(tmp_path):
    return SimilarityGraphCache(str(tmp_path / "seo-cache"))


def build(hierarchies, cache=None, epsilon=2.0, mode=ORDER_SAFE, **kwargs):
    return SimilarityEnhancedOntology.build(
        hierarchies, levenshtein(), epsilon, mode=mode, cache=cache, **kwargs
    )


class TestCacheKey:
    def test_deterministic(self, hierarchies):
        first = cache_key(hierarchies, levenshtein(), 2.0, mode=ORDER_SAFE)
        second = cache_key(hierarchies, levenshtein(), 2.0, mode=ORDER_SAFE)
        assert first == second

    def test_source_order_is_irrelevant(self, hierarchies):
        reordered = dict(reversed(list(hierarchies.items())))
        assert cache_key(hierarchies, levenshtein(), 2.0) == cache_key(
            reordered, levenshtein(), 2.0
        )

    def test_every_input_changes_the_key(self, hierarchies):
        base = cache_key(hierarchies, levenshtein(), 2.0, mode=ORDER_SAFE)
        assert base != cache_key(hierarchies, levenshtein(), 3.0, mode=ORDER_SAFE)
        assert base != cache_key(hierarchies, get_measure("jaccard"), 2.0, mode=ORDER_SAFE)
        assert base != cache_key(hierarchies, levenshtein(), 2.0, mode="strict")
        grown = dict(hierarchies)
        grown["a"] = grown["a"].with_terms(["information retrieval"])
        assert base != cache_key(grown, levenshtein(), 2.0, mode=ORDER_SAFE)
        constrained = cache_key(
            hierarchies,
            levenshtein(),
            2.0,
            constraints=[
                EqualityConstraint(
                    ScopedTerm("databases", "a"), ScopedTerm("database", "b")
                )
            ],
            mode=ORDER_SAFE,
        )
        assert constrained is not None
        assert base != constrained

    def test_int_and_float_epsilon_share_a_key(self, hierarchies):
        assert cache_key(hierarchies, levenshtein(), 2) == cache_key(
            hierarchies, levenshtein(), 2.0
        )

    def test_unnamed_measure_is_uncacheable(self, hierarchies):
        assert cache_key(hierarchies, Levenshtein(), 2.0) is None

    def test_non_string_terms_are_uncacheable(self):
        assert cache_key({"a": Hierarchy([(1, 2)])}, levenshtein(), 2.0) is None
        assert (
            cache_key({1: Hierarchy([("x", "y")])}, levenshtein(), 2.0) is None
        )


class TestRoundTrip:
    def test_warm_build_is_bit_identical(self, hierarchies, cache):
        cold = build(hierarchies, cache)
        assert cold.build_stats.cache_hit is False
        assert cold.build_stats.cache_key is not None
        warm = build(hierarchies, cache)
        assert warm.build_stats.cache_hit is True
        assert dump_seo(warm) == dump_seo(cold)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["stores"] == 1

    def test_restored_seo_answers_queries(self, hierarchies, cache):
        cold = build(hierarchies, cache)
        warm = build(hierarchies, cache)
        for term in sorted(cold.strings()):
            assert warm.expand_similar(term) == cold.expand_similar(term)
            assert warm.expand_below(term) == cold.expand_below(term)
            assert warm.expand_above(term) == cold.expand_above(term)
        pairs = [
            ("databases", "database"),
            ("databases", "data mining"),
            ("database", "algorithms"),
        ]
        for x, y in pairs:
            assert warm.similar(x, y) == cold.similar(x, y)
        assert warm.leq("databases", "computer science")

    def test_different_epsilon_misses(self, hierarchies, cache):
        build(hierarchies, cache, epsilon=2.0)
        other = build(hierarchies, cache, epsilon=1.0)
        assert other.build_stats.cache_hit is False

    def test_uncacheable_build_still_works(self, cache):
        seo = SimilarityEnhancedOntology.build(
            {"a": Hierarchy([(1, 2)])}, levenshtein(), 2.0, cache=cache
        )
        assert seo.build_stats.cache_key is None
        assert cache.stats()["stores"] == 0


class TestCorruption:
    def test_truncated_entry_is_a_miss(self, hierarchies, cache):
        cold = build(hierarchies, cache)
        path = cache.path_for(cold.build_stats.cache_key)
        with open(path, "r+", encoding="utf-8") as handle:
            handle.truncate(len(handle.read()) // 2)
        rebuilt = build(hierarchies, cache)
        assert rebuilt.build_stats.cache_hit is False
        assert dump_seo(rebuilt) == dump_seo(cold)

    def test_tampered_payload_is_a_miss(self, hierarchies, cache):
        cold = build(hierarchies, cache)
        path = cache.path_for(cold.build_stats.cache_key)
        entry = json.loads(open(path, encoding="utf-8").read())
        entry["seo"]["epsilon"] = 99.0  # checksum no longer matches
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        rebuilt = build(hierarchies, cache)
        assert rebuilt.build_stats.cache_hit is False

    def test_foreign_format_is_a_miss(self, hierarchies, cache):
        cold = build(hierarchies, cache)
        path = cache.path_for(cold.build_stats.cache_key)
        entry = json.loads(open(path, encoding="utf-8").read())
        entry["format"] = 999
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.load(cold.build_stats.cache_key) is None


class TestInvalidation:
    def test_invalidate_one_entry(self, hierarchies, cache):
        cold = build(hierarchies, cache)
        key = cold.build_stats.cache_key
        assert cache.invalidate(key) is True
        assert not os.path.exists(cache.path_for(key))
        assert cache.invalidate(key) is False
        assert build(hierarchies, cache).build_stats.cache_hit is False

    def test_clear_drops_everything(self, hierarchies, cache):
        build(hierarchies, cache, epsilon=1.0)
        build(hierarchies, cache, epsilon=2.0)
        assert cache.clear() == 2
        assert cache.clear() == 0

    def test_clear_on_missing_directory(self, tmp_path):
        assert SimilarityGraphCache(str(tmp_path / "never-created")).clear() == 0
