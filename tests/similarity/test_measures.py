"""Unit tests for the string similarity measures."""

import math

import pytest

from repro.similarity.measures import (
    CosineTfIdf,
    DamerauLevenshtein,
    Jaccard,
    Jaro,
    JaroWinkler,
    Levenshtein,
    MongeElkan,
    NormalizedLevenshtein,
    QGram,
    ScaledMeasure,
    get_measure,
    register_measure,
)
from repro.similarity.tokenize import CorpusStatistics


class TestRegistry:
    def test_get_known_measure(self):
        measure = get_measure("levenshtein")
        assert isinstance(measure, Levenshtein)
        assert measure.name == "levenshtein"

    def test_unknown_measure_lists_known(self):
        with pytest.raises(KeyError) as info:
            get_measure("nope")
        assert "levenshtein" in str(info.value)

    def test_register_custom(self):
        class Constant0(Levenshtein):
            pass

        register_measure("constant0-test", Constant0)
        assert isinstance(get_measure("constant0-test"), Constant0)

    @pytest.mark.parametrize(
        "name",
        [
            "levenshtein", "normalized_levenshtein", "damerau", "jaro",
            "jaro_winkler", "jaccard", "cosine", "qgram", "monge_elkan",
        ],
    )
    def test_all_registered_measures_satisfy_definition_7(self, name):
        measure = get_measure(name)
        pairs = [
            ("abc", "abd"), ("J. Ullman", "Jeffrey Ullman"),
            ("", "x"), ("same", "same"),
        ]
        for x, y in pairs:
            d = measure.distance(x, y)
            assert d >= 0.0
            assert measure.distance(x, x) == 0.0
            assert measure.distance(x, y) == pytest.approx(measure.distance(y, x))


class TestLevenshtein:
    def setup_method(self):
        self.measure = Levenshtein()

    @pytest.mark.parametrize(
        "x, y, expected",
        [
            ("kitten", "sitting", 3),
            ("model", "models", 1),
            ("relation", "relational", 2),
            ("", "abc", 3),
            ("abc", "", 3),
            ("same", "same", 0),
            ("Gian Luigi Ferrari", "GianLuigi Ferrari", 1),
            ("Marco Ferrari", "Mauro Ferrari", 2),
        ],
    )
    def test_known_distances(self, x, y, expected):
        assert self.measure.distance(x, y) == expected

    def test_is_strong(self):
        assert self.measure.is_strong

    def test_lower_bound_is_length_difference(self):
        assert self.measure.lower_bound("ab", "abcdef") == 4.0

    @pytest.mark.parametrize(
        "x, y, bound",
        [
            ("kitten", "sitting", 3), ("kitten", "sitting", 2),
            ("abcdef", "abcdef", 0), ("a", "z", 0),
            ("Jeffrey D. Ullman", "Jeffrey Ullman", 3),
            ("completely", "different!", 4),
        ],
    )
    def test_bounded_matches_exact_within_bound(self, x, y, bound):
        exact = self.measure.distance(x, y)
        bounded = self.measure.bounded_distance(x, y, bound)
        if exact <= bound:
            assert bounded == exact
        else:
            assert bounded > bound

    def test_similar_uses_bound(self):
        assert self.measure.similar("model", "models", 1)
        assert not self.measure.similar("model", "relational", 3)


class TestDamerau:
    def test_transposition_counts_one(self):
        measure = DamerauLevenshtein()
        assert measure.distance("abcd", "abdc") == 1.0
        assert Levenshtein().distance("abcd", "abdc") == 2.0

    def test_reduces_to_levenshtein_without_transpositions(self):
        measure = DamerauLevenshtein()
        assert measure.distance("kitten", "sitting") == 3.0

    def test_empty_strings(self):
        measure = DamerauLevenshtein()
        assert measure.distance("", "abc") == 3.0
        assert measure.distance("abc", "") == 3.0


class TestJaroFamily:
    def test_jaro_identity_and_disjoint(self):
        jaro = Jaro()
        assert jaro.distance("x", "x") == 0.0
        assert jaro.distance("abc", "xyz") == 1.0

    def test_jaro_known_value(self):
        # Classic example: MARTHA vs MARHTA -> similarity 0.944...
        assert Jaro().similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_jaro_winkler_boosts_prefix(self):
        jaro = Jaro()
        winkler = JaroWinkler()
        assert winkler.distance("prefixed", "prefixes") <= jaro.distance(
            "prefixed", "prefixes"
        )

    def test_jaro_winkler_validates_weight(self):
        with pytest.raises(ValueError):
            JaroWinkler(prefix_weight=0.5)

    def test_empty_string(self):
        assert Jaro().distance("", "abc") == 1.0


class TestTokenMeasures:
    def test_jaccard_word_sets(self):
        measure = Jaccard()
        assert measure.distance("data base systems", "data base") == pytest.approx(1 / 3)
        assert measure.distance("alpha beta", "gamma delta") == 1.0
        assert measure.distance("", "") == 0.0

    def test_jaccard_is_strong(self):
        assert Jaccard().is_strong

    def test_cosine_identity(self):
        corpus = CorpusStatistics(["data base systems", "query processing"])
        measure = CosineTfIdf(corpus)
        assert measure.distance("data base", "data base") == 0.0
        assert measure.distance("data base", "query processing") == pytest.approx(1.0)

    def test_cosine_partial_overlap(self):
        measure = CosineTfIdf()
        d = measure.distance("data base", "data warehouse")
        assert 0.0 < d < 1.0

    def test_qgram_known(self):
        measure = QGram(q=2)
        # "ab" vs "ab": identical profiles.
        assert measure.distance("ab", "ab") == 0.0
        assert measure.distance("ab", "ba") > 0

    def test_qgram_rejects_bad_q(self):
        with pytest.raises(ValueError):
            QGram(q=0)

    def test_monge_elkan_token_best_match(self):
        measure = MongeElkan()
        close = measure.distance("Jeffrey Ullman", "Ullman Jeffrey")
        far = measure.distance("Jeffrey Ullman", "Paolo Ciancarini")
        assert close < far
        assert measure.distance("x y", "x y") == 0.0

    def test_monge_elkan_empty(self):
        measure = MongeElkan()
        assert measure.distance("", "") == 0.0
        assert measure.distance("", "word") == 1.0


class TestScaledMeasure:
    def test_scales_distance(self):
        scaled = ScaledMeasure(Levenshtein(), 0.5)
        assert scaled.distance("model", "models") == 0.5

    def test_preserves_strongness(self):
        assert ScaledMeasure(Levenshtein(), 2.0).is_strong
        assert not ScaledMeasure(Jaro(), 2.0).is_strong

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            ScaledMeasure(Levenshtein(), 0.0)


class TestNormalizedLevenshtein:
    def test_bounded_by_one(self):
        measure = NormalizedLevenshtein()
        assert measure.distance("abc", "xyz") == 1.0
        assert measure.distance("", "") == 0.0
        assert 0 < measure.distance("model", "models") < 1
