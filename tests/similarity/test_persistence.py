"""Unit tests for SEO persistence (JSON round trips)."""

import json

import pytest

from repro.errors import SimilarityError
from repro.ontology import Hierarchy, parse_constraint
from repro.similarity.measures import Levenshtein, get_measure
from repro.similarity.persistence import (
    dump_seo,
    load_seo,
    read_seo,
    save_seo,
    seo_from_dict,
    seo_to_dict,
)
from repro.similarity.seo import SimilarityEnhancedOntology


@pytest.fixture
def seo():
    left = Hierarchy(
        [("J. Smith", "author"), ("J. Smyth", "author"), ("author", "person")]
    )
    right = Hierarchy([("P. Chen", "author"), ("author", "person")])
    return SimilarityEnhancedOntology.build(
        {1: left, 2: right},
        get_measure("levenshtein"),
        1.0,
        [
            parse_constraint("author:1 = author:2"),
            parse_constraint("person:1 = person:2"),
        ],
        mode="order-safe",
    )


class TestRoundTrip:
    def test_queries_survive_round_trip(self, seo):
        loaded = load_seo(dump_seo(seo))
        assert loaded.epsilon == seo.epsilon
        assert loaded.strings() == seo.strings()
        for x in seo.strings():
            for y in seo.strings():
                assert loaded.similar(x, y) == seo.similar(x, y)
                assert loaded.leq(x, y) == seo.leq(x, y)
            assert loaded.expand_similar(x) == seo.expand_similar(x)
            assert loaded.expand_below(x) == seo.expand_below(x)
            assert loaded.expand_above(x) == seo.expand_above(x)

    def test_witness_survives(self, seo):
        loaded = load_seo(dump_seo(seo))
        assert set(loaded.fusion.witness) == set(seo.fusion.witness)
        for scoped in seo.fusion.witness:
            assert (
                loaded.fusion.witness[scoped].strings
                == seo.fusion.witness[scoped].strings
            )

    def test_mode_preserved(self, seo):
        loaded = load_seo(dump_seo(seo))
        assert loaded.enhancement.mode == "order-safe"

    def test_json_is_deterministic(self, seo):
        assert dump_seo(seo) == dump_seo(seo)

    def test_file_round_trip(self, seo, tmp_path):
        path = tmp_path / "seo.json"
        save_seo(seo, str(path))
        loaded = read_seo(str(path))
        assert loaded.strings() == seo.strings()


class TestErrors:
    def test_unnamed_measure_rejected(self):
        class Anonymous(Levenshtein):
            pass

        anonymous = Anonymous()
        anonymous.name = ""
        seo = SimilarityEnhancedOntology.for_hierarchy(
            Hierarchy(nodes=["x"]), anonymous, 0.0
        )
        with pytest.raises(SimilarityError):
            seo_to_dict(seo)

    def test_bad_version_rejected(self, seo):
        payload = seo_to_dict(seo)
        payload["format"] = 99
        with pytest.raises(SimilarityError):
            seo_from_dict(payload)

    def test_payload_is_pure_json(self, seo):
        json.loads(dump_seo(seo))  # no exotic types slipped through
