"""Unit tests for the rule-based name/venue measures."""

import pytest

from repro.similarity.rules import NameRuleMeasure, VenueRuleMeasure


class TestNameRules:
    def setup_method(self):
        self.measure = NameRuleMeasure()

    def test_identity(self):
        assert self.measure.distance("J. Ullman", "J. Ullman") == 0.0

    @pytest.mark.parametrize(
        "x, y",
        [
            ("J. Ullman", "Jeffrey D. Ullman"),
            ("J. D. Ullman", "Jeffrey D. Ullman"),
            ("Jeffrey Ullman", "Jeffrey D. Ullman"),
            ("Ullman, Jeffrey D.", "Jeffrey D. Ullman"),
        ],
    )
    def test_paper_ullman_variants_match(self, x, y):
        assert self.measure.distance(x, y) == 0.5

    def test_joined_name_matches_at_one(self):
        assert self.measure.distance(
            "Gian Luigi Ferrari", "GianLuigi Ferrari"
        ) <= 1.0

    def test_different_people_far(self):
        # Marco vs Mauro Ferrari: different first names, not initial-compatible.
        assert self.measure.distance("Marco Ferrari", "Mauro Ferrari") >= 2.0

    def test_incompatible_initials(self):
        assert self.measure.distance("K. Ullman", "Jeffrey Ullman") >= 2.0

    def test_suffixes_ignored(self):
        assert self.measure.distance("John Smith Jr.", "John Smith") == 0.5

    def test_symmetry(self):
        pairs = [
            ("J. Ullman", "Jeffrey Ullman"),
            ("Marco Ferrari", "GianLuigi Ferrari"),
        ]
        for x, y in pairs:
            assert self.measure.distance(x, y) == self.measure.distance(y, x)

    def test_empty_name_falls_back(self):
        assert self.measure.distance("", "Jeffrey Ullman") >= 2.0


class TestVenueRules:
    def setup_method(self):
        self.measure = VenueRuleMeasure()

    def test_identity(self):
        assert self.measure.distance("VLDB", "VLDB") == 0.0

    def test_short_vs_long_sigmod(self):
        d = self.measure.distance(
            "SIGMOD Conference",
            "ACM SIGMOD International Conference on Management of Data",
        )
        assert d == 0.5

    def test_unrelated_venues_far(self):
        d = self.measure.distance("SIGMOD Conference", "SOSP")
        assert d > 2.0

    def test_acronym_expansion_overlap(self):
        d = self.measure.distance("VLDB", "Very Large Data Bases Conference")
        assert d < 2.0

    def test_symmetry(self):
        x, y = "KDD", "Knowledge Discovery and Data Mining"
        assert self.measure.distance(x, y) == self.measure.distance(y, x)
