"""Unit tests for the SEA algorithm (Figure 12, Definitions 8-9)."""

import pytest

from repro.errors import SimilarityInconsistencyError
from repro.ontology import Hierarchy
from repro.ontology.fusion import canonical_fusion
from repro.similarity.measures import Levenshtein, get_measure
from repro.similarity.sea import (
    EnhancedNode,
    NodeDistance,
    ORDER_SAFE,
    SimilarityEnhancement,
    node_strings,
    sea,
)


def enhanced_by_strings(enhancement, *strings):
    """Find the enhanced node containing exactly the given strings."""
    target = frozenset(strings)
    for node in enhancement.hierarchy.terms:
        if node.strings == target:
            return node
    raise AssertionError(f"no enhanced node with strings {target}")


class TestNodeStrings:
    def test_plain_string(self):
        assert node_strings("author") == frozenset({"author"})

    def test_object_with_strings_attribute(self):
        class Fake:
            strings = frozenset({"a", "b"})

        assert node_strings(Fake()) == frozenset({"a", "b"})

    def test_other_objects_stringified(self):
        assert node_strings(42) == frozenset({"42"})


class TestNodeDistance:
    def test_identity_zero(self):
        distance = NodeDistance(Levenshtein())
        assert distance("x", "x") == 0.0

    def test_strong_measure_uses_single_pair(self):
        calls = []

        class Spy(Levenshtein):
            def distance(self, x, y):
                calls.append((x, y))
                return super().distance(x, y)

        distance = NodeDistance(Spy())
        assert distance("model", "models") == 1.0
        assert len(calls) == 1

    def test_weak_measure_takes_min_over_pairs(self):
        class TwoStrings:
            strings = frozenset({"zzzzz", "model"})

        jaro = get_measure("jaro")
        distance = NodeDistance(jaro)
        d = distance(TwoStrings(), "models")
        assert d == pytest.approx(jaro.distance("model", "models"))

    def test_within_uses_bound(self):
        distance = NodeDistance(Levenshtein())
        assert distance.within("model", "models", 1)
        assert not distance.within("model", "relational", 2)

    def test_caches_symmetrically(self):
        distance = NodeDistance(Levenshtein())
        a, b = "alpha", "alphas"
        assert distance(a, b) == distance(b, a)


class TestExample11:
    """The paper's Example 11 / Figure 13 golden case."""

    def setup_method(self):
        self.hierarchy = Hierarchy(
            [
                ("relation", "concept"),
                ("relational", "concept"),
                ("model", "concept"),
                ("models", "concept"),
            ]
        )

    def test_epsilon_two_merges_the_two_pairs(self):
        enhancement = sea(self.hierarchy, Levenshtein(), 2.0, verify=True)
        names = sorted(str(node) for node in enhancement.hierarchy.terms)
        assert names == ["concept", "{model, models}", "{relation, relational}"]

    def test_enhanced_edges_point_to_concept(self):
        enhancement = sea(self.hierarchy, Levenshtein(), 2.0)
        edges = {
            (str(lower), str(upper))
            for lower, upper in enhancement.hierarchy.edges()
        }
        assert edges == {
            ("{model, models}", "concept"),
            ("{relation, relational}", "concept"),
        }

    def test_mu_maps_merged_terms(self):
        enhancement = sea(self.hierarchy, Levenshtein(), 2.0)
        merged = enhanced_by_strings(enhancement, "model", "models")
        assert enhancement.mu["model"] == frozenset({merged})
        assert enhancement.mu["models"] == frozenset({merged})
        assert enhancement.mu_inverse(merged) == frozenset({"model", "models"})

    def test_epsilon_zero_is_isomorphic_to_input(self):
        enhancement = sea(self.hierarchy, Levenshtein(), 0.0, verify=True)
        assert len(enhancement.hierarchy) == len(self.hierarchy)
        for node in enhancement.hierarchy.terms:
            assert len(node.members) == 1


class TestSemantics:
    def test_cohabiting_is_the_similarity_test(self):
        hierarchy = Hierarchy(nodes=["model", "models", "far-away"])
        enhancement = sea(hierarchy, Levenshtein(), 1.0)
        assert enhancement.cohabiting("model", "models")
        assert not enhancement.cohabiting("model", "far-away")
        assert enhancement.cohabiting("model", "model")

    def test_similar_nodes(self):
        hierarchy = Hierarchy(nodes=["model", "models", "modelss"])
        enhancement = sea(hierarchy, Levenshtein(), 1.0)
        assert enhancement.similar_nodes("models") == frozenset(
            {"model", "modelss"}
        )

    def test_overlapping_cliques_paper_example(self):
        """The A/B/C discussion under Definition 8: overlapping nodes."""
        hierarchy = Hierarchy(nodes=["abcd", "abce", "abzz"])
        # d(abcd, abce)=1, d(abcd, abzz)=2, d(abce, abzz)=2
        enhancement = sea(hierarchy, Levenshtein(), 1.0, verify=True)
        merged = enhanced_by_strings(enhancement, "abcd", "abce")
        assert merged in enhancement.mu["abcd"]
        assert len(enhancement.mu["abzz"]) == 1

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            sea(Hierarchy(nodes=["x"]), Levenshtein(), -1.0)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            sea(Hierarchy(nodes=["x"]), Levenshtein(), 1.0, mode="bogus")


class TestInconsistency:
    def test_strict_mode_detects_definition_9_case(self):
        # "article" < "document" but its epsilon-neighbour "articles" is
        # not below "document": condition 1 is unsatisfiable.
        hierarchy = Hierarchy(
            [("article", "document")], nodes=["articles"]
        )
        with pytest.raises(SimilarityInconsistencyError):
            sea(hierarchy, Levenshtein(), 1.0)

    def test_order_safe_mode_splits_the_conflict(self):
        hierarchy = Hierarchy(
            [("article", "document")], nodes=["articles"]
        )
        enhancement = sea(
            hierarchy, Levenshtein(), 1.0, mode=ORDER_SAFE, verify=True
        )
        # article and articles stay separate (different order contexts).
        assert not enhancement.cohabiting("article", "articles")

    def test_order_safe_still_merges_interchangeable_terms(self):
        hierarchy = Hierarchy(
            [("model", "concept"), ("models", "concept")]
        )
        enhancement = sea(hierarchy, Levenshtein(), 1.0, mode=ORDER_SAFE)
        assert enhancement.cohabiting("model", "models")

    def test_consistent_case_with_comparable_similars(self):
        # database <= databases in H and they are 1 apart: the clique
        # {database, databases} requires all-pairs ordering, which holds.
        hierarchy = Hierarchy([("database", "databases")])
        enhancement = sea(hierarchy, Levenshtein(), 1.0, verify=True)
        assert enhancement.cohabiting("database", "databases")


class TestOnFusedHierarchies:
    def test_sea_over_fused_nodes_uses_their_strings(self):
        left = Hierarchy([("J. Smith", "author")])
        right = Hierarchy([("J. Smyth", "author")])
        fusion = canonical_fusion({1: left, 2: right})
        # author:1 and author:2 are NOT auto-fused without constraints;
        # build with shared-term constraint instead.
        from repro.ontology.constraints import EqualityConstraint, ScopedTerm

        fusion = canonical_fusion(
            {1: left, 2: right},
            [EqualityConstraint(ScopedTerm("author", 1), ScopedTerm("author", 2))],
        )
        enhancement = sea(fusion.hierarchy, Levenshtein(), 1.0, mode=ORDER_SAFE)
        smith = fusion.node_of("J. Smith", 1)
        smyth = fusion.node_of("J. Smyth", 2)
        assert enhancement.cohabiting(smith, smyth)
