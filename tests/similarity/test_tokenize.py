"""Unit tests for tokenisation and corpus statistics."""

import math

import pytest

from repro.similarity import tokenize


class TestWords:
    def test_lowercases_and_splits(self):
        assert tokenize.words("Jeffrey D. Ullman") == ["jeffrey", "d", "ullman"]

    def test_numbers_kept(self):
        assert tokenize.words("SQL Server 2000") == ["sql", "server", "2000"]

    def test_empty(self):
        assert tokenize.words("...") == []

    def test_word_set_drops_duplicates(self):
        assert tokenize.word_set("data data base") == frozenset({"data", "base"})


class TestQgrams:
    def test_padded_bigrams(self):
        assert tokenize.qgrams("ab", q=2) == ["#a", "ab", "b#"]

    def test_unpadded(self):
        assert tokenize.qgrams("abcd", q=3, pad=False) == ["abc", "bcd"]

    def test_short_string(self):
        assert tokenize.qgrams("a", q=3, pad=False) == ["a"]

    def test_empty_string(self):
        assert tokenize.qgrams("", q=2, pad=False) == []

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            tokenize.qgrams("abc", q=0)

    def test_unigrams(self):
        assert tokenize.qgrams("abc", q=1) == ["a", "b", "c"]


class TestCorpusStatistics:
    def test_idf_decreases_with_frequency(self):
        corpus = tokenize.CorpusStatistics(
            ["data base", "data mining", "data systems"]
        )
        assert corpus.idf("data") < corpus.idf("mining")

    def test_incremental_add(self):
        corpus = tokenize.CorpusStatistics()
        assert corpus.document_count == 0
        corpus.add("hello world")
        assert corpus.document_count == 1
        assert corpus.idf("hello") > 0

    def test_tfidf_vector_is_normalised(self):
        corpus = tokenize.CorpusStatistics(["a b c", "a b", "a"])
        vector = corpus.tfidf_vector("a b c")
        norm = math.sqrt(sum(w * w for w in vector.values()))
        assert norm == pytest.approx(1.0)

    def test_tfidf_vector_empty_text(self):
        corpus = tokenize.CorpusStatistics(["a b"])
        assert corpus.tfidf_vector("...") == {}

    def test_cosine_of_vectors(self):
        u = {"a": 1.0}
        v = {"a": 0.6, "b": 0.8}
        assert tokenize.cosine_of_vectors(u, v) == pytest.approx(0.6)

    def test_sorted_token_pair(self):
        assert tokenize.sorted_token_pair("b", "a") == ("a", "b")
        assert tokenize.sorted_token_pair("a", "b") == ("a", "b")
