"""Tests for the public measure registry surface."""

from repro.similarity.measures import available_measures, get_measure
from repro.similarity.rules import NameRuleMeasure, VenueRuleMeasure


class TestAvailableMeasures:
    def test_lists_core_and_rule_measures(self):
        names = available_measures()
        for expected in (
            "levenshtein", "damerau", "jaro", "jaro_winkler", "jaccard",
            "cosine", "qgram", "monge_elkan", "normalized_levenshtein",
            "name_rules", "venue_rules",
        ):
            assert expected in names

    def test_sorted(self):
        names = available_measures()
        assert names == sorted(names)

    def test_every_listed_name_instantiates(self):
        for name in available_measures():
            measure = get_measure(name)
            assert measure.distance("abc", "abc") == 0.0
            assert measure.name == name

    def test_rule_measures_via_registry(self):
        assert isinstance(get_measure("name_rules"), NameRuleMeasure)
        assert isinstance(get_measure("venue_rules"), VenueRuleMeasure)
