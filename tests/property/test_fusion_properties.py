"""Property-based tests: canonical fusion satisfies Definition 5's axioms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FusionInconsistencyError
from repro.ontology import Hierarchy
from repro.ontology.constraints import (
    EqualityConstraint,
    InequalityConstraint,
    ScopedTerm,
    SubsumptionConstraint,
)
from repro.ontology.fusion import canonical_fusion

terms = st.text(alphabet="xyz", min_size=1, max_size=3)


@st.composite
def hierarchy_pairs_with_constraints(draw):
    left_terms = draw(st.lists(terms, min_size=1, max_size=5, unique=True))
    right_terms = draw(st.lists(terms, min_size=1, max_size=5, unique=True))

    def random_hierarchy(term_list):
        edges = []
        for i, lower in enumerate(term_list):
            for upper in term_list[i + 1 :]:
                if draw(st.booleans()) and draw(st.booleans()):
                    edges.append((lower, upper))
        return Hierarchy(edges, nodes=term_list)

    left = random_hierarchy(left_terms)
    right = random_hierarchy(right_terms)

    constraints = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        l_term = draw(st.sampled_from(left_terms))
        r_term = draw(st.sampled_from(right_terms))
        kind = draw(st.sampled_from(["eq", "leq", "geq"]))
        left_scoped = ScopedTerm(l_term, 1)
        right_scoped = ScopedTerm(r_term, 2)
        if kind == "eq":
            constraints.append(EqualityConstraint(left_scoped, right_scoped))
        elif kind == "leq":
            constraints.append(SubsumptionConstraint(left_scoped, right_scoped))
        else:
            constraints.append(SubsumptionConstraint(right_scoped, left_scoped))
    return left, right, constraints


@given(data=hierarchy_pairs_with_constraints())
@settings(max_examples=80, deadline=None)
def test_fusion_preserves_input_orders(data):
    """Definition 5 axiom (1): psi_i(x) <= psi_i(y) whenever x <=_i y."""
    left, right, constraints = data
    fusion = canonical_fusion({1: left, 2: right}, constraints)
    for source, hierarchy in ((1, left), (2, right)):
        psi = fusion.psi(source)
        for lower in hierarchy.terms:
            for upper in hierarchy.terms:
                if hierarchy.leq(lower, upper):
                    assert fusion.hierarchy.leq(psi[lower], psi[upper])


@given(data=hierarchy_pairs_with_constraints())
@settings(max_examples=80, deadline=None)
def test_fusion_preserves_constraints(data):
    """Definition 5 axiom (2): constraints hold in the fused order."""
    left, right, constraints = data
    fusion = canonical_fusion({1: left, 2: right}, constraints)
    for constraint in constraints:
        source = fusion.witness[constraint.left]
        target = fusion.witness[constraint.right]
        assert fusion.hierarchy.leq(source, target)
        if isinstance(constraint, EqualityConstraint):
            assert source == target


@given(data=hierarchy_pairs_with_constraints())
@settings(max_examples=60, deadline=None)
def test_witness_total_and_nodes_partition(data):
    """Every scoped term maps to exactly one fused node; the fused nodes'
    member sets partition the scoped-term universe."""
    left, right, constraints = data
    fusion = canonical_fusion({1: left, 2: right}, constraints)
    scoped_universe = {ScopedTerm(t, 1) for t in left.terms} | {
        ScopedTerm(t, 2) for t in right.terms
    }
    assert set(fusion.witness) == scoped_universe
    seen = set()
    for node in fusion.hierarchy.terms:
        assert not (node.members & seen)
        seen |= node.members
    assert seen == scoped_universe


@given(data=hierarchy_pairs_with_constraints())
@settings(max_examples=40, deadline=None)
def test_inequality_post_check(data):
    """Adding x != y either raises (when x, y got fused) or keeps them apart."""
    left, right, constraints = data
    l_term = next(iter(left.terms))
    r_term = next(iter(right.terms))
    inequality = InequalityConstraint(ScopedTerm(l_term, 1), ScopedTerm(r_term, 2))
    try:
        fusion = canonical_fusion({1: left, 2: right}, constraints + [inequality])
    except FusionInconsistencyError:
        base = canonical_fusion({1: left, 2: right}, constraints)
        assert base.witness[inequality.left] == base.witness[inequality.right]
    else:
        assert fusion.witness[inequality.left] != fusion.witness[inequality.right]
