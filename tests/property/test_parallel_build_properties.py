"""Property: the parallel SEO build is bit-identical to the serial one.

The pool decomposes each order-context bucket into probe blocks whose
union is provably the full epsilon-similarity edge set; these tests let
hypothesis hunt for hierarchies and epsilon values where the
decomposition, the candidate filter, or the deterministic merge would
disagree with the plain serial loop.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ontology.hierarchy import Hierarchy
from repro.parallel import BuildOptions
from repro.similarity.measures import get_measure
from repro.similarity.persistence import dump_seo
from repro.similarity.sea import ORDER_SAFE, sea
from repro.similarity.seo import SimilarityEnhancedOntology

words = st.text(alphabet="abcd", min_size=1, max_size=5)

#: Pool-forcing options: 2 workers, no minimum-work threshold.
PARALLEL = BuildOptions(workers=2, parallel_threshold=0)


@st.composite
def random_hierarchies(draw):
    terms = draw(st.lists(words, min_size=2, max_size=8, unique=True))
    edges = []
    for i in range(len(terms)):
        for j in range(i + 1, len(terms)):
            if draw(st.booleans()) and draw(st.booleans()):
                edges.append((terms[i], terms[j]))
    return Hierarchy(edges, nodes=terms)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(hierarchy=random_hierarchies(), epsilon=st.sampled_from([0.0, 1.0, 2.0]))
def test_parallel_sea_equals_serial(hierarchy, epsilon):
    measure = get_measure("levenshtein")
    serial = sea(hierarchy, measure, epsilon, mode=ORDER_SAFE, verify=True)
    parallel = sea(
        hierarchy, measure, epsilon, mode=ORDER_SAFE, verify=True,
        options=PARALLEL,
    )
    assert parallel.hierarchy == serial.hierarchy
    assert parallel.mu == serial.mu


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    first=random_hierarchies(),
    second=random_hierarchies(),
    epsilon=st.sampled_from([1.0, 2.0]),
)
def test_parallel_seo_dump_is_bit_identical(first, second, epsilon):
    measure = get_measure("levenshtein")
    hierarchies = {"x": first, "y": second}
    serial = SimilarityEnhancedOntology.build(
        hierarchies, measure, epsilon, mode=ORDER_SAFE
    )
    parallel = SimilarityEnhancedOntology.build(
        hierarchies, measure, epsilon, mode=ORDER_SAFE, options=PARALLEL
    )
    assert dump_seo(parallel) == dump_seo(serial)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(hierarchy=random_hierarchies(), epsilon=st.sampled_from([0.0, 1.0, 2.0]))
def test_filtered_sea_equals_unfiltered(hierarchy, epsilon):
    """The q-gram candidate filter never changes the enhancement."""
    measure = get_measure("levenshtein")
    filtered = sea(hierarchy, measure, epsilon, mode=ORDER_SAFE, verify=True)
    unfiltered = sea(
        hierarchy, measure, epsilon, mode=ORDER_SAFE, verify=True,
        options=BuildOptions(candidate_filter=False),
    )
    assert filtered.hierarchy == unfiltered.hierarchy
    assert filtered.mu == unfiltered.mu
