"""Property-based tests: TAX algebra invariants on random documents."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tax.algebra import difference, intersection, selection, union
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.embedding import find_embeddings
from repro.tax.pattern import AD, PC, pattern_of
from repro.tax.tree import dedupe
from repro.xmldb.model import XmlNode

tags = st.sampled_from(["a", "b", "c", "d"])
texts = st.sampled_from(["", "x", "y", "zz"])


@st.composite
def random_trees(draw, max_depth=3):
    def make(depth):
        node = XmlNode(draw(tags), draw(texts))
        if depth < max_depth:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                node.append(make(depth + 1))
        return node

    return make(0).renumber()


@st.composite
def random_patterns(draw):
    """Two-node patterns with random edge kind and tag constraints."""
    edge = draw(st.sampled_from([PC, AD]))
    pattern = pattern_of([(1, None, PC), (2, 1, edge)])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant(draw(tags))),
        Comparison("=", NodeTag(2), Constant(draw(tags))),
    )
    return pattern


@given(tree=random_trees(), pattern=random_patterns())
@settings(max_examples=80, deadline=None)
def test_embeddings_preserve_structure_and_condition(tree, pattern):
    for embedding in find_embeddings(pattern, tree):
        root_image = embedding.image(1)
        child_image = embedding.image(2)
        if pattern.node(2).edge == PC:
            assert child_image.parent is root_image
        else:
            assert root_image in list(child_image.ancestors())
        assert pattern.condition.evaluate(embedding.binding)


@given(tree=random_trees(), pattern=random_patterns())
@settings(max_examples=60, deadline=None)
def test_selection_results_satisfy_pattern(tree, pattern):
    """Every witness tree itself embeds the pattern (soundness)."""
    for witness in selection([tree], pattern):
        assert any(True for _ in find_embeddings(pattern, witness))


@given(tree=random_trees(), pattern=random_patterns())
@settings(max_examples=60, deadline=None)
def test_selection_is_idempotent_on_its_output(tree, pattern):
    """Selecting from the witnesses returns the same witnesses."""
    first = selection([tree], pattern, sl_labels=[1, 2])
    second = selection(first, pattern, sl_labels=[1, 2])
    keys_first = {t.canonical_key() for t in first}
    keys_second = {t.canonical_key() for t in second}
    assert keys_first == keys_second


@given(left=st.lists(random_trees(), max_size=4), right=st.lists(random_trees(), max_size=4))
@settings(max_examples=60, deadline=None)
def test_set_operator_laws(left, right):
    left = dedupe(left)
    right = dedupe(right)

    def keys(collection):
        return {tree.canonical_key() for tree in collection}

    union_keys = keys(union(left, right))
    inter_keys = keys(intersection(left, right))
    diff_keys = keys(difference(left, right))

    assert union_keys == keys(left) | keys(right)
    assert inter_keys == keys(left) & keys(right)
    assert diff_keys == keys(left) - keys(right)
    # Partition law: difference and intersection split the left side.
    assert diff_keys | inter_keys == keys(left)
    assert not (diff_keys & inter_keys)


@given(tree=random_trees())
@settings(max_examples=60, deadline=None)
def test_structural_equality_is_equivalence(tree):
    copy = tree.copy().renumber()
    assert tree.structurally_equal(tree)
    assert tree.structurally_equal(copy)
    assert copy.structurally_equal(tree)
    assert (tree.canonical_key() == copy.canonical_key()) == tree.structurally_equal(copy)
