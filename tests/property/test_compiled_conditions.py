"""Property: compiled condition evaluators equal the interpreter, exactly.

:mod:`repro.tax.compile` turns a condition tree into closures once per
cached plan; its whole contract is invisibility.  For any condition tree
— comparisons, Contains, And/Or/Not nesting, or-chains eligible for the
membership fast path, and the TOSS semantic atoms (``~``, ``below``,
``instance_of``, ``part_of``) — the compiled form must return the same
truth value, raise the same :class:`~repro.errors.ConditionError` (same
message) for unbound labels or missing relations, and drive the same
number of ontology accesses through the context.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import (
    Below,
    InstanceOf,
    PartOf,
    SeoConditionContext,
    SimilarTo,
    SubtypeOf,
)
from repro.errors import ConditionError
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.compile import compile_condition
from repro.tax.conditions import (
    And,
    Comparison,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Not,
    Or,
    TrueCondition,
)
from repro.xmldb.model import build

# Near-miss values (edit distance 1-2) so similarity atoms flip between
# true and false across the sampled epsilons.
TITLES = ["alpha", "alphq", "aleph", "beta", "betta", "gamma", ""]
VENUES = ["SIGMOD", "SIGM0D", "VLDB", "KDD"]

HIERARCHY = Hierarchy(
    [
        ("SIGMOD", "database conference"),
        ("VLDB", "database conference"),
        ("KDD", "data mining conference"),
        ("alpha", "greek letter"),
        ("beta", "greek letter"),
    ]
)

_SEO = {}


def _seo(epsilon):
    if epsilon not in _SEO:
        _SEO[epsilon] = SimilarityEnhancedOntology.for_hierarchy(
            HIERARCHY, Levenshtein(), epsilon
        )
    return _SEO[epsilon]


def _binding(title, venue):
    book = build("book", build("title", title), build("venue", venue))
    return {1: book, 2: book.children[0], 3: book.children[1]}


#: Bound labels plus one never-bound label (9) so resolution errors are
#: generated and must match across both paths.
LABELS = [1, 2, 3, 9]

values = st.sampled_from(
    TITLES + VENUES + ["database conference", "greek letter", "book"]
)
terms = st.one_of(
    values.map(Constant),
    st.sampled_from(LABELS).map(NodeTag),
    st.sampled_from(LABELS).map(NodeContent),
)

comparisons = st.builds(
    Comparison, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]), terms, terms
)
semantic_atoms = st.builds(
    lambda cls, left, right: cls(left, right),
    st.sampled_from([SimilarTo, Below, InstanceOf, SubtypeOf, PartOf]),
    terms,
    terms,
)
#: The rewrite-emitted shape the membership fast path targets:
#: Or(x = c1, x = c2, ...) over one shared term.
or_chains = st.builds(
    lambda term, consts: Or(
        *[Comparison("=", term, Constant(value)) for value in consts]
    ),
    st.one_of(st.sampled_from(LABELS).map(NodeContent), st.sampled_from(LABELS).map(NodeTag)),
    st.lists(values, min_size=2, max_size=4),
)
atoms = st.one_of(
    comparisons,
    semantic_atoms,
    or_chains,
    st.builds(Contains, terms, terms),
    st.just(TrueCondition()),
)

conditions = st.recursive(
    atoms,
    lambda inner: st.one_of(
        st.lists(inner, min_size=2, max_size=3).map(lambda ops: And(*ops)),
        st.lists(inner, min_size=2, max_size=3).map(lambda ops: Or(*ops)),
        inner.map(Not),
    ),
    max_leaves=8,
)


def _evaluate(condition, binding, context):
    """(verdict, ontology-access delta) or ("raised", class, message)."""
    before = getattr(context, "ontology_accesses", 0)
    try:
        verdict = condition.evaluate(binding, context)
    except ConditionError as exc:
        return ("raised", type(exc).__name__, str(exc))
    return (verdict, getattr(context, "ontology_accesses", 0) - before)


def _evaluate_compiled(condition, binding, context):
    before = getattr(context, "ontology_accesses", 0)
    try:
        verdict = compile_condition(condition, context)(binding)
    except ConditionError as exc:
        return ("raised", type(exc).__name__, str(exc))
    return (verdict, getattr(context, "ontology_accesses", 0) - before)


@given(
    condition=conditions,
    title=st.sampled_from(TITLES),
    venue=st.sampled_from(VENUES),
    epsilon=st.sampled_from([1.0, 2.0]),
)
@settings(max_examples=300, deadline=None)
def test_compiled_equals_interpreted(condition, title, venue, epsilon):
    binding = _binding(title, venue)
    # Separate contexts per path so the ontology-access counters are
    # independently attributable; they share one prebuilt SEO.
    interpreted_ctx = SeoConditionContext(_seo(epsilon))
    compiled_ctx = SeoConditionContext(_seo(epsilon))
    interpreted = _evaluate(condition, binding, interpreted_ctx)
    compiled = _evaluate_compiled(condition, binding, compiled_ctx)
    assert compiled == interpreted, (
        f"compiled {compiled!r} != interpreted {interpreted!r} "
        f"for {condition!r}"
    )


@given(
    condition=conditions,
    title=st.sampled_from(TITLES),
    venue=st.sampled_from(VENUES),
)
@settings(max_examples=150, deadline=None)
def test_compiled_equals_interpreted_without_seo(condition, title, venue):
    # No SEO context at all: semantic atoms raise through the default
    # context hooks; compiled closures must surface the identical error.
    from repro.tax.conditions import DEFAULT_CONTEXT, ConditionContext

    binding = _binding(title, venue)
    interpreted = _evaluate(condition, binding, DEFAULT_CONTEXT)
    compiled = _evaluate_compiled(condition, binding, ConditionContext())
    assert compiled[:1] == interpreted[:1] and compiled == interpreted


def test_unbound_label_message_is_identical():
    condition = Comparison("=", NodeContent(9), Constant("x"))
    context = SeoConditionContext(_seo(2.0))
    binding = _binding("alpha", "SIGMOD")
    interpreted = _evaluate(condition, binding, context)
    compiled = _evaluate_compiled(condition, binding, context)
    assert interpreted[0] == "raised"
    assert compiled == interpreted
    assert "no binding for pattern node 9" in interpreted[2]


def test_missing_relation_seo_message_is_identical():
    condition = PartOf(NodeContent(2), Constant("engine"))
    context = SeoConditionContext(_seo(2.0))  # no part-of SEO attached
    binding = _binding("alpha", "SIGMOD")
    interpreted = _evaluate(condition, binding, context)
    compiled = _evaluate_compiled(condition, binding, context)
    assert interpreted[0] == "raised"
    assert compiled == interpreted


def test_membership_or_counts_no_ontology_accesses():
    # The or-chain fast path must not change observable context traffic:
    # plain equality chains never touched the ontology when interpreted.
    chain = Or(
        Comparison("=", NodeContent(2), Constant("alpha")),
        Comparison("=", NodeContent(2), Constant("beta")),
    )
    context = SeoConditionContext(_seo(2.0))
    binding = _binding("alpha", "SIGMOD")
    assert _evaluate_compiled(chain, binding, context) == (True, 0)
