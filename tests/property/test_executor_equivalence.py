"""Property: the Query Executor and the direct algebra agree exactly.

The executor's XPath prefilter + verification pipeline must be a pure
optimisation: for any query, its answers equal those of evaluating the
same pattern directly with the in-memory TOSS algebra over the whole
collection.  We fuzz over corpus seeds, query targets and epsilons.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_query
from repro.data import generate_corpus, render_dblp
from repro.experiments.workload import build_system

# Building a system is costly; share a few across examples.
_SYSTEMS = {}


def _system(seed: int, epsilon: float):
    key = (seed, epsilon)
    if key not in _SYSTEMS:
        corpus = generate_corpus(40, seed=seed)
        dblp = render_dblp(corpus, seed=seed)
        _SYSTEMS[key] = (corpus, build_system(corpus, [dblp], epsilon))
    return _SYSTEMS[key]


def _keys(trees):
    found = set()
    for tree in trees:
        key = tree.attributes.get("key")
        if key:
            found.add(key)
    return found


@given(
    seed=st.sampled_from([1, 2]),
    epsilon=st.sampled_from([1.0, 3.0]),
    author_index=st.integers(min_value=0, max_value=9),
    category=st.sampled_from(
        ["conference", "database conference", "data mining conference"]
    ),
)
@settings(max_examples=40, deadline=None)
def test_executor_equals_algebra_on_selections(
    seed, epsilon, author_index, category
):
    corpus, system = _system(seed, epsilon)
    authors = sorted(corpus.authors.values(), key=lambda a: a.entity_id)
    author = authors[author_index % len(authors)]
    query = (
        f'inproceedings(author ~ "{author.canonical}", '
        f'booktitle below "{category}")'
    )
    parsed = parse_query(query)

    via_executor = system.select("dblp", parsed.pattern, parsed.roots).results
    via_algebra = system.algebra().selection(
        system.instances["dblp"], parsed.pattern, parsed.roots
    )
    assert _keys(via_executor) == _keys(via_algebra)


@given(
    seed=st.sampled_from([1, 2]),
    year=st.integers(min_value=1994, max_value=2003),
)
@settings(max_examples=20, deadline=None)
def test_executor_equals_algebra_on_year_queries(seed, year):
    corpus, system = _system(seed, 1.0)
    parsed = parse_query(f'inproceedings(year = "{year}", title)')
    via_executor = system.select("dblp", parsed.pattern, parsed.roots).results
    via_algebra = system.algebra().selection(
        system.instances["dblp"], parsed.pattern, parsed.roots
    )
    assert _keys(via_executor) == _keys(via_algebra)
    oracle = corpus.relevant_papers(year=year)
    assert _keys(via_executor) == set(oracle)
