"""Property tests: rolling-window snapshot merges form a commutative
monoid keyed by absolute epoch.

The serving layer folds window snapshots from arbitrary numbers of
workers and partitions, in whatever order outcomes arrive.  The stats a
parent serves must therefore not depend on arrival order or grouping —
i.e. :func:`repro.obs.window.merge_window_snapshots` must be
associative and commutative, with the empty snapshot as identity, and
absorbing snapshots one at a time must agree with absorbing their
merge.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.obs.window import WindowRegistry, merge_window_snapshots

NOW = 1_700_000_000

#: Observations stay inside the default 60s horizon so nothing is
#: dropped by design during the round-trip comparisons.  Latencies are
#: dyadic rationals (k/1024 s) so their float sums are exact: the merge
#: is associative over the *slot algebra*, and keeping the arithmetic
#: exact stops last-ulp float noise from masquerading as a merge-order
#: dependence.
observations = st.lists(
    st.tuples(
        st.sampled_from(["selection", "join", "projection"]),
        st.integers(min_value=1, max_value=10240).map(lambda k: k / 1024.0),
        st.booleans(),
        st.integers(min_value=NOW - 50, max_value=NOW),
    ),
    max_size=30,
)


def snapshot_of(rows):
    registry = WindowRegistry()
    for query_class, seconds, error, epoch in rows:
        registry.observe(query_class, seconds, error=error, now=epoch)
    return registry.snapshot(now=NOW)


EMPTY = snapshot_of([])


@settings(max_examples=60, deadline=None)
@given(observations, observations)
def test_merge_is_commutative(left_rows, right_rows):
    left, right = snapshot_of(left_rows), snapshot_of(right_rows)
    assert merge_window_snapshots(left, right) == merge_window_snapshots(
        right, left
    )


@settings(max_examples=60, deadline=None)
@given(observations, observations, observations)
def test_merge_is_associative(rows_a, rows_b, rows_c):
    a, b, c = snapshot_of(rows_a), snapshot_of(rows_b), snapshot_of(rows_c)
    left_first = merge_window_snapshots(merge_window_snapshots(a, b), c)
    right_first = merge_window_snapshots(a, merge_window_snapshots(b, c))
    assert left_first == right_first


@settings(max_examples=60, deadline=None)
@given(observations)
def test_empty_snapshot_is_identity(rows):
    snapshot = snapshot_of(rows)
    merged = merge_window_snapshots(snapshot, EMPTY)
    assert merged["classes"] == snapshot["classes"]
    merged = merge_window_snapshots(EMPTY, snapshot)
    assert merged["classes"] == snapshot["classes"]


@settings(max_examples=60, deadline=None)
@given(st.lists(observations, min_size=1, max_size=5), st.randoms())
def test_absorb_order_never_changes_served_stats(snapshots_rows, rng):
    """Absorbing worker snapshots in any arrival order yields the same
    1s/10s/60s statistics the clients see."""
    snapshots = [snapshot_of(rows) for rows in snapshots_rows]

    in_order = WindowRegistry()
    for snapshot in snapshots:
        in_order.absorb(snapshot, now=NOW)

    shuffled = list(snapshots)
    rng.shuffle(shuffled)
    out_of_order = WindowRegistry()
    for snapshot in shuffled:
        out_of_order.absorb(snapshot, now=NOW)

    assert in_order.multi_stats(now=NOW) == out_of_order.multi_stats(now=NOW)


@settings(max_examples=60, deadline=None)
@given(observations, observations)
def test_absorbing_merge_equals_absorbing_parts(left_rows, right_rows):
    left, right = snapshot_of(left_rows), snapshot_of(right_rows)

    via_merge = WindowRegistry()
    via_merge.absorb(merge_window_snapshots(left, right), now=NOW)

    piecewise = WindowRegistry()
    piecewise.absorb(left, now=NOW)
    piecewise.absorb(right, now=NOW)

    assert via_merge.multi_stats(now=NOW) == piecewise.multi_stats(now=NOW)
