"""Property: the serving layer is invisible in the results.

Batch execution over the worker pool and intra-query partitioned
execution must both be bit-identical to serial in-process execution —
same result trees, same order, same degraded flag, and the same error
type when a budget trips.  We fuzz over query shapes, worker counts and
partition widths against one shared system and pool.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, ResourceExhaustedError
from repro.guard import ResourceGuard
from repro.core.system import TossSystem
from repro.serving import (
    GuardSpec,
    QueryRequest,
    QueryServer,
    execute_partitioned,
)
from repro.xmldb.serializer import serialize

AUTHORS = ["Ann Smith", "Bob Stone", "Cara Swan"]
TITLE_WORDS = ["Indexing", "Querying", "Mining", "Caching"]

# Pools fork real processes, so everything shares one system and one
# pool per worker count (mirroring production: load once, serve many).
_STATE = {}


def _system():
    if "system" not in _STATE:
        documents = [
            f"<paper key='p{index}'>"
            f"<title>{TITLE_WORDS[index % len(TITLE_WORDS)]} {index}</title>"
            f"<author>{AUTHORS[index % len(AUTHORS)]}</author>"
            f"<year>{1990 + index % 7}</year>"
            f"</paper>"
            for index in range(18)
        ]
        system = TossSystem(epsilon=2.0)
        system.add_instance("papers", documents)
        system.build()
        _STATE["system"] = system
    return _STATE["system"]


def _server(workers):
    key = ("server", workers)
    if key not in _STATE:
        _STATE[key] = QueryServer(
            _system(), workers=workers, default_collection="papers"
        )
    return _STATE[key]


@pytest.fixture(scope="module", autouse=True)
def _teardown_servers():
    yield
    for key, value in list(_STATE.items()):
        if isinstance(key, tuple) and key[0] == "server":
            value.close()
            del _STATE[key]


def result_texts(report):
    return [serialize(tree) for tree in report.results]


queries = st.one_of(
    st.sampled_from(AUTHORS).map(lambda a: f'paper(author ~ "{a}")'),
    st.sampled_from(TITLE_WORDS).map(lambda w: f'paper(title contains "{w}")'),
    st.integers(min_value=1990, max_value=1996).map(
        lambda y: f'paper(year = "{y}")'
    ),
)


@given(query=queries, workers=st.sampled_from([1, 2]))
@settings(max_examples=12, deadline=None)
def test_batch_execution_equals_serial(query, workers):
    system = _system()
    serial = system.query("papers", query)
    outcome = _server(workers).execute_many([query])[0]
    assert outcome.ok, outcome.error
    assert result_texts(outcome.report) == result_texts(serial)
    assert outcome.report.degraded == serial.degraded


@given(query=queries, jobs=st.sampled_from([2, 3, 4]))
@settings(max_examples=12, deadline=None)
def test_partitioned_execution_equals_serial(query, jobs):
    system = _system()
    serial = system.query("papers", query)
    merged = execute_partitioned(
        system, _server(2).pool, "papers", query, jobs=jobs
    )
    assert result_texts(merged) == result_texts(serial)


@given(query=queries)
@settings(max_examples=6, deadline=None)
def test_batch_order_is_submission_order(query):
    other = 'paper(author ~ "Ann Smith")'
    outcomes = _server(2).execute_many([query, other, query])
    assert [outcome.request.query for outcome in outcomes] == [
        query, other, query,
    ]
    assert result_texts(outcomes[0].report) == result_texts(
        outcomes[2].report
    )


@given(budget=st.sampled_from([1, 2, 5]))
@settings(max_examples=6, deadline=None)
def test_step_budget_trips_the_same_error_type(budget):
    system = _system()
    query = 'paper(author ~ "Ann Smith")'
    serial_error = None
    try:
        executor, _ = system._query_executor()
        previous = executor.guard
        executor.guard = ResourceGuard(max_steps=budget)
        try:
            system.query("papers", query)
        finally:
            executor.guard = previous
    except ReproError as exc:
        serial_error = type(exc)
    assert serial_error is ResourceExhaustedError

    with pytest.raises(ResourceExhaustedError):
        execute_partitioned(
            system,
            _server(2).pool,
            "papers",
            query,
            jobs=2,
            guard=ResourceGuard(max_steps=budget),
        )

    outcome = _server(2).execute_many(
        [
            QueryRequest(
                query=query,
                collection="papers",
                guard=GuardSpec(max_steps=budget),
            )
        ]
    )[0]
    assert isinstance(outcome.error, ResourceExhaustedError)
