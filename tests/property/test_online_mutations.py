"""Property-based tests: incremental maintenance equals building from scratch.

The tentpole invariant of online mutations: after ANY prefix of a random
add/replace/remove sequence, a system maintained incrementally (pending
deltas consumed by :meth:`TossSystem.build`) is indistinguishable from a
system built from scratch over the same final documents in the same scan
order — same serialized SEO (graph edges and cliques included), same
query verdicts, and a monotonically advancing generation.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_query
from repro.core.system import TossSystem
from repro.ontology import Ontology
from repro.similarity.persistence import seo_to_dict
from repro.xmldb.serializer import serialize

AUTHORS = ["J. Smith", "J. Smyth", "A. Stone", "A. Stane", "B. Swan"]
TITLES = ["Indexing", "Querying", "Fusion"]

QUERY = 'inproceedings(author ~ "J. Smith")'


def make_doc(author: str, title: str, serial: int) -> str:
    return (
        f'<dblp><inproceedings key="x{serial}">'
        f"<author>{author}</author><title>{title}</title>"
        f"</inproceedings></dblp>"
    )


documents = st.builds(
    make_doc,
    author=st.sampled_from(AUTHORS),
    title=st.sampled_from(TITLES),
    serial=st.integers(min_value=0, max_value=9),
)

#: One mutation: ("add", text) | ("replace", position_seed, text)
#: | ("remove", position_seed).  Position seeds index into the live key
#: list modulo its length at application time.
operations = st.one_of(
    st.tuples(st.just("add"), documents),
    st.tuples(st.just("replace"), st.integers(min_value=0, max_value=99), documents),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=99)),
)


def seo_bytes(system, relation):
    return json.dumps(seo_to_dict(system.context.seos[relation]), sort_keys=True)


def verdicts(system):
    parsed = parse_query(QUERY)
    report = system.select("dblp", parsed.pattern, parsed.roots)
    return sorted(serialize(tree) for tree in report.results)


@given(
    initial=st.lists(documents, min_size=1, max_size=3),
    ops=st.lists(operations, min_size=1, max_size=5),
)
@settings(max_examples=25, deadline=None)
def test_incremental_equals_from_scratch_after_every_prefix(initial, ops):
    live = TossSystem(epsilon=1.0)
    live.add_instance("dblp", initial)
    live.build()

    # Shadow of the collection's scan order: (key, text) pairs mirroring
    # add-appends, replace-moves-to-end and remove semantics.
    shadow = list(zip(sorted(live.database.get_collection("dblp").keys()), initial))
    shadow = [
        (key, text)
        for key, _ in live.database.get_collection("dblp").documents()
        for skey, text in shadow
        if skey == key
    ]
    generation = live.database.get_collection("dblp").generation

    for op in ops:
        kind = op[0]
        if kind == "add":
            receipt = live.add_documents("dblp", op[1])
            (new_key,) = receipt.documents_added
            shadow.append((new_key, op[1]))
        elif kind == "replace":
            key = shadow[op[1] % len(shadow)][0]
            receipt = live.replace_documents("dblp", {key: op[2]})
            shadow = [pair for pair in shadow if pair[0] != key]
            shadow.append((key, op[2]))
            assert receipt.documents_removed == (key,)
        else:
            if len(shadow) == 1:
                continue  # keep the instance non-empty
            key = shadow[op[1] % len(shadow)][0]
            receipt = live.remove_documents("dblp", (key,))
            shadow = [pair for pair in shadow if pair[0] != key]
            assert receipt.documents_removed == (key,)

        # Generations only move forward, and by what the receipt claims.
        after = live.database.get_collection("dblp").generation
        assert receipt.generation_after == after
        assert receipt.generations_advanced >= 1
        assert after > generation
        generation = after

        live.build()

        fresh = TossSystem(epsilon=1.0)
        fresh.add_instance("dblp", [text for _key, text in shadow])
        fresh.build()

        # Same scan order...
        assert [
            serialize(root)
            for _key, root in live.database.get_collection("dblp").documents()
        ] == [
            serialize(root)
            for _key, root in fresh.database.get_collection("dblp").documents()
        ]
        # ...same serialized SEO for every relation (edges AND cliques)...
        for relation in (Ontology.ISA, Ontology.PART_OF):
            assert seo_bytes(live, relation) == seo_bytes(fresh, relation)
        # ...and same query verdicts.
        assert verdicts(live) == verdicts(fresh)


@given(ops=st.lists(operations, min_size=1, max_size=4))
@settings(max_examples=15, deadline=None)
def test_chain_depth_tracks_delta_builds(ops):
    """Chain depth only grows on delta builds and resets on full builds;
    shrinking mutations (replace/remove) always reset it."""
    live = TossSystem(epsilon=1.0)
    live.add_instance("dblp", [make_doc(AUTHORS[0], TITLES[0], 0)])
    live.build()
    depth = live.seo_chain_depths[Ontology.ISA]
    assert depth == 0
    for op in ops:
        if op[0] == "add":
            receipt = live.add_documents("dblp", op[1])
            assert receipt.incremental
        elif op[0] == "replace":
            keys = [k for k, _ in live.database.get_collection("dblp").documents()]
            receipt = live.replace_documents(
                "dblp", {keys[op[1] % len(keys)]: op[2]}
            )
            assert not receipt.incremental
        else:
            continue
        live.build()
        new_depth = live.seo_chain_depths[Ontology.ISA]
        if receipt.incremental:
            assert new_depth in (depth, depth + 1)  # no-op reuse keeps depth
        else:
            assert new_depth == 0
        depth = new_depth
