"""Property-based tests: Definition 7's axioms on every measure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity.measures import (
    DamerauLevenshtein,
    Jaccard,
    Levenshtein,
    QGram,
    get_measure,
)

short_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=122), max_size=16
)

ALL_MEASURES = [
    "levenshtein", "normalized_levenshtein", "damerau", "jaro",
    "jaro_winkler", "jaccard", "cosine", "qgram", "monge_elkan",
]

STRONG_MEASURES = [Levenshtein(), DamerauLevenshtein(), Jaccard(), QGram(2)]


@pytest.mark.parametrize("name", ALL_MEASURES)
@given(x=short_text, y=short_text)
@settings(max_examples=40, deadline=None)
def test_nonnegative_symmetric_identity(name, x, y):
    measure = get_measure(name)
    assert measure.distance(x, y) >= 0.0
    assert measure.distance(x, x) == 0.0
    assert measure.distance(x, y) == pytest.approx(measure.distance(y, x))


@pytest.mark.parametrize("measure", STRONG_MEASURES, ids=lambda m: type(m).__name__)
@given(x=short_text, y=short_text, z=short_text)
@settings(max_examples=60, deadline=None)
def test_strong_measures_satisfy_triangle_inequality(measure, x, y, z):
    assert (
        measure.distance(x, y) + measure.distance(y, z)
        >= measure.distance(x, z) - 1e-9
    )


@given(x=short_text, y=short_text, bound=st.floats(min_value=0, max_value=8))
@settings(max_examples=100, deadline=None)
def test_bounded_levenshtein_agrees_with_exact(x, y, bound):
    measure = Levenshtein()
    exact = measure.distance(x, y)
    bounded = measure.bounded_distance(x, y, bound)
    if exact <= bound:
        assert bounded == exact
    else:
        assert bounded > bound


@given(x=short_text, y=short_text)
@settings(max_examples=60, deadline=None)
def test_levenshtein_bounded_by_length_sum_and_below_by_diff(x, y):
    measure = Levenshtein()
    d = measure.distance(x, y)
    assert d <= max(len(x), len(y))
    assert d >= abs(len(x) - len(y))


@given(x=short_text, y=short_text)
@settings(max_examples=60, deadline=None)
def test_damerau_never_exceeds_levenshtein(x, y):
    assert DamerauLevenshtein().distance(x, y) <= Levenshtein().distance(x, y)


@given(x=short_text, y=short_text)
@settings(max_examples=60, deadline=None)
def test_qgram_count_bound_is_sound_for_levenshtein(x, y):
    """The candidate filter's invariant (Ukkonen): the L1 distance between
    bigram profiles — the symmetric difference of occurrence-tagged bigram
    sets — is at most 2q * lev = 4 * lev."""
    from repro.similarity.candidates import bigram_occurrences

    lev = Levenshtein().distance(x, y)
    symdiff = len(set(bigram_occurrences(x)) ^ set(bigram_occurrences(y)))
    assert symdiff <= 4.0 * lev + 4.0  # +4 slack for the <2-char fallback

    # The exact form used by the count filter (only applied when len >= 2).
    if len(x) >= 2 and len(y) >= 2:
        assert symdiff <= 4.0 * lev
