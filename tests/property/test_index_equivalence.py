"""Property: index-pruned execution equals the full scan, exactly.

The planner's whole contract is that pruning is invisible: for any
store, any condition shape it probes (equality, or-chains, ``~``, isa)
and any SEO context (present, absent with exact fallback, absent with
plain equality), the indexed path returns the same result sequence —
same trees, same order — as ``use_index=False``.  We fuzz synthetic
multi-document stores whose values are deliberate near-misses of each
other so every pruning rule (exact probes, SEO expansion, edit-distance
augmentation, cross-side pre-joins) is actually exercised.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import Below, SeoConditionContext, SimilarTo
from repro.core.executor import QueryExecutor
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag, Or
from repro.tax.pattern import AD, PC, pattern_of
from repro.xmldb.database import Database

# Titles are near-misses of each other (edit distance 1-2) so similarity
# probes must use distance augmentation, not just exact lookup.
TITLES = ["alpha", "alphq", "aleph", "beta", "betta", "gamma", "gamm", ""]
VENUES = ["SIGMOD", "SIGM0D", "VLDB", "KDD", "ICDE"]

HIERARCHY = Hierarchy(
    [
        ("SIGMOD", "database conference"),
        ("VLDB", "database conference"),
        ("KDD", "data mining conference"),
        ("alpha", "greek letter"),
        ("beta", "greek letter"),
    ]
)

_SEO = {}


def _context(epsilon):
    if epsilon not in _SEO:
        _SEO[epsilon] = SeoConditionContext(
            SimilarityEnhancedOntology.for_hierarchy(
                HIERARCHY, Levenshtein(), epsilon
            )
        )
    return _SEO[epsilon]


def _render(books):
    parts = ["<lib>"]
    for title, venue in books:
        parts.append(
            f"<book><title>{title}</title><venue>{venue}</venue></book>"
        )
    parts.append("</lib>")
    return "".join(parts)


def _database(name, docs):
    db = Database()
    col = db.create_collection(name)
    for i, books in enumerate(docs):
        col.add_document(f"d{i}", _render(books))
    return db


book = st.tuples(st.sampled_from(TITLES), st.sampled_from(VENUES))
doc = st.lists(book, min_size=1, max_size=3)
docs = st.lists(doc, min_size=1, max_size=5)


def _selection_pattern(atom):
    pattern = pattern_of([(1, None, PC), (2, 1, PC), (3, 1, PC)])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("book")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("venue")),
        atom,
    )
    return pattern


def _atom(kind, title, venue):
    if kind == "equal":
        return Comparison("=", NodeContent(2), Constant(title))
    if kind == "or":
        return Or(
            Comparison("=", NodeContent(2), Constant(title)),
            Comparison("=", NodeContent(2), Constant(title[:-1] or "beta")),
        )
    if kind == "similar":
        return SimilarTo(NodeContent(2), Constant(title))
    return Below(NodeContent(3), Constant(venue))


def _keys(report):
    return [tree.canonical_key() for tree in report.results]


@given(
    store=docs,
    kind=st.sampled_from(["equal", "or", "similar", "below"]),
    title=st.sampled_from(TITLES),
    category=st.sampled_from(
        ["database conference", "data mining conference", "greek letter"]
    ),
    epsilon=st.sampled_from([1.0, 2.0]),
)
@settings(max_examples=60, deadline=None)
def test_selection_with_seo_context(store, kind, title, category, epsilon):
    database = _database("lib", store)
    pattern = _selection_pattern(_atom(kind, title, category))
    context = _context(epsilon)
    indexed = QueryExecutor(database, context, use_index=True)
    scan = QueryExecutor(database, context, use_index=False)
    left = indexed.selection("lib", pattern, sl_labels=[1])
    right = scan.selection("lib", pattern, sl_labels=[1])
    assert _keys(left) == _keys(right)
    assert left.docs_scanned <= left.docs_total


@given(
    store=docs,
    kind=st.sampled_from(["equal", "or", "similar", "below"]),
    title=st.sampled_from(TITLES),
    exact_fallback=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_selection_without_seo_context(store, kind, title, exact_fallback):
    # No context: semantic atoms either degrade to exact matches
    # (exact_fallback) or make the query raise — in which case the
    # planner must refuse to prune so both paths raise identically.
    database = _database("lib", store)
    pattern = _selection_pattern(_atom(kind, title, "database conference"))
    indexed = QueryExecutor(
        database, None, use_index=True, exact_fallback=exact_fallback
    )
    scan = QueryExecutor(
        database, None, use_index=False, exact_fallback=exact_fallback
    )

    def run(executor):
        try:
            return _keys(executor.selection("lib", pattern, sl_labels=[1]))
        except Exception as exc:
            return f"raised: {type(exc).__name__}"

    assert run(indexed) == run(scan)


def _join_pattern(cross_kind):
    pattern = pattern_of(
        [(0, None, PC), (1, 0, PC), (2, 1, PC), (4, 0, AD), (5, 4, PC)]
    )
    if cross_kind == "similar":
        cross = SimilarTo(NodeContent(2), NodeContent(5))
    else:
        cross = Comparison("=", NodeContent(2), NodeContent(5))
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("book")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(4), Constant("item")),
        Comparison("=", NodeTag(5), Constant("name")),
        cross,
    )
    return pattern


def _render_right(names):
    parts = ["<shop>"]
    for name in names:
        parts.append(f"<item><name>{name}</name></item>")
    parts.append("</shop>")
    return "".join(parts)


@given(
    left_store=st.lists(doc, min_size=1, max_size=3),
    right_store=st.lists(
        st.lists(st.sampled_from(TITLES), min_size=1, max_size=2),
        min_size=1,
        max_size=3,
    ),
    cross_kind=st.sampled_from(["similar", "equal"]),
    hash_join=st.booleans(),
    epsilon=st.sampled_from([1.0, 2.0]),
)
@settings(max_examples=40, deadline=None)
def test_join_equivalence(left_store, right_store, cross_kind, hash_join, epsilon):
    database = Database()
    left = database.create_collection("lib")
    for i, books in enumerate(left_store):
        left.add_document(f"l{i}", _render(books))
    right = database.create_collection("shop")
    for i, names in enumerate(right_store):
        right.add_document(f"r{i}", _render_right(names))

    pattern = _join_pattern(cross_kind)
    context = _context(epsilon)
    indexed = QueryExecutor(
        database, context, use_index=True, similarity_hash_join=hash_join
    )
    scan = QueryExecutor(
        database, context, use_index=False, similarity_hash_join=hash_join
    )
    a = indexed.join("lib", "shop", pattern, sl_labels=[2, 5])
    b = scan.join("lib", "shop", pattern, sl_labels=[2, 5])
    assert _keys(a) == _keys(b)
    assert a.docs_scanned <= a.docs_total
