"""Property-based tests: SEA output satisfies Definition 8 on random DAGs."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimilarityInconsistencyError
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.sea import ORDER_SAFE, sea

# Short lower-case words: small alphabet so similarities actually occur.
words = st.text(alphabet="abcd", min_size=1, max_size=5)


@st.composite
def random_hierarchies(draw):
    """A random DAG: terms plus edges from earlier to later terms."""
    terms = draw(
        st.lists(words, min_size=2, max_size=8, unique=True)
    )
    edges = []
    for i, lower in enumerate(terms):
        for upper in terms[i + 1 :]:
            if draw(st.booleans()) and draw(st.booleans()):
                edges.append((lower, upper))
    return Hierarchy(edges, nodes=terms)


@given(hierarchy=random_hierarchies(), epsilon=st.sampled_from([0.0, 1.0, 2.0]))
@settings(max_examples=60, deadline=None)
def test_order_safe_sea_always_exists_and_verifies(hierarchy, epsilon):
    """Order-safe mode never raises and satisfies conditions 1, 2, 4."""
    enhancement = sea(
        hierarchy, Levenshtein(), epsilon, mode=ORDER_SAFE, verify=True
    )
    # mu is total: every original node appears in some enhanced node.
    for term in hierarchy.terms:
        assert enhancement.mu[term]


@given(hierarchy=random_hierarchies(), epsilon=st.sampled_from([0.0, 1.0, 2.0]))
@settings(max_examples=60, deadline=None)
def test_strict_sea_verifies_when_it_exists(hierarchy, epsilon):
    """Strict mode either raises Definition 9's inconsistency or returns a
    verified enhancement (Theorem 2)."""
    try:
        sea(hierarchy, Levenshtein(), epsilon, verify=True)
    except SimilarityInconsistencyError:
        pass


@given(hierarchy=random_hierarchies())
@settings(max_examples=40, deadline=None)
def test_epsilon_zero_is_isomorphic(hierarchy):
    """At epsilon 0 (distinct terms), H' ~ H: Theorem 1's base case."""
    enhancement = sea(hierarchy, Levenshtein(), 0.0, verify=True)
    assert len(enhancement.hierarchy) == len(hierarchy)
    mapping = {next(iter(node.members)): node for node in enhancement.hierarchy.terms}
    for lower in hierarchy.terms:
        for upper in hierarchy.terms:
            assert hierarchy.leq(lower, upper) == enhancement.hierarchy.leq(
                mapping[lower], mapping[upper]
            )


@given(hierarchy=random_hierarchies(), epsilon=st.sampled_from([1.0, 2.0]))
@settings(max_examples=40, deadline=None)
def test_similarity_expansion_monotone_in_epsilon(hierarchy, epsilon):
    """cohabiting at epsilon implies cohabiting at any larger epsilon
    (order-safe mode, where enhancements always exist)."""
    small = sea(hierarchy, Levenshtein(), epsilon, mode=ORDER_SAFE)
    large = sea(hierarchy, Levenshtein(), epsilon + 1.0, mode=ORDER_SAFE)
    for a, b in itertools.combinations(hierarchy.terms, 2):
        if small.cohabiting(a, b):
            assert large.cohabiting(a, b)


@given(hierarchy=random_hierarchies(), epsilon=st.sampled_from([0.0, 1.0]))
@settings(max_examples=40, deadline=None)
def test_enhancement_theorem_1_uniqueness(hierarchy, epsilon):
    """Running SEA twice yields identical (not just isomorphic) output."""
    first = sea(hierarchy, Levenshtein(), epsilon, mode=ORDER_SAFE)
    second = sea(hierarchy, Levenshtein(), epsilon, mode=ORDER_SAFE)
    assert first.hierarchy == second.hierarchy
    assert first.mu == second.mu
