"""Property-based tests: XPath engine vs a naive reference evaluator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldb.model import XmlNode
from repro.xmldb.parser import parse_document
from repro.xmldb.serializer import serialize
from repro.xmldb.xpath import evaluate_xpath

tags = st.sampled_from(["a", "b", "c"])
texts = st.sampled_from(["", "1", "two", "x y"])


@st.composite
def random_documents(draw, max_depth=3):
    def make(depth):
        node = XmlNode(draw(tags), draw(texts))
        if depth < max_depth:
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                node.append(make(depth + 1))
        return node

    return make(0).renumber()


def reference_descendant_or_self(root, tag):
    return [node for node in root.iter() if node.tag == tag]


def reference_children(nodes, tag):
    result = []
    for node in nodes:
        result.extend(child for child in node.children if child.tag == tag)
    # XPath node-sets are in document order regardless of evaluation order.
    return sorted(result, key=lambda node: node.pre)


@given(doc=random_documents(), tag=tags)
@settings(max_examples=80, deadline=None)
def test_descendant_axis_matches_reference(doc, tag):
    engine = evaluate_xpath(doc, f"//{tag}")
    reference = reference_descendant_or_self(doc, tag)
    assert engine == reference  # identity and order


@given(doc=random_documents(), outer=tags, inner=tags)
@settings(max_examples=80, deadline=None)
def test_child_step_matches_reference(doc, outer, inner):
    engine = evaluate_xpath(doc, f"//{outer}/{inner}")
    reference = reference_children(reference_descendant_or_self(doc, outer), inner)
    # engine result is ordered + deduplicated; reference may contain
    # duplicates only if a node has two matching parents (impossible).
    assert engine == reference


@given(doc=random_documents(), tag=tags, value=texts)
@settings(max_examples=80, deadline=None)
def test_value_predicate_matches_reference(doc, tag, value):
    if not value:
        return
    engine = evaluate_xpath(doc, f"//{tag}[. = '{value}']")
    reference = [
        node
        for node in reference_descendant_or_self(doc, tag)
        if node.string_value() == value
    ]
    assert engine == reference


@given(doc=random_documents())
@settings(max_examples=60, deadline=None)
def test_count_agrees_with_nodeset_length(doc):
    for tag in ("a", "b", "c"):
        count = evaluate_xpath(doc, f"count(//{tag})")
        nodes = evaluate_xpath(doc, f"//{tag}")
        assert count == float(len(nodes))


@given(doc=random_documents())
@settings(max_examples=60, deadline=None)
def test_serialize_parse_roundtrip_preserves_xpath_results(doc):
    """Serialise -> reparse -> same XPath answers (modulo whitespace)."""
    reparsed = parse_document(serialize(doc))
    for tag in ("a", "b", "c"):
        original = [n.text for n in evaluate_xpath(doc, f"//{tag}")]
        roundtripped = [n.text for n in evaluate_xpath(reparsed, f"//{tag}")]
        assert original == roundtripped


@given(doc=random_documents(), tag=tags)
@settings(max_examples=60, deadline=None)
def test_union_is_idempotent(doc, tag):
    single = evaluate_xpath(doc, f"//{tag}")
    doubled = evaluate_xpath(doc, f"//{tag} | //{tag}")
    assert single == doubled
