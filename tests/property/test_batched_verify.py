"""Property: batched columnar verify == per-document interpreted verify.

The set-oriented verifier (``verify_batched`` + compiled conditions +
columnar scans) must be a pure acceleration of the per-document
interpreted pipeline.  For fuzzed selections (selective and broad),
and joins against a real SEO, the two configurations must agree on

* the verdict sequence (canonical result keys, in order),
* the serialised bytes of every result tree,
* the number of ontology accesses the verification drove,
* guard accounting (steps and per-stage breakdown), and
* the error message when a step budget trips mid-verify.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_query
from repro.data import generate_corpus, render_dblp
from repro.data.sigmod import render_sigmod_pages
from repro.errors import ResourceExhaustedError
from repro.experiments.workload import (
    build_join_pattern,
    build_scalability_pattern,
    build_system,
)
from repro.guard import ResourceGuard
from repro.xmldb.serializer import serialize

EPSILON_CHOICES = (1.0, 3.0)

# Building a system is costly; share a few across examples.
_SYSTEMS = {}


def _system(seed, epsilon):
    key = (seed, epsilon)
    if key not in _SYSTEMS:
        corpus = generate_corpus(24, seed=seed)
        keys = corpus.paper_keys()
        documents = [
            render_dblp(corpus, seed=seed, paper_keys=[k]) for k in keys
        ]
        pages = render_sigmod_pages(corpus, seed=seed, paper_keys=keys)
        system = build_system(
            corpus, documents, epsilon,
            sigmod_documents=pages, use_cache=False,
        )
        system.executor.similarity_hash_join = False
        _SYSTEMS[key] = (corpus, system)
    return _SYSTEMS[key]


def _configure(system, fast):
    executor = system.executor
    executor.verify_batched = fast
    executor.compile_conditions = fast
    for name in ("dblp", "sigmod"):
        system.database.get_collection(name).use_columnar = fast


def _run_modes(system, run, guard_steps=None):
    """((outcome, guard) for the fast path, same for interpreted)."""
    snapshots = []
    for fast in (True, False):
        _configure(system, fast)
        guard = (
            ResourceGuard(max_steps=guard_steps)
            if guard_steps is not None
            else None
        )
        try:
            report = run(system, guard)
            outcome = (
                "ok",
                [t.canonical_key() for t in report.results],
                [serialize(t).encode("utf-8") for t in report.results],
                report.ontology_accesses,
            )
        except ResourceExhaustedError as exc:
            outcome = ("error", str(exc))
        snapshots.append((outcome, guard))
    _configure(system, True)
    return snapshots


def _assert_equivalent(snapshots):
    (out_fast, g_fast), (out_interp, g_interp) = snapshots
    assert out_fast == out_interp
    if g_fast is not None:
        assert g_fast.steps == g_interp.steps
        assert g_fast.stage_steps == g_interp.stage_steps


@given(
    seed=st.sampled_from([3, 5]),
    epsilon=st.sampled_from(EPSILON_CHOICES),
    narrow=st.sampled_from(
        ["SIGMOD Conference", "database conference", "conference"]
    ),
)
@settings(max_examples=12, deadline=None)
def test_selection_equivalence(seed, epsilon, narrow):
    _corpus, system = _system(seed, epsilon)
    pattern = build_scalability_pattern(narrow_category=narrow)
    _assert_equivalent(
        _run_modes(
            system,
            lambda s, g: s.executor.selection(
                "dblp", pattern, sl_labels=[1], guard=g
            ),
        )
    )


@given(
    seed=st.sampled_from([3, 5]),
    epsilon=st.sampled_from(EPSILON_CHOICES),
    author_index=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=10, deadline=None)
def test_parsed_query_equivalence(seed, epsilon, author_index):
    corpus, system = _system(seed, epsilon)
    authors = sorted(corpus.authors.values(), key=lambda a: a.entity_id)
    author = authors[author_index % len(authors)]
    parsed = parse_query(
        f'inproceedings(author ~ "{author.canonical}", '
        f'booktitle below "conference")'
    )
    _assert_equivalent(
        _run_modes(
            system,
            lambda s, g: s.executor.selection(
                "dblp", parsed.pattern, parsed.roots, guard=g
            ),
        )
    )


@given(seed=st.sampled_from([3, 5]), epsilon=st.sampled_from(EPSILON_CHOICES))
@settings(max_examples=6, deadline=None)
def test_join_equivalence(seed, epsilon):
    _corpus, system = _system(seed, epsilon)
    pattern = build_join_pattern()
    _assert_equivalent(
        _run_modes(
            system,
            lambda s, g: s.executor.join(
                "dblp", "sigmod", pattern, sl_labels=[2, 5], guard=g
            ),
        )
    )


@given(
    seed=st.sampled_from([3, 5]),
    budget_fraction=st.sampled_from([0.25, 0.5, 0.9]),
)
@settings(max_examples=8, deadline=None)
def test_guard_trip_equivalence(seed, budget_fraction):
    _corpus, system = _system(seed, 3.0)
    pattern = build_scalability_pattern()
    run = lambda s, g: s.executor.selection(
        "dblp", pattern, sl_labels=[1], guard=g
    )
    # Measure the full guarded cost once, then trip part-way through it.
    (_, full_guard), _ = _run_modes(system, run, guard_steps=10**9)
    budget = max(1, int(full_guard.steps * budget_fraction))
    _assert_equivalent(_run_modes(system, run, guard_steps=budget))
