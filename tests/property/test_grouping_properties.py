"""Property: grouping partitions the selection's answer multiset."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tax.algebra import selection
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.grouping import GROUP_BASIS_TAG, GROUP_SUBROOT_TAG, aggregation, grouping
from repro.tax.pattern import pattern_of
from repro.xmldb.model import XmlNode

years = st.sampled_from(["1999", "2000", "2001"])
venues = st.sampled_from(["A", "B"])


@st.composite
def random_bibliographies(draw):
    root = XmlNode("dblp")
    for index in range(draw(st.integers(min_value=0, max_value=8))):
        record = root.element("inproceedings", key=f"p{index}")
        record.element("year", draw(years))
        record.element("venue", draw(venues))
    return root.renumber()


def year_pattern():
    pattern = pattern_of([(1, None, "pc"), (2, 1, "pc")])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("year")),
    )
    return pattern


@given(doc=random_bibliographies())
@settings(max_examples=60, deadline=None)
def test_groups_partition_selection(doc):
    """Union of group members == selection output; groups are disjoint."""
    pattern = year_pattern()
    selected = selection([doc], pattern, sl_labels=[1])
    groups = grouping([doc], pattern, [NodeContent(2)], sl_labels=[1])

    member_keys = []
    group_keys = set()
    for group in groups:
        key = group.child_by_tag(GROUP_BASIS_TAG).children[0].text
        assert key not in group_keys, "duplicate group key"
        group_keys.add(key)
        subroot = group.child_by_tag(GROUP_SUBROOT_TAG)
        for member in subroot.children:
            assert member.find_first("year").text == key
            member_keys.append(member.canonical_key())

    assert sorted(member_keys) == sorted(t.canonical_key() for t in selected)


@given(doc=random_bibliographies())
@settings(max_examples=60, deadline=None)
def test_counts_sum_to_selection_size(doc):
    pattern = year_pattern()
    selected = selection([doc], pattern, sl_labels=[1])
    groups = grouping([doc], pattern, [NodeContent(2)], sl_labels=[1])
    counts = aggregation(groups, "count")
    total = sum(int(c.child_by_tag("value").text) for c in counts)
    assert total == len(selected)
