"""Unit tests for the ``db index`` command group."""

import pathlib

import pytest

from repro.cli import main

DBLP = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <title>Paper One</title>
  </inproceedings>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <title>Paper Two</title>
  </inproceedings>
</dblp>
"""


@pytest.fixture
def store(tmp_path, capsys):
    path = tmp_path / "dblp.xml"
    path.write_text(DBLP)
    root = str(tmp_path / "system")
    assert main(
        ["save", "--source", f"dblp={path}", "--epsilon", "1", "--out", root]
    ) == 0
    capsys.readouterr()
    return root


def _index_file(tmp_path):
    files = list(
        (tmp_path / "system" / "database" / ".indexes").glob("*.json")
    )
    assert files, "expected a persisted index file"
    return files[0]


class TestDbIndexCommand:
    def test_build_then_verify(self, store, tmp_path, capsys):
        assert main(["db", "index", "build", store]) == 0
        out = capsys.readouterr().out
        assert "built index [dblp]: 1 documents" in out
        assert _index_file(tmp_path).exists()
        assert main(["db", "index", "verify", store]) == 0
        assert "search index [dblp]: ok" in capsys.readouterr().out

    def test_verify_fails_on_missing_index(self, store, tmp_path, capsys):
        index_dir = tmp_path / "system" / "database" / ".indexes"
        if index_dir.exists():
            for f in index_dir.glob("*.json"):
                f.unlink()
        assert main(["db", "index", "verify", store]) == 1
        assert "missing" in capsys.readouterr().out

    def test_verify_fails_on_corruption_build_repairs(
        self, store, tmp_path, capsys
    ):
        assert main(["db", "index", "build", store]) == 0
        _index_file(tmp_path).write_text("{broken")
        assert main(["db", "index", "verify", store]) == 1
        assert "corrupt" in capsys.readouterr().out
        # A rebuild repairs it; verify passes again.
        assert main(["db", "index", "build", store]) == 0
        capsys.readouterr()
        assert main(["db", "index", "verify", store]) == 0

    def test_stats_reports_but_never_fails(self, store, tmp_path, capsys):
        assert main(["db", "index", "build", store]) == 0
        _index_file(tmp_path).write_text("{broken")
        # stats is informational: exit 0 even with a damaged index.
        assert main(["db", "index", "stats", store]) == 0
        assert "corrupt" in capsys.readouterr().out

    def test_build_missing_store_errors(self, tmp_path, capsys):
        assert main(["db", "index", "build", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_db_stats_includes_index_health(self, store, capsys):
        assert main(["db", "index", "build", store]) == 0
        capsys.readouterr()
        assert main(["db", "stats", store]) == 0
        out = capsys.readouterr().out
        assert "search index [dblp]: ok" in out
        assert "postings" in out
