"""The shared thread-safe LRU cache behind the query and plan caches."""

import threading

import pytest

from repro.lru import LruCache
from repro.obs.metrics import REGISTRY


@pytest.fixture(autouse=True)
def clean_registry():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


class TestLruSemantics:
    def test_get_put_roundtrip(self):
        cache = LruCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1
        assert "a" in cache

    def test_get_default(self):
        cache = LruCache(4)
        sentinel = object()
        assert cache.get("missing", sentinel) is sentinel

    def test_eviction_is_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_put_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite refreshes
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_contains_does_not_touch_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # membership probe, not a use
        cache.put("c", 3)
        assert "a" not in cache  # a was still LRU

    def test_zero_size_disables_storage(self):
        cache = LruCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.hits  # touch
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_keys_lru_first(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]


class TestLruCounters:
    def test_hit_miss_eviction_counts(self):
        cache = LruCache(1)
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.get("a")  # hit
        cache.put("b", 2)  # evicts a
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.evictions == 1

    def test_reset_counters_keeps_entries(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("x")
        cache.reset_counters()
        assert cache.hits == 0 and cache.misses == 0 and cache.evictions == 0
        assert cache.get("a") == 1

    def test_metrics_emitted_under_prefix(self):
        cache = LruCache(1, metric_prefix="test.cache")
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)
        snapshot = REGISTRY.snapshot()
        assert snapshot["test.cache.misses"]["value"] == 1
        assert snapshot["test.cache.hits"]["value"] == 1
        assert snapshot["test.cache.evictions"]["value"] == 1

    def test_no_prefix_emits_nothing(self):
        cache = LruCache(1)
        cache.get("a")
        cache.put("a", 1)
        assert REGISTRY.snapshot() == {}


class TestLruThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = LruCache(32, metric_prefix="test.threaded")
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    key = f"k{(base * 31 + i) % 64}"
                    if i % 3 == 0:
                        cache.put(key, i)
                    else:
                        cache.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 32
        # Accounting stayed consistent: every get was a hit or a miss.
        gets = 8 * 500 - sum(1 for i in range(500) if i % 3 == 0) * 8
        assert cache.hits + cache.misses == gets
