"""Golden tests: the paper's own figures and examples, end to end.

Figures 1-2 give the sample DBLP/SIGMOD instances; Figures 3-7 show TAX
query results over them; Figures 9-11 show the ontologies and their
canonical fusion; Example 11 / Figure 13 shows SEA; Examples 12-13 are
TOSS queries.  Each test reconstructs the input and checks the published
output shape.
"""

import pytest

from repro.core import TossSystem
from repro.core.conditions import PartOf, SeoConditionContext, SimilarTo
from repro.ontology import Hierarchy, canonical_fusion, parse_constraint
from repro.ontology.maker import OntologyMaker
from repro.similarity.measures import Levenshtein
from repro.tax import (
    And,
    Comparison,
    Constant,
    NodeContent,
    NodeTag,
    PatternTree,
    join,
    projection,
    selection,
)
from repro.tax.algebra import PRODUCT_ROOT_TAG, product
from repro.xmldb import parse_document

#: Figure 1 — a small DBLP fragment (three papers, 1999/2000).
DBLP_FIGURE_1 = """
<dblp>
  <inproceedings key="CiancariniVX99">
    <author>Paolo Ciancarini</author>
    <author>Fabio Vitali</author>
    <title>Managing Complex Documents Over the WWW</title>
    <year>1999</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="AgrawalCN00">
    <author>Sanjay Agrawal</author>
    <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000</title>
    <year>2000</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="DamianiVPS00">
    <author>Ernesto Damiani</author>
    <author>Pierangela Samarati</author>
    <title>Securing XML Documents</title>
    <year>2000</year>
    <booktitle>EDBT</booktitle>
  </inproceedings>
</dblp>
"""

#: Figure 2 — a SIGMOD proceedings page (different schema, initials).
SIGMOD_FIGURE_2 = """
<ProceedingsPage>
  <conference>ACM SIGMOD International Conference on Management of Data</conference>
  <confYear>2000</confYear>
  <articles>
    <article>
      <title>Materialized View and Index Selection Tool for Microsoft SQL Server 2000.</title>
      <author>S. Agrawal</author>
    </article>
    <article>
      <title>Securing XML Documents.</title>
      <author>E. Damiani</author>
      <author>P. Samarati</author>
    </article>
  </articles>
</ProceedingsPage>
"""


@pytest.fixture
def dblp():
    return parse_document(DBLP_FIGURE_1)


@pytest.fixture
def sigmod():
    return parse_document(SIGMOD_FIGURE_2)


def figure_3_pattern():
    """Figure 3: inproceedings with title child and year child = 1999."""
    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    pattern.add_node(3, parent=1, edge="pc")
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("year")),
        Comparison("=", NodeContent(3), Constant("1999")),
    )
    return pattern


class TestFigures3to5:
    def test_figure_4_selection_with_sl(self, dblp):
        """sigma_P1 with SL={1}: the whole 1999 record comes back."""
        results = selection([dblp], figure_3_pattern(), sl_labels=[1])
        assert len(results) == 1
        witness = results[0]
        assert witness.find_first("title").text == (
            "Managing Complex Documents Over the WWW"
        )
        # SL inflation brings the authors along.
        authors = [n.text for n in witness.find_all("author")]
        assert authors == ["Paolo Ciancarini", "Fabio Vitali"]

    def test_figure_5_projection_of_authors(self, dblp):
        """Example 5: authors of papers published in 1999."""
        pattern = PatternTree()
        pattern.add_node(1)
        pattern.add_node(2, parent=1, edge="pc")
        pattern.add_node(3, parent=1, edge="pc")
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeTag(3), Constant("year")),
            Comparison("=", NodeContent(3), Constant("1999")),
        )
        results = projection([dblp], pattern, [2])
        assert sorted(t.text for t in results) == [
            "Fabio Vitali", "Paolo Ciancarini",
        ]


class TestFigures6and7:
    def test_figure_7_join_result(self, dblp, sigmod):
        """Figure 6/7: join DBLP x SIGMOD on equal titles (with the
        trailing-period variation handled by similarity in Example 13 —
        the plain TAX join here uses the exact title, so we test against
        the one exactly-equal pair after normalising the period)."""
        pattern = PatternTree()
        pattern.add_node(0)
        pattern.add_node(1, parent=0, edge="pc")
        pattern.add_node(2, parent=1, edge="pc")
        pattern.add_node(3, parent=0, edge="ad")
        pattern.add_node(4, parent=3, edge="pc")
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("title")),
            Comparison("=", NodeTag(3), Constant("article")),
            Comparison("=", NodeTag(4), Constant("title")),
            Comparison("=", NodeContent(2), NodeContent(4)),
        )
        # Exact join finds nothing (periods differ) — the paper's point.
        assert join([dblp], [sigmod], pattern, sl_labels=[2]) == []

    def test_product_root_named_like_figure_7(self, dblp, sigmod):
        pairs = product([dblp], [sigmod])
        assert pairs[0].tag == PRODUCT_ROOT_TAG == "tax_prod_root"


class TestFigures9to11:
    def test_figure_9_ontologies_via_maker(self, dblp, sigmod):
        maker = OntologyMaker()
        dblp_ontology = maker.make(dblp)
        sigmod_ontology = maker.make(sigmod)
        # Figure 9(b): DBLP part-of shape.
        assert dblp_ontology.part_of.leq("author", "inproceedings")
        assert dblp_ontology.part_of.leq("booktitle", "inproceedings")
        # Figure 9(a): SIGMOD part-of shape.
        assert sigmod_ontology.part_of.leq("author", "article")
        assert sigmod_ontology.part_of.leq("article", "articles")
        assert sigmod_ontology.part_of.leq("articles", "ProceedingsPage")
        assert sigmod_ontology.part_of.leq("conference", "ProceedingsPage")

    def test_figure_11_canonical_fusion(self):
        sigmod_h = Hierarchy(
            [
                ("article", "articles"),
                ("articles", "ProceedingsPage"),
                ("author", "article"),
                ("title", "article"),
                ("conference", "ProceedingsPage"),
                ("confYear", "ProceedingsPage"),
            ]
        )
        dblp_h = Hierarchy(
            [
                ("author", "inproceedings"),
                ("title", "inproceedings"),
                ("booktitle", "inproceedings"),
                ("year", "inproceedings"),
            ]
        )
        fusion = canonical_fusion(
            {1: sigmod_h, 2: dblp_h},
            [
                parse_constraint("conference:1 = booktitle:2"),
                parse_constraint("title:1 = title:2"),
                parse_constraint("author:1 = author:2"),
                parse_constraint("confYear:1 = year:2"),
            ],
        )
        merged = fusion.node_of("conference", 1)
        assert merged.strings == frozenset({"conference", "booktitle"})
        assert fusion.node_of("confYear", 1).strings == frozenset(
            {"confYear", "year"}
        )
        author = fusion.node_of("author", 1)
        assert fusion.hierarchy.leq(author, fusion.node_of("article", 1))
        assert fusion.hierarchy.leq(author, fusion.node_of("inproceedings", 2))


class TestExample11:
    def test_figure_13_similarity_enhancement(self):
        from repro.similarity.sea import sea

        hierarchy = Hierarchy(
            [
                ("relation", "concept"),
                ("relational", "concept"),
                ("model", "concept"),
                ("models", "concept"),
            ]
        )
        enhancement = sea(hierarchy, Levenshtein(), 2.0, verify=True)
        merged = sorted(
            str(node)
            for node in enhancement.hierarchy.terms
            if len(node.members) > 1
        )
        assert merged == ["{model, models}", "{relation, relational}"]


class TestExample12:
    def test_part_of_wildcard_query(self, dblp):
        """Find titles of papers related to Microsoft, wherever it appears.

        Example 12: #1.tag = inproceedings AND #2.tag = title AND
        #3.tag part_of inproceedings AND #3.content ~ Microsoft-ish.
        We express the part_of as the maker-extracted hierarchy and look
        for any part of inproceedings whose content mentions Microsoft.
        """
        from repro.similarity.seo import SimilarityEnhancedOntology
        from repro.tax.conditions import Contains
        from repro.tax.embedding import find_embeddings

        maker = OntologyMaker()
        ontology = maker.make(dblp)
        seo_isa = SimilarityEnhancedOntology.for_hierarchy(
            ontology.isa, Levenshtein(), 0.0, mode="order-safe"
        )
        seo_part = SimilarityEnhancedOntology.for_hierarchy(
            ontology.part_of, Levenshtein(), 0.0, mode="order-safe"
        )
        context = SeoConditionContext(seo_isa, seos={"part-of": seo_part})

        pattern = PatternTree()
        pattern.add_node(1)
        pattern.add_node(2, parent=1, edge="pc")
        pattern.add_node(3, parent=1, edge="ad")
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("title")),
            PartOf(NodeTag(3), Constant("inproceedings")),
            Contains(NodeContent(3), Constant("Microsoft")),
        )
        results = projection([dblp], pattern, [2], context)
        assert [t.text for t in results] == [
            "Materialized View and Index Selection Tool for Microsoft SQL Server 2000"
        ]


class TestExample13:
    def test_similarity_join_finds_both_shared_papers(self, dblp, sigmod):
        """sigma_P3(DBLP x ProceedingsPage): two trees — 'Materialized
        View ...' and 'Securing XML ...' — despite the trailing periods."""
        system = TossSystem(measure="levenshtein", epsilon=3.0)
        system.add_instance("dblp", DBLP_FIGURE_1)
        system.add_instance("sigmod", SIGMOD_FIGURE_2)
        system.add_constraint("booktitle:dblp = conference:sigmod")
        system.build()

        pattern = PatternTree()
        pattern.add_node(0)
        pattern.add_node(1, parent=0, edge="pc")
        pattern.add_node(2, parent=1, edge="pc")
        pattern.add_node(3, parent=0, edge="ad")
        pattern.add_node(4, parent=3, edge="pc")
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("title")),
            Comparison("=", NodeTag(3), Constant("article")),
            Comparison("=", NodeTag(4), Constant("title")),
            SimilarTo(NodeContent(2), NodeContent(4)),
        )
        report = system.join("dblp", "sigmod", pattern, sl_labels=[2, 4])
        titles = sorted(
            tree.find_all("title")[0].text for tree in report.results
        )
        assert titles == [
            "Materialized View and Index Selection Tool for Microsoft SQL Server 2000",
            "Securing XML Documents",
        ]
