"""Unit tests for the observability sinks (repro.obs.sinks)."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (
    JsonLinesSink,
    SlowQueryLog,
    read_metrics_snapshot,
    write_metrics_snapshot,
)


class TestJsonLinesSink:
    def test_emit_and_read_roundtrip(self, tmp_path):
        sink = JsonLinesSink(tmp_path / "events.jsonl")
        sink.emit({"event": "a", "n": 1})
        sink.emit({"event": "b", "n": 2})
        entries = sink.read()
        assert [e["event"] for e in entries] == ["a", "b"]

    def test_read_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonLinesSink(path)
        sink.emit({"event": "good"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn wri\n")
        sink.emit({"event": "after"})
        assert [e["event"] for e in sink.read()] == ["good", "after"]

    def test_read_limit_returns_newest(self, tmp_path):
        sink = JsonLinesSink(tmp_path / "events.jsonl")
        for n in range(5):
            sink.emit({"n": n})
        assert [e["n"] for e in sink.read(limit=2)] == [3, 4]

    def test_rotation_keeps_backup_generation(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonLinesSink(path, max_bytes=64)
        for n in range(20):
            sink.emit({"n": n, "pad": "x" * 16})
        backup = tmp_path / "events.jsonl.1"
        assert backup.exists()
        assert path.stat().st_size <= 64
        # read() stitches backup + live, oldest first, newest entry last
        entries = sink.read()
        assert entries[-1]["n"] == 19
        assert [e["n"] for e in entries] == sorted(e["n"] for e in entries)

    def test_rotation_with_backups_zero_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonLinesSink(path, max_bytes=64, backups=0)
        for n in range(20):
            sink.emit({"n": n, "pad": "x" * 16})
        assert not (tmp_path / "events.jsonl.1").exists()
        assert path.stat().st_size <= 64


class TestSlowQueryLog:
    def test_threshold_gates_recording(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_seconds=0.5)
        assert log.record({"query": "fast", "total_seconds": 0.49}) is False
        assert log.record({"query": "edge", "total_seconds": 0.5}) is True
        assert log.record({"query": "slow", "total_seconds": 2.0}) is True
        assert [e["query"] for e in log.read()] == ["edge", "slow"]

    def test_missing_total_seconds_not_recorded(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_seconds=0.0)
        assert log.record({"query": "no timing"}) is False

    def test_zero_threshold_records_everything(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_seconds=0.0)
        assert log.record({"total_seconds": 0.0}) is True

    def test_rotation_applies_to_slow_log(self, tmp_path):
        log = SlowQueryLog(
            tmp_path / "slow.jsonl", threshold_seconds=0.0, max_bytes=64
        )
        for n in range(20):
            log.record({"n": n, "total_seconds": 1.0, "pad": "x" * 8})
        assert (tmp_path / "slow.jsonl.1").exists()


class TestMetricsSnapshotFile:
    def test_missing_or_corrupt_file_reads_empty(self, tmp_path):
        assert read_metrics_snapshot(tmp_path / "none.json") == {}
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_metrics_snapshot(bad) == {}

    def test_flushes_accumulate_across_invocations(self, tmp_path):
        path = tmp_path / "metrics.json"
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        write_metrics_snapshot(path, registry)
        write_metrics_snapshot(path, registry)  # same registry, merged again
        snapshot = read_metrics_snapshot(path)
        assert snapshot["queries"]["value"] == 6

    def test_no_merge_overwrites(self, tmp_path):
        path = tmp_path / "metrics.json"
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        write_metrics_snapshot(path, registry)
        write_metrics_snapshot(path, registry, merge=False)
        assert read_metrics_snapshot(path)["queries"]["value"] == 3

    def test_file_is_versioned_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        write_metrics_snapshot(path, registry)
        payload = json.loads(path.read_text())
        assert payload["format"] == 1
        assert payload["metrics"]["g"] == {"type": "gauge", "value": 1}
