"""Unit tests for the hierarchical trace spans (repro.obs.trace)."""

import pytest

from repro.obs.trace import (
    NULL_SPAN_CONTEXT,
    NULL_TRACER,
    Span,
    Tracer,
    _ACTIVE,
    current_tracer,
    render_span_dict,
    traced,
)


class TestSpanNesting:
    def test_children_nest_in_call_order(self):
        tracer = Tracer()
        with tracer.trace("root", query="q"):
            with tracer.span("first"):
                with tracer.span("inner"):
                    pass
            with tracer.span("second"):
                pass
        root = tracer.root
        assert root.name == "root"
        assert [c.name for c in root.children] == ["first", "second"]
        assert [c.name for c in root.children[0].children] == ["inner"]
        assert root.attributes == {"query": "q"}

    def test_timings_are_positive_and_contain_children(self):
        tracer = Tracer()
        with tracer.trace("root"):
            with tracer.span("child"):
                pass
        root = tracer.root
        child = root.children[0]
        assert root.seconds > 0.0
        assert 0.0 < child.seconds <= root.seconds

    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer()
        with tracer.trace("root"):
            with tracer.span("child"):
                tracer.annotate(candidates=7)
            tracer.annotate(results=2)
        assert tracer.root.children[0].attributes == {"candidates": 7}
        assert tracer.root.attributes == {"results": 2}

    def test_finish_returns_dict_tree(self):
        tracer = Tracer()
        with tracer.trace("root"):
            with tracer.span("child", k="v"):
                pass
        payload = tracer.finish()
        assert payload["name"] == "root"
        assert payload["children"][0]["name"] == "child"
        assert payload["children"][0]["attributes"] == {"k": "v"}

    def test_exception_still_closes_spans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.trace("root"):
                with tracer.span("child"):
                    raise RuntimeError("boom")
        assert tracer.root.children[0].seconds > 0.0
        assert current_tracer() is NULL_TRACER  # deregistered on unwind


class TestAmbientAccess:
    def test_current_tracer_inside_and_outside(self):
        assert current_tracer() is NULL_TRACER
        tracer = Tracer()
        with tracer.trace("root"):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER
        assert not _ACTIVE

    def test_traced_decorator_attaches_to_ambient_tracer(self):
        @traced("helper.work")
        def work(x):
            return x + 1

        assert work(1) == 2  # no active trace: still runs, records nothing
        tracer = Tracer()
        with tracer.trace("root"):
            assert work(2) == 3
        assert [c.name for c in tracer.root.children] == ["helper.work"]

    def test_nested_tracers_restore_outer(self):
        outer, inner = Tracer(), Tracer()
        with outer.trace("outer"):
            with inner.trace("inner"):
                assert current_tracer() is inner
            assert current_tracer() is outer


class TestDisabledZeroOverhead:
    def test_disabled_span_returns_shared_null_context(self):
        disabled = Tracer(enabled=False)
        assert disabled.trace("root") is NULL_SPAN_CONTEXT
        assert disabled.span("child") is NULL_SPAN_CONTEXT
        assert NULL_TRACER.span("x") is NULL_TRACER.span("y")

    def test_disabled_tracer_allocates_no_spans(self):
        disabled = Tracer(enabled=False)
        with disabled.trace("root"):
            with disabled.span("child"):
                disabled.annotate(ignored=True)
        assert disabled.root is None
        assert disabled.finish() is None

    def test_null_tracer_record_span_is_noop(self):
        NULL_TRACER.record_span("x", 1.0)
        assert NULL_TRACER.root is None


class TestBounds:
    def test_max_depth_drops_deeper_spans(self):
        tracer = Tracer(max_depth=2)
        with tracer.trace("root"):
            with tracer.span("child"):
                assert tracer.span("too-deep") is NULL_SPAN_CONTEXT
        assert tracer.dropped_spans == 1
        assert tracer.root.attributes["dropped_spans"] == 1
        assert not tracer.root.children[0].children

    def test_max_spans_caps_total(self):
        tracer = Tracer(max_spans=3)
        with tracer.trace("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
            assert tracer.span("c") is NULL_SPAN_CONTEXT
        assert len(tracer.root.children) == 2
        assert tracer.root.attributes["dropped_spans"] == 1


class TestWorkerSpanMerge:
    def test_record_span_with_children_payloads(self):
        tracer = Tracer()
        with tracer.trace("root"):
            tracer.record_span(
                "parallel.worker[0]",
                0.25,
                attributes={"blocks": 3},
                children=[
                    {"name": "block", "seconds": 0.1,
                     "children": [{"name": "pairs", "seconds": 0.05}]}
                ],
            )
        worker = tracer.root.children[0]
        assert worker.name == "parallel.worker[0]"
        assert worker.seconds == 0.25
        assert worker.attributes == {"blocks": 3}
        assert worker.children[0].name == "block"
        assert worker.children[0].children[0].name == "pairs"

    def test_record_spans_respect_max_spans(self):
        tracer = Tracer(max_spans=2)
        with tracer.trace("root"):
            tracer.record_span("w0", 0.1)
            tracer.record_span("w1", 0.1)
        assert [c.name for c in tracer.root.children] == ["w0"]
        assert tracer.root.attributes["dropped_spans"] == 1


class TestRendering:
    def test_render_span_dict_lines(self):
        span = Span("root", {"z": 1, "a": "x"})
        span.seconds = 1.5
        child = Span("child")
        child.seconds = 0.5
        span.children.append(child)
        lines = render_span_dict(span.to_dict())
        assert lines[0] == "root  1.500000s  [a=x z=1]"
        assert lines[1] == "  child  0.500000s"

    def test_to_dict_rounds_seconds(self):
        span = Span("s")
        span.seconds = 0.12345678
        assert span.to_dict()["seconds"] == 0.123457
