"""Unit tests for the rolling per-second windows (repro.obs.window)."""

import threading

import pytest

from repro.obs.window import (
    DEFAULT_HORIZON_SECONDS,
    LATENCY_BUCKET_BOUNDS,
    RollingWindow,
    SloPolicy,
    WindowRegistry,
    merge_window_snapshots,
)

#: A fixed "current" epoch so every test is deterministic.
NOW = 1_700_000_000


class TestObserveAndStats:
    def test_counts_and_qps_over_window(self):
        ring = RollingWindow()
        for offset in range(5):
            ring.observe(0.010, now=NOW - offset)
        stats = ring.stats(window=10, now=NOW)
        assert stats["count"] == 5
        assert stats["qps"] == 0.5
        assert stats["errors"] == 0
        assert stats["error_rate"] == 0.0
        assert stats["mean_seconds"] == pytest.approx(0.010)

    def test_window_excludes_older_slots(self):
        ring = RollingWindow()
        ring.observe(0.010, now=NOW)
        ring.observe(0.010, now=NOW - 30)
        assert ring.stats(window=10, now=NOW)["count"] == 1
        assert ring.stats(window=60, now=NOW)["count"] == 2

    def test_error_rate(self):
        ring = RollingWindow()
        ring.observe(0.01, now=NOW)
        ring.observe(0.01, error=True, now=NOW)
        stats = ring.stats(window=1, now=NOW)
        assert stats["errors"] == 1
        assert stats["error_rate"] == 0.5

    def test_quantiles_bracket_observed_latencies(self):
        ring = RollingWindow()
        for _ in range(99):
            ring.observe(0.004, now=NOW)  # lands in the (2ms, 4ms] bucket
        ring.observe(1.0, now=NOW)
        stats = ring.stats(window=1, now=NOW)
        assert 0.002 <= stats["p50"] <= 0.004
        assert 0.002 <= stats["p95"] <= 0.004
        assert stats["p99"] <= 0.004 or stats["p99"] >= 0.5

    def test_ring_slot_reuse_evicts_stale_epoch(self):
        # Same ring index (epochs an exact capacity apart) must not mix
        # the old second's counts into the new one.
        ring = RollingWindow(horizon=10)
        capacity = 11
        ring.observe(0.01, now=NOW - capacity)
        ring.observe(0.01, now=NOW)
        assert ring.stats(window=1, now=NOW)["count"] == 1

    def test_empty_ring_stats_are_zero(self):
        stats = RollingWindow().stats(window=10, now=NOW)
        assert stats["count"] == 0
        assert stats["qps"] == 0.0
        assert stats["p99"] == 0.0

    def test_window_bounds_validated(self):
        ring = RollingWindow(horizon=10)
        with pytest.raises(ValueError):
            ring.stats(window=0, now=NOW)
        with pytest.raises(ValueError):
            ring.stats(window=11, now=NOW)


class TestSlo:
    def test_burn_rate_counts_errors_and_slow_requests(self):
        ring = RollingWindow()
        slo = SloPolicy(latency_seconds=0.1, error_budget=0.1)
        for _ in range(8):
            ring.observe(0.01, now=NOW)  # good
        ring.observe(5.0, now=NOW)  # slow -> bad
        ring.observe(0.01, error=True, now=NOW)  # errored -> bad
        stats = ring.stats(window=1, now=NOW, slo=slo)
        # 2 bad out of 10 = 0.2 bad fraction / 0.1 budget = 2.0 burn
        assert stats["slo_burn"] == pytest.approx(2.0)

    def test_healthy_traffic_burns_nothing(self):
        ring = RollingWindow()
        ring.observe(0.01, now=NOW)
        assert ring.stats(window=1, now=NOW)["slo_burn"] == 0.0


class TestSnapshotAbsorb:
    def test_snapshot_rows_carry_absolute_epochs(self):
        ring = RollingWindow()
        ring.observe(0.01, now=NOW)
        ring.observe(0.02, error=True, now=NOW)
        rows = ring.snapshot(now=NOW)
        assert len(rows) == 1
        epoch, count, errors, total, buckets = rows[0]
        assert epoch == NOW
        assert count == 2
        assert errors == 1
        assert total == pytest.approx(0.03)
        assert sum(buckets) == 2

    def test_snapshot_reset_ships_deltas(self):
        ring = RollingWindow()
        ring.observe(0.01, now=NOW)
        assert ring.snapshot(now=NOW, reset=True)
        assert ring.snapshot(now=NOW) == []

    def test_absorb_reproduces_remote_observations(self):
        worker, parent = RollingWindow(), RollingWindow()
        worker.observe(0.01, now=NOW)
        worker.observe(0.5, error=True, now=NOW - 3)
        parent.absorb_rows(worker.snapshot(now=NOW), now=NOW)
        assert parent.stats(window=10, now=NOW) == worker.stats(
            window=10, now=NOW
        )

    def test_absorb_drops_rows_beyond_horizon(self):
        ring = RollingWindow(horizon=10)
        ring.absorb_rows([[NOW - 100, 5, 0, 1.0, [5]]], now=NOW)
        assert ring.stats(window=10, now=NOW)["count"] == 0

    def test_absorb_clips_foreign_bucket_layouts(self):
        ring = RollingWindow()
        oversized = [1] * (len(LATENCY_BUCKET_BOUNDS) + 5)
        ring.absorb_rows([[NOW, len(oversized), 0, 1.0, oversized]], now=NOW)
        assert ring.stats(window=1, now=NOW)["count"] == len(oversized)


class TestWindowRegistry:
    def test_observe_buckets_by_query_class(self):
        registry = WindowRegistry()
        registry.observe("selection", 0.01, now=NOW)
        registry.observe("join", 0.05, now=NOW)
        stats = registry.stats(window=10, now=NOW)
        assert set(stats) == {"join", "selection"}
        assert stats["selection"]["count"] == 1

    def test_disabled_registry_records_nothing(self):
        registry = WindowRegistry(enabled=False)
        registry.observe("selection", 0.01, now=NOW)
        assert registry.stats(window=10, now=NOW) == {}

    def test_snapshot_absorb_round_trip(self):
        worker, parent = WindowRegistry(), WindowRegistry()
        worker.observe("selection", 0.01, now=NOW)
        worker.observe("join", 0.02, error=True, now=NOW)
        parent.absorb(worker.snapshot(now=NOW), now=NOW)
        assert parent.stats(window=10, now=NOW) == worker.stats(
            window=10, now=NOW
        )

    def test_absorb_tolerates_none_and_empty(self):
        registry = WindowRegistry()
        registry.absorb(None)
        registry.absorb({})
        assert registry.stats(window=10, now=NOW) == {}

    def test_reset_clears_every_class(self):
        registry = WindowRegistry()
        registry.observe("selection", 0.01, now=NOW)
        registry.reset()
        assert registry.stats(window=10, now=NOW) == {}

    def test_multi_stats_shape(self):
        registry = WindowRegistry()
        registry.observe("selection", 0.01, now=NOW)
        multi = registry.multi_stats(now=NOW)
        assert set(multi) == {"selection"}
        assert set(multi["selection"]) == {1, 10, 60}
        assert multi["selection"][60]["count"] == 1

    def test_per_class_slo_policy_applies(self):
        registry = WindowRegistry()
        registry.set_slo("selection", SloPolicy(latency_seconds=0.001,
                                                error_budget=1.0))
        registry.observe("selection", 0.5, now=NOW)  # slow under this SLO
        stats = registry.stats(window=10, now=NOW)
        assert stats["selection"]["slo_burn"] == pytest.approx(1.0)

    def test_concurrent_observe_and_absorb_lose_nothing(self):
        # The serving parent absorbs worker snapshots while its own
        # thread keeps observing; every observation must survive.
        registry = WindowRegistry()
        rounds, per_thread = 8, 50

        def absorb_worker():
            for _ in range(rounds):
                worker = WindowRegistry()
                for _ in range(per_thread):
                    worker.observe("selection", 0.01, now=NOW)
                registry.absorb(worker.snapshot(now=NOW), now=NOW)

        def observe_directly():
            for _ in range(rounds * per_thread):
                registry.observe("selection", 0.02, now=NOW)

        threads = [
            threading.Thread(target=absorb_worker),
            threading.Thread(target=absorb_worker),
            threading.Thread(target=observe_directly),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = registry.stats(window=10, now=NOW)
        assert stats["selection"]["count"] == 3 * rounds * per_thread


class TestMergeSnapshots:
    def _snapshot(self, *observations):
        registry = WindowRegistry()
        for query_class, seconds, error, now in observations:
            registry.observe(query_class, seconds, error=error, now=now)
        return registry.snapshot(now=NOW)

    def test_merge_sums_per_epoch(self):
        left = self._snapshot(("selection", 0.01, False, NOW))
        right = self._snapshot(("selection", 0.02, True, NOW))
        merged = merge_window_snapshots(left, right)
        (row,) = merged["classes"]["selection"]
        assert row[1] == 2 and row[2] == 1
        assert row[3] == pytest.approx(0.03)

    def test_merge_keeps_distinct_epochs_and_classes(self):
        left = self._snapshot(("selection", 0.01, False, NOW))
        right = self._snapshot(("join", 0.02, False, NOW - 5))
        merged = merge_window_snapshots(left, right)
        assert set(merged["classes"]) == {"join", "selection"}

    def test_merge_is_commutative(self):
        left = self._snapshot(("selection", 0.01, False, NOW),
                              ("join", 0.5, True, NOW - 2))
        right = self._snapshot(("selection", 0.03, False, NOW - 1))
        assert merge_window_snapshots(left, right) == merge_window_snapshots(
            right, left
        )

    def test_merge_does_not_mutate_inputs(self):
        left = self._snapshot(("selection", 0.01, False, NOW))
        right = self._snapshot(("selection", 0.02, False, NOW))
        import copy

        left_before = copy.deepcopy(left)
        right_before = copy.deepcopy(right)
        merge_window_snapshots(left, right)
        assert left == left_before and right == right_before

    def test_absorbing_merged_equals_absorbing_both(self):
        left = self._snapshot(("selection", 0.01, False, NOW))
        right = self._snapshot(("selection", 0.04, True, NOW - 2))

        via_merge = WindowRegistry()
        via_merge.absorb(merge_window_snapshots(left, right), now=NOW)
        one_by_one = WindowRegistry()
        one_by_one.absorb(left, now=NOW)
        one_by_one.absorb(right, now=NOW)
        assert via_merge.stats(window=10, now=NOW) == one_by_one.stats(
            window=10, now=NOW
        )

    def test_default_horizon_spans_standard_windows(self):
        assert DEFAULT_HORIZON_SECONDS >= 60
