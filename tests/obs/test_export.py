"""Unit tests for telemetry export (repro.obs.export)."""

import json
import math

import pytest

from repro.obs.export import (
    format_status_line,
    metric_name,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.window import WindowRegistry

NOW = 1_700_000_000


@pytest.fixture
def snapshot():
    registry = MetricsRegistry()
    registry.counter("executor.queries").inc(7)
    registry.gauge("pool.workers").set(4)
    registry.histogram("executor.seconds", [0.1, 1.0]).observe(0.05)
    registry.histogram("executor.seconds").observe(0.5)
    return registry.snapshot()


@pytest.fixture
def window_stats():
    windows = WindowRegistry()
    windows.observe("selection", 0.01, now=NOW)
    windows.observe("join", 0.2, error=True, now=NOW)
    return windows.multi_stats(now=NOW)


class TestMetricName:
    def test_dots_become_underscores_with_namespace(self):
        assert metric_name("executor.query_seconds") == (
            "toss_executor_query_seconds"
        )

    def test_empty_namespace_drops_prefix(self):
        assert metric_name("a.b", namespace="") == "a_b"

    def test_leading_digit_gets_guarded(self):
        assert metric_name("1xx", namespace="")[0] not in "0123456789"


class TestRenderPrometheus:
    def test_counter_total_suffix_and_value(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE toss_executor_queries_total counter" in text
        assert "toss_executor_queries_total 7" in text

    def test_gauge(self, snapshot):
        text = render_prometheus(snapshot)
        assert "toss_pool_workers 4" in text

    def test_histogram_buckets_are_cumulative(self, snapshot):
        text = render_prometheus(snapshot)
        assert 'toss_executor_seconds_bucket{le="0.1"} 1' in text
        assert 'toss_executor_seconds_bucket{le="1"} 2' in text
        assert 'toss_executor_seconds_bucket{le="+Inf"} 2' in text
        assert "toss_executor_seconds_count 2" in text

    def test_window_gauges_labelled_by_class_and_window(
        self, snapshot, window_stats
    ):
        text = render_prometheus(snapshot, window_stats)
        assert (
            'toss_window_qps{class="selection",window="10s"} 0.1' in text
        )
        assert 'toss_window_error_rate{class="join",window="1s"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""


class TestRoundTrip:
    def test_every_sample_survives_parse(self, snapshot, window_stats):
        text = render_prometheus(snapshot, window_stats)
        families = parse_prometheus(text)
        assert families["toss_executor_queries_total"]["type"] == "counter"
        assert families["toss_executor_queries_total"]["samples"] == [
            ({}, 7.0)
        ]
        buckets = families["toss_executor_seconds_bucket"]
        assert buckets["type"] == "histogram"
        inf_samples = [
            value for labels, value in buckets["samples"]
            if labels["le"] == "+Inf"
        ]
        assert inf_samples == [2.0]
        qps = families["toss_window_qps"]["samples"]
        assert ({"class": "selection", "window": "10s"}, 0.1) in qps

    def test_label_escaping_round_trips(self):
        windows = WindowRegistry()
        windows.observe('we"ird\\class', 0.01, now=NOW)
        text = render_prometheus({}, windows.multi_stats(now=NOW))
        families = parse_prometheus(text)
        classes = {
            labels["class"]
            for labels, _ in families["toss_window_requests"]["samples"]
        }
        assert 'we"ird\\class' in classes

    def test_inf_value_parses(self):
        families = parse_prometheus('x_bucket{le="+Inf"} +Inf\n')
        ((labels, value),) = families["x_bucket"]["samples"]
        assert math.isinf(value)

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is { not exposition format\n")


class TestRenderJson:
    def test_payload_shape(self, snapshot, window_stats):
        payload = json.loads(render_json(snapshot, window_stats))
        assert payload["format"] == 1
        assert payload["metrics"]["executor.queries"]["value"] == 7
        assert payload["windows"]["selection"]["10"]["count"] == 1

    def test_window_slots_attach_when_given(self, snapshot):
        windows = WindowRegistry()
        windows.observe("selection", 0.01, now=NOW)
        payload = json.loads(
            render_json(snapshot, window_snapshot=windows.snapshot(now=NOW))
        )
        assert payload["window_slots"]["classes"]["selection"]


class TestStatusLine:
    def test_quiet_registry_reports_no_traffic(self):
        assert format_status_line({}) == "[10s] (no traffic)"

    def test_line_shows_each_active_class(self, window_stats):
        line = format_status_line(window_stats, window=10)
        assert line.startswith("[10s] ")
        assert "selection qps=0.1" in line
        assert "join" in line
        assert "p95=" in line and "burn=" in line

    def test_latencies_format_ms_vs_seconds(self):
        windows = WindowRegistry()
        windows.observe("slow", 3.0, now=NOW)
        line = format_status_line(windows.multi_stats(now=NOW), window=10)
        assert "s" in line.split("p50=")[1]
