"""Unit tests for the metrics registry (repro.obs.metrics)."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    merge_snapshots,
    render_snapshot_text,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounterAndGauge:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert registry.counter("c").value == 5  # get-or-create: same object

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_kind_conflict_raises(self, registry):
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")
        with pytest.raises(ValueError):
            registry.histogram("m")


class TestHistogramBucketEdges:
    def test_value_at_bound_lands_in_that_bucket(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        hist.observe(1.0)  # le semantics: exactly at the first bound
        hist.observe(2.0)
        assert hist.counts == [1, 1, 0, 0]

    def test_value_between_bounds_lands_in_upper(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        hist.observe(1.5)
        hist.observe(4.999)
        assert hist.counts == [0, 1, 1, 0]

    def test_value_above_every_bound_lands_in_overflow(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1000)
        assert hist.counts == [0, 0, 1]
        assert hist.bucket_counts()["+Inf"] == 1

    def test_default_time_bucket_edges(self):
        hist = Histogram("h", bounds=DEFAULT_TIME_BUCKETS)
        hist.observe(0.0005)  # first bound exactly
        hist.observe(0.00051)  # just past it
        hist.observe(999)  # beyond 30s
        assert hist.counts[0] == 1
        assert hist.counts[1] == 1
        assert hist.counts[-1] == 1

    def test_sum_count_mean(self):
        hist = Histogram("h", bounds=DEFAULT_COUNT_BUCKETS)
        hist.observe(10)
        hist.observe(30)
        assert hist.count == 2
        assert hist.sum == 40
        assert hist.mean == 20

    def test_empty_or_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))


class TestDisabledRegistry:
    def test_disabled_hands_out_shared_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NULL_INSTRUMENT
        assert registry.gauge("b") is NULL_INSTRUMENT
        assert registry.histogram("c") is NULL_INSTRUMENT

    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc(100)
        registry.histogram("c").observe(1.0)
        assert registry.names() == []
        assert registry.snapshot() == {}

    def test_flipping_enabled_takes_effect_immediately(self, registry):
        registry.counter("a").inc()
        registry.enabled = False
        registry.counter("a").inc(100)  # null instrument: dropped
        registry.enabled = True
        assert registry.counter("a").value == 1


class TestSnapshots:
    def test_snapshot_is_sorted_and_json_ready(self, registry):
        registry.counter("z").inc()
        registry.gauge("a").set(3)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "z"]
        assert snapshot["z"] == {"type": "counter", "value": 1}

    def test_merge_counters_add(self):
        base = {"c": {"type": "counter", "value": 3}}
        update = {"c": {"type": "counter", "value": 4}}
        assert merge_snapshots(base, update)["c"]["value"] == 7

    def test_merge_gauges_take_newer(self):
        base = {"g": {"type": "gauge", "value": 3}}
        update = {"g": {"type": "gauge", "value": 4}}
        assert merge_snapshots(base, update)["g"]["value"] == 4

    def test_merge_histograms_add_counts_and_sums(self):
        entry = {
            "type": "histogram", "bounds": [1.0, 2.0],
            "counts": [1, 2, 3], "sum": 10.0, "count": 6,
        }
        merged = merge_snapshots({"h": entry}, {"h": dict(entry)})
        assert merged["h"]["counts"] == [2, 4, 6]
        assert merged["h"]["sum"] == 20.0
        assert merged["h"]["count"] == 12

    def test_merge_mismatched_shapes_keep_newer(self):
        base = {"m": {"type": "counter", "value": 3}}
        update = {"m": {"type": "gauge", "value": 4}}
        assert merge_snapshots(base, update)["m"]["type"] == "gauge"
        base = {"h": {"type": "histogram", "bounds": [1.0],
                      "counts": [0, 1], "sum": 2.0, "count": 1}}
        update = {"h": {"type": "histogram", "bounds": [5.0],
                        "counts": [1, 0], "sum": 3.0, "count": 1}}
        assert merge_snapshots(base, update)["h"]["bounds"] == [5.0]

    def test_merge_leaves_inputs_unchanged(self):
        base = {"c": {"type": "counter", "value": 1}}
        update = {"c": {"type": "counter", "value": 1}}
        merge_snapshots(base, update)
        assert base["c"]["value"] == 1 and update["c"]["value"] == 1

    def test_render_text(self, registry):
        assert render_snapshot_text({}) == "(no metrics recorded)"
        registry.counter("queries").inc(2)
        registry.histogram("seconds").observe(0.5)
        text = registry.render_text()
        assert "queries" in text and "value=2" in text
        assert "seconds" in text and "count=1" in text


class TestAbsorb:
    """Worker-snapshot absorption (the serving layer's metrics merge)."""

    def test_counters_add_gauges_overwrite(self, registry):
        registry.counter("c").inc(3)
        registry.gauge("g").set(1)
        registry.absorb({
            "c": {"type": "counter", "value": 4},
            "g": {"type": "gauge", "value": 9},
        })
        assert registry.counter("c").value == 7
        assert registry.gauge("g").value == 9

    def test_histograms_add(self, registry):
        registry.histogram("h", [1.0, 2.0]).observe(0.5)
        registry.absorb({
            "h": {
                "type": "histogram", "bounds": [1.0, 2.0],
                "counts": [1, 2, 3], "sum": 10.0, "count": 6,
            }
        })
        histogram = registry.get("h")
        assert histogram.counts == [2, 2, 3]
        assert histogram.sum == 10.5
        assert histogram.count == 7

    def test_new_instruments_are_created(self, registry):
        registry.absorb({"fresh": {"type": "counter", "value": 2}})
        assert registry.counter("fresh").value == 2

    def test_disabled_registry_absorbs_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.absorb({"c": {"type": "counter", "value": 2}})
        registry.enabled = True
        assert registry.get("c") is None

    def test_malformed_entries_cannot_wedge_the_registry(self, registry):
        registry.counter("ok").inc()
        registry.absorb({
            "bad-kind": {"type": "mystery", "value": 1},
            "bad-value": {"type": "counter", "value": "NaN-ish"},
            "bad-bounds": {
                "type": "histogram", "bounds": [2.0, 1.0, 2.0],
                "counts": [1, 1, 1], "sum": 1.0, "count": 3,
            },
            "mismatched-counts": {
                "type": "histogram", "bounds": [1.0],
                "counts": [1], "sum": 1.0, "count": 1,
            },
            "still-ok": {"type": "counter", "value": 5},
        })
        assert registry.counter("ok").value == 1
        assert registry.counter("still-ok").value == 5

    def test_type_conflicts_are_skipped(self, registry):
        registry.counter("c").inc()
        registry.absorb({"c": {"type": "gauge", "value": 9}})
        assert registry.counter("c").value == 1

    def test_concurrent_absorb_loses_no_updates(self, registry):
        # The serving parent absorbs worker deltas from its supervisor
        # thread while the main thread records its own metrics; nothing
        # may be lost and instrument creation must never race into
        # duplicates.
        rounds, per_round = 20, 10
        delta = {
            "shared.counter": {"type": "counter", "value": per_round},
            "shared.hist": {
                "type": "histogram", "bounds": [1.0, 2.0],
                "counts": [per_round, 0, 0],
                "sum": 0.5 * per_round, "count": per_round,
            },
        }

        def absorb_deltas():
            for _ in range(rounds):
                registry.absorb(delta)

        def record_directly():
            for _ in range(rounds * per_round):
                registry.counter("shared.counter").inc()
                registry.histogram("shared.hist", [1.0, 2.0]).observe(0.5)

        threads = [
            threading.Thread(target=absorb_deltas),
            threading.Thread(target=absorb_deltas),
            threading.Thread(target=record_directly),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 3 * rounds * per_round
        assert registry.counter("shared.counter").value == expected
        histogram = registry.get("shared.hist")
        assert histogram.count == expected
        assert histogram.counts[0] == expected
