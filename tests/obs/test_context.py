"""Unit tests for request identity propagation (repro.obs.context)."""

import pytest

from repro.obs.context import (
    RequestContext,
    _ACTIVE,
    activate,
    current_request,
    new_request_id,
)


class TestRequestId:
    def test_sixteen_hex_chars(self):
        rid = new_request_id()
        assert len(rid) == 16
        int(rid, 16)  # must be hex

    def test_ids_do_not_repeat(self):
        assert len({new_request_id() for _ in range(100)}) == 100


class TestWireForm:
    def test_round_trip_preserves_every_field(self):
        context = RequestContext(
            request_id="abc123",
            tenant="acme",
            query_class="join",
            deadline_seconds=1.5,
        )
        assert RequestContext.from_wire(context.to_wire()) == context

    def test_minimal_wire_omits_unset_fields(self):
        context = RequestContext.mint()
        wire = context.to_wire()
        assert list(wire) == ["id"]
        assert RequestContext.from_wire(wire) == context

    @pytest.mark.parametrize(
        "garbage",
        [None, 42, "a-string", [], {}, {"id": None}, {"id": ""}, {"id": 7}],
    )
    def test_from_wire_tolerates_garbage(self, garbage):
        assert RequestContext.from_wire(garbage) is None

    def test_from_wire_coerces_deadline(self):
        context = RequestContext.from_wire({"id": "x", "deadline": "2"})
        assert context.deadline_seconds == 2.0

    def test_context_is_immutable(self):
        context = RequestContext.mint()
        with pytest.raises(AttributeError):
            context.tenant = "other"


class TestActivation:
    def test_no_ambient_context_by_default(self):
        assert current_request() is None

    def test_activate_makes_context_ambient(self):
        context = RequestContext.mint()
        with activate(context):
            assert current_request() is context
        assert current_request() is None

    def test_nested_activation_restores_outer(self):
        outer, inner = RequestContext.mint(), RequestContext.mint()
        with activate(outer):
            with activate(inner):
                assert current_request() is inner
            assert current_request() is outer

    def test_activate_none_is_a_no_op_block(self):
        with activate(None) as handle:
            assert handle is None
            assert current_request() is None

    def test_exception_still_pops_the_stack(self):
        context = RequestContext.mint()
        with pytest.raises(RuntimeError):
            with activate(context):
                raise RuntimeError("boom")
        assert current_request() is None
        assert context not in _ACTIVE

    def test_leaked_inner_context_does_not_block_removal(self):
        # A nested block that leaks (exits without popping, simulated by
        # pushing directly) must not stop the outer activate's cleanup.
        outer = RequestContext.mint()
        leaked = RequestContext.mint()
        with activate(outer):
            _ACTIVE.append(leaked)
        assert outer not in _ACTIVE
        assert current_request() is leaked
        _ACTIVE.remove(leaked)
