"""Observability wiring: sinks under a root, and the executor integration."""

import json

import pytest

from repro.core.conditions import SeoConditionContext
from repro.core.executor import ExecutionReport, QueryExecutor
from repro.core.parser import parse_query
from repro.guard import ResourceGuard
from repro.obs import (
    DEFAULT_SLOW_QUERY_SECONDS,
    NULL_OBSERVABILITY,
    Observability,
    for_root,
    obs_directory,
)
from repro.obs.trace import NULL_TRACER
from repro.ontology import Hierarchy
from repro.similarity.measures import Levenshtein
from repro.similarity.seo import SimilarityEnhancedOntology
from repro.xmldb.database import Database

DBLP = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <title>Paper One</title>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <title>Paper Two</title>
    <booktitle>VLDB</booktitle>
  </inproceedings>
</dblp>
"""


@pytest.fixture
def executor_factory():
    def build(observability=None):
        database = Database()
        database.create_collection("dblp").add_document("d", DBLP)
        hierarchy = Hierarchy(
            [("J. Smith", "author"), ("J. Smyth", "author"),
             ("SIGMOD Conference", "database conference")]
        )
        seo = SimilarityEnhancedOntology.for_hierarchy(
            hierarchy, Levenshtein(), 1.0
        )
        return QueryExecutor(
            database, SeoConditionContext(seo), observability=observability
        )

    return build


class TestObservabilityConfig:
    def test_disabled_is_the_default_and_allocates_nothing(self):
        assert NULL_OBSERVABILITY.tracer() is NULL_TRACER
        assert NULL_OBSERVABILITY.record_query("selection") is False
        assert NULL_OBSERVABILITY.flush_metrics() is None

    def test_enabled_without_directory_traces_in_memory(self):
        obs = Observability(enabled=True)
        tracer = obs.tracer()
        assert tracer is not NULL_TRACER
        assert obs.event_log is None and obs.slow_log is None
        assert obs.record_query("selection", total_seconds=10.0) is False

    def test_for_root_lays_out_the_obs_directory(self, tmp_path):
        obs = for_root(tmp_path, slow_query_seconds=0.0)
        assert obs.slow_query_seconds == 0.0
        captured = obs.record_query(
            "selection", query="q", total_seconds=0.01,
            trace={"name": "query.selection", "seconds": 0.01},
            plan_lines=["tag in {inproceedings}"],
        )
        assert captured is True
        directory = obs_directory(tmp_path)
        events = (directory / "events.jsonl").read_text().splitlines()
        assert json.loads(events[0])["event"] == "selection"
        slow = json.loads(
            (directory / "slow_queries.jsonl").read_text().splitlines()[0]
        )
        assert slow["trace"]["name"] == "query.selection"
        assert slow["plan"] == ["tag in {inproceedings}"]

    def test_slow_log_gated_by_default_threshold(self, tmp_path):
        obs = for_root(tmp_path)
        assert obs.record_query(
            "selection", total_seconds=DEFAULT_SLOW_QUERY_SECONDS / 2
        ) is False
        assert obs.record_query(
            "selection", total_seconds=DEFAULT_SLOW_QUERY_SECONDS
        ) is True

    def test_flush_metrics_merges_to_disk(self, tmp_path):
        obs = for_root(tmp_path)
        obs.registry.counter("test.flush").inc(2)
        try:
            snapshot = obs.flush_metrics()
            assert snapshot["test.flush"]["value"] >= 2
        finally:
            obs.registry._instruments.pop("test.flush", None)


class TestExecutorIntegration:
    QUERY = 'inproceedings(author ~ "J. Smith")'

    def test_trace_attached_with_expected_stages(self, executor_factory):
        executor = executor_factory(Observability(enabled=True))
        parsed = parse_query(self.QUERY)
        report = executor.selection("dblp", parsed.pattern, sl_labels=[1])
        trace = report.trace
        assert trace["name"] == "query.selection"
        stages = [child["name"] for child in trace["children"]]
        assert stages == ["rewrite", "plan", "xpath", "verify"]
        assert trace["attributes"]["results"] == len(report.results)

    def test_stage_durations_sum_to_wall_time(self, executor_factory):
        executor = executor_factory(Observability(enabled=True))
        parsed = parse_query(self.QUERY)
        report = executor.selection("dblp", parsed.pattern, sl_labels=[1])
        trace = report.trace
        stage_sum = sum(c["seconds"] for c in trace["children"])
        # The four phases cover the whole query: anything outside them is
        # loop scaffolding, bounded well under half the wall time.
        assert stage_sum <= trace["seconds"] + 1e-6
        assert stage_sum >= trace["seconds"] * 0.5

    def test_disabled_observability_leaves_no_trace(self, executor_factory):
        executor = executor_factory(None)
        parsed = parse_query(self.QUERY)
        report = executor.selection("dblp", parsed.pattern, sl_labels=[1])
        assert report.trace is None

    def test_guard_stage_ticks_sum_to_total(self, executor_factory):
        executor = executor_factory(Observability(enabled=True))
        parsed = parse_query(self.QUERY)
        guard = ResourceGuard(max_steps=10**9)
        report = executor.selection(
            "dblp", parsed.pattern, sl_labels=[1], guard=guard
        )
        assert guard.steps > 0
        assert sum(guard.stage_steps.values()) == guard.steps
        assert report.trace["attributes"]["guard_steps"] == guard.steps
        assert report.trace["attributes"]["guard_stages"] == guard.stage_steps

    def test_slow_query_capture_from_executor(self, executor_factory, tmp_path):
        obs = for_root(tmp_path, slow_query_seconds=0.0)
        executor = executor_factory(obs)
        parsed = parse_query(self.QUERY)
        executor.selection("dblp", parsed.pattern, sl_labels=[1])
        entries = obs.slow_log.read()
        assert len(entries) == 1
        assert entries[0]["event"] == "selection"
        assert entries[0]["trace"]["name"] == "query.selection"
