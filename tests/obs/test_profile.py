"""Unit tests for the sampling profiler (repro.obs.profile)."""

import threading
import time

import pytest

from repro.obs.profile import IDLE_PHASE, SamplingProfiler
from repro.obs.trace import Tracer


def _spin(seconds):
    deadline = time.perf_counter() + seconds
    value = 0
    while time.perf_counter() < deadline:
        value += 1
    return value


class TestLifecycle:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(hz=200)
        assert profiler.start() is profiler
        assert profiler.start() is profiler  # already running: no-op
        assert profiler.running
        profiler.stop()
        profiler.stop()
        assert not profiler.running

    def test_context_manager_stops_on_exit(self):
        with SamplingProfiler(hz=200) as profiler:
            assert profiler.running
        assert not profiler.running

    def test_elapsed_accumulates_across_sessions(self):
        profiler = SamplingProfiler(hz=500)
        with profiler:
            _spin(0.02)
        first = profiler.elapsed_seconds()
        with profiler:
            _spin(0.02)
        assert profiler.elapsed_seconds() > first


class TestSampling:
    def test_busy_loop_is_sampled(self):
        with SamplingProfiler(hz=500) as profiler:
            _spin(0.2)
        assert profiler.total_samples > 0
        rows = profiler.aggregate(top=5)
        assert rows
        assert any("_spin" in row["stack"] for row in rows)
        assert rows[0]["phase"] == IDLE_PHASE  # no tracer active

    def test_phase_attribution_reads_open_span(self):
        tracer = Tracer(enabled=True)
        with SamplingProfiler(hz=500) as profiler:
            with tracer.trace("query.selection"):
                with tracer.span("verify"):
                    _spin(0.2)
        phases = profiler.phase_seconds()
        assert "verify" in phases
        assert phases["verify"] > 0

    def test_aggregate_fractions_sum_to_one(self):
        with SamplingProfiler(hz=500) as profiler:
            _spin(0.2)
        rows = profiler.aggregate(top=None)
        assert sum(row["fraction"] for row in rows) == pytest.approx(
            1.0, abs=0.01
        )

    def test_samples_target_the_starting_thread_only(self):
        # A profiler started from this thread must not attribute the
        # spinner thread's stack frames.
        stop = threading.Event()
        spinner = threading.Thread(
            target=lambda: [_spin(0.01) for _ in iter(stop.is_set, True)],
            daemon=True,
        )
        spinner.start()
        try:
            with SamplingProfiler(hz=500) as profiler:
                time.sleep(0.1)  # this thread sleeps; spinner burns CPU
        finally:
            stop.set()
            spinner.join(timeout=2.0)
        for row in profiler.aggregate(top=None):
            assert "sleep" in row["stack"] or "_spin" not in row["stack"]


class TestExemplar:
    def test_take_exemplar_reports_and_drains(self):
        with SamplingProfiler(hz=500) as profiler:
            _spin(0.2)
        exemplar = profiler.take_exemplar(top=3)
        assert exemplar["hz"] == 500
        assert exemplar["samples"] > 0
        assert exemplar["phase_seconds"]
        assert len(exemplar["hotspots"]) <= 3
        # Drained: the next exemplar starts from zero.
        assert profiler.take_exemplar()["samples"] == 0
        assert profiler.total_samples == 0

    def test_estimated_seconds_roughly_match_wall_clock(self):
        with SamplingProfiler(hz=500) as profiler:
            _spin(0.3)
        total = sum(profiler.take_exemplar()["phase_seconds"].values())
        # Sampling is stochastic; the estimate must be the right order of
        # magnitude, not exact.
        assert 0.03 <= total <= 1.0
