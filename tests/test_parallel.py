"""The parallel edge-computation layer: options, partitioning, guards."""

import pytest

from repro.errors import QueryTimeoutError, ResourceExhaustedError
from repro.guard import ResourceGuard
from repro.parallel import (
    BuildOptions,
    SERIAL_OPTIONS,
    parallel_group_edges,
    partition_blocks,
    should_parallelize,
)
from repro.similarity.candidates import block_edges, length_sorted_order
from repro.similarity.measures import get_measure


class TestBuildOptions:
    def test_defaults_are_serial(self):
        assert SERIAL_OPTIONS.workers == 1
        assert SERIAL_OPTIONS.candidate_filter is True

    @pytest.mark.parametrize("workers", [0, -1])
    def test_invalid_workers_raise(self, workers):
        with pytest.raises(ValueError):
            BuildOptions(workers=workers)

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError):
            BuildOptions(parallel_threshold=-1)

    def test_with_overrides(self):
        base = BuildOptions(workers=2, candidate_filter=True)
        assert base.with_overrides() == base
        overridden = base.with_overrides(
            workers=4, candidate_filter=False, parallel_threshold=10
        )
        assert overridden.workers == 4
        assert overridden.candidate_filter is False
        assert overridden.parallel_threshold == 10
        # The original is frozen and untouched.
        assert base.workers == 2


class TestShouldParallelize:
    def test_requires_multiple_workers(self):
        assert not should_parallelize(SERIAL_OPTIONS, "levenshtein", 10**9)

    def test_requires_named_measure(self):
        options = BuildOptions(workers=4, parallel_threshold=0)
        assert not should_parallelize(options, "", 10**9)

    def test_requires_enough_pairs(self):
        options = BuildOptions(workers=4, parallel_threshold=100)
        assert not should_parallelize(options, "levenshtein", 99)
        assert should_parallelize(options, "levenshtein", 100)


class TestPartitionBlocks:
    def assert_partition(self, group_sizes, workers):
        assignments = partition_blocks(group_sizes, workers)
        assert len(assignments) == workers
        seen = {}
        for worker_blocks in assignments:
            for block_id, group_id, lo, hi in worker_blocks:
                assert 0 <= lo < hi <= group_sizes[group_id]
                seen.setdefault(group_id, []).append((lo, hi))
        for group_id, size in group_sizes.items():
            if size < 2:
                assert group_id not in seen
                continue
            spans = sorted(seen[group_id])
            # Blocks tile [0, size) exactly: disjoint and complete.
            assert spans[0][0] == 0
            assert spans[-1][1] == size
            for (_, prev_hi), (next_lo, _) in zip(spans, spans[1:]):
                assert prev_hi == next_lo

    def test_partitions_tile_every_group(self):
        self.assert_partition({0: 10, 1: 3, 2: 57}, workers=4)
        self.assert_partition({0: 2}, workers=8)
        self.assert_partition({5: 100}, workers=1)

    def test_trivial_groups_are_skipped(self):
        assert partition_blocks({0: 0, 1: 1}, workers=2) == [[], []]

    def test_deterministic(self):
        sizes = {0: 31, 1: 8}
        assert partition_blocks(sizes, 3) == partition_blocks(sizes, 3)


class TestParallelGroupEdges:
    def serial_edges(self, groups, epsilon):
        measure = get_measure("levenshtein")
        result = {}
        for gid, reps in groups.items():
            order = length_sorted_order(reps)
            edges, _ = block_edges(
                reps, order, measure, epsilon, 0, len(reps)
            )
            result[gid] = edges
        return result

    def test_matches_serial(self):
        groups = {
            0: ["paper", "papers", "pattern", "query", "queries"],
            1: ["toss", "tax", "tossed"],
            2: ["x"],
        }
        options = BuildOptions(workers=2, parallel_threshold=0)
        edges, stats = parallel_group_edges(
            groups, "levenshtein", 2.0, options
        )
        assert edges == self.serial_edges(groups, 2.0)
        assert stats.blocks >= 1

    def test_empty_groups(self):
        options = BuildOptions(workers=2, parallel_threshold=0)
        edges, stats = parallel_group_edges({}, "levenshtein", 1.0, options)
        assert edges == {}
        assert stats.blocks == 0

    def test_exhausted_deadline_raises_through_pool(self):
        guard = ResourceGuard(deadline_seconds=0.0)
        guard.start()
        options = BuildOptions(workers=2, parallel_threshold=0)
        with pytest.raises(QueryTimeoutError):
            parallel_group_edges(
                {0: ["alpha", "beta", "gamma", "delta"]},
                "levenshtein",
                2.0,
                options,
                guard=guard,
            )

    def test_step_budget_raises_through_pool(self):
        guard = ResourceGuard(max_steps=1)
        guard.start()
        options = BuildOptions(workers=2, parallel_threshold=0)
        groups = {0: [f"word{i:03d}" for i in range(40)]}
        with pytest.raises(ResourceExhaustedError):
            parallel_group_edges(
                groups, "levenshtein", 3.0, options, guard=guard
            )

    def test_parent_guard_absorbs_worker_steps(self):
        guard = ResourceGuard(max_steps=10**9)
        guard.start()
        options = BuildOptions(workers=2, parallel_threshold=0)
        parallel_group_edges(
            {0: ["paper", "papers", "pattern"]},
            "levenshtein",
            2.0,
            options,
            guard=guard,
        )
        assert guard.steps > 0
