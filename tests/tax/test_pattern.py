"""Unit tests for pattern trees (Definition 2)."""

import pytest

from repro.errors import PatternTreeError
from repro.tax.pattern import AD, PC, PatternTree, pattern_of


class TestConstruction:
    def test_first_node_is_root(self):
        pattern = PatternTree()
        pattern.add_node(1)
        assert pattern.root == 1

    def test_children_recorded_in_order(self):
        pattern = PatternTree()
        pattern.add_node(1)
        pattern.add_node(2, parent=1)
        pattern.add_node(3, parent=1, edge=AD)
        assert [n.label for n in pattern.children(1)] == [2, 3]
        assert pattern.node(3).edge == AD
        assert pattern.node(2).edge == PC

    def test_duplicate_label_rejected(self):
        pattern = PatternTree()
        pattern.add_node(1)
        with pytest.raises(PatternTreeError):
            pattern.add_node(1, parent=1)

    def test_second_root_rejected(self):
        pattern = PatternTree()
        pattern.add_node(1)
        with pytest.raises(PatternTreeError):
            pattern.add_node(2)

    def test_parent_must_exist(self):
        pattern = PatternTree()
        pattern.add_node(1)
        with pytest.raises(PatternTreeError):
            pattern.add_node(2, parent=9)

    def test_bad_edge_kind(self):
        pattern = PatternTree()
        pattern.add_node(1)
        with pytest.raises(PatternTreeError):
            pattern.add_node(2, parent=1, edge="sibling")

    def test_empty_pattern_root_raises(self):
        with pytest.raises(PatternTreeError):
            PatternTree().root

    def test_unknown_label(self):
        pattern = PatternTree()
        pattern.add_node(1)
        with pytest.raises(PatternTreeError):
            pattern.node(7)

    def test_bulk_constructor(self):
        pattern = pattern_of([(1, None, PC), (2, 1, PC), (3, 2, AD)])
        assert len(pattern) == 3
        assert pattern.node(3).parent == 2


class TestTraversal:
    def test_preorder(self):
        pattern = pattern_of(
            [(1, None, PC), (2, 1, PC), (4, 2, PC), (3, 1, PC)]
        )
        assert [n.label for n in pattern.preorder()] == [1, 2, 4, 3]

    def test_labels_insertion_order(self):
        pattern = pattern_of([(5, None, PC), (2, 5, PC)])
        assert pattern.labels() == [5, 2]

    def test_validate_ok(self):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.validate()

    def test_validate_empty_raises(self):
        with pytest.raises(PatternTreeError):
            PatternTree().validate()

    def test_default_condition_is_true(self):
        pattern = pattern_of([(1, None, PC)])
        assert pattern.condition.evaluate({})
