"""Unit tests for the TAX condition language."""

import pytest

from repro.errors import ConditionError
from repro.tax.conditions import (
    And,
    Comparison,
    ConditionContext,
    Constant,
    Contains,
    NodeContent,
    NodeTag,
    Not,
    Or,
    TrueCondition,
    required_tags,
)
from repro.xmldb.model import build


@pytest.fixture
def binding():
    paper = build(
        "inproceedings",
        build("author", "Jeffrey D. Ullman"),
        build("year", "1999"),
    )
    paper.renumber()
    return {1: paper, 2: paper.children[0], 3: paper.children[1]}


class TestTerms:
    def test_node_tag_resolves(self, binding):
        assert NodeTag(2).resolve(binding) == "author"

    def test_node_content_resolves(self, binding):
        assert NodeContent(2).resolve(binding) == "Jeffrey D. Ullman"

    def test_constant(self, binding):
        assert Constant("x").resolve(binding) == "x"
        assert Constant("x").labels() == set()

    def test_unbound_label_raises(self, binding):
        with pytest.raises(ConditionError):
            NodeTag(9).resolve(binding)

    def test_term_equality(self):
        assert NodeTag(1) == NodeTag(1)
        assert NodeTag(1) != NodeContent(1)
        assert Constant("a") == Constant("a")
        assert Constant("a", "year") != Constant("a")


class TestComparison:
    def test_equality(self, binding):
        condition = Comparison("=", NodeTag(2), Constant("author"))
        assert condition.evaluate(binding)

    def test_inequality(self, binding):
        assert Comparison("!=", NodeTag(2), Constant("title")).evaluate(binding)

    def test_numeric_coercion(self, binding):
        assert Comparison("<=", NodeContent(3), Constant("2000")).evaluate(binding)
        assert not Comparison(">", NodeContent(3), Constant("2000")).evaluate(binding)

    def test_string_fallback_for_non_numeric(self, binding):
        condition = Comparison("<", NodeContent(2), Constant("Z"))
        assert condition.evaluate(binding)  # lexicographic

    def test_invalid_operator(self):
        with pytest.raises(ConditionError):
            Comparison("~", NodeTag(1), Constant("x"))

    def test_labels(self):
        condition = Comparison("=", NodeTag(1), NodeContent(2))
        assert condition.labels() == {1, 2}


class TestBooleanConnectives:
    def test_and_or_not(self, binding):
        tag_ok = Comparison("=", NodeTag(2), Constant("author"))
        year_no = Comparison("=", NodeContent(3), Constant("1883"))
        assert And(tag_ok, Not(year_no)).evaluate(binding)
        assert Or(year_no, tag_ok).evaluate(binding)
        assert not And(tag_ok, year_no).evaluate(binding)

    def test_operator_overloads(self, binding):
        tag_ok = Comparison("=", NodeTag(2), Constant("author"))
        year_no = Comparison("=", NodeContent(3), Constant("1883"))
        assert (tag_ok & ~year_no).evaluate(binding)
        assert (year_no | tag_ok).evaluate(binding)

    def test_arity_enforced(self):
        only = Comparison("=", NodeTag(1), Constant("x"))
        with pytest.raises(ConditionError):
            And(only)
        with pytest.raises(ConditionError):
            Or(only)

    def test_labels_union(self, binding):
        condition = And(
            Comparison("=", NodeTag(1), Constant("a")),
            Or(
                Comparison("=", NodeTag(2), Constant("b")),
                Comparison("=", NodeContent(3), Constant("c")),
            ),
        )
        assert condition.labels() == {1, 2, 3}


class TestContains:
    def test_case_insensitive(self, binding):
        assert Contains(NodeContent(2), Constant("ullman")).evaluate(binding)

    def test_negative(self, binding):
        assert not Contains(NodeContent(2), Constant("ciancarini")).evaluate(binding)


class TestSemanticOpsRejectedByBaseContext:
    def test_similar_raises(self):
        with pytest.raises(ConditionError):
            ConditionContext().similar("a", "b")

    @pytest.mark.parametrize(
        "hook", ["instance_of", "subtype_of", "below", "above", "part_of"]
    )
    def test_ontology_hooks_raise(self, hook):
        with pytest.raises(ConditionError):
            getattr(ConditionContext(), hook)("a", "b")


class TestRequiredTags:
    def test_collects_conjunctive_tag_equalities(self):
        condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", Constant("author"), NodeTag(2)),
            Comparison("=", NodeContent(2), Constant("someone")),
        )
        assert required_tags(condition) == {
            1: {"inproceedings"},
            2: {"author"},
        }

    def test_same_label_disjunction(self):
        condition = Or(
            Comparison("=", NodeTag(1), Constant("article")),
            Comparison("=", NodeTag(1), Constant("inproceedings")),
        )
        assert required_tags(condition) == {1: {"article", "inproceedings"}}

    def test_mixed_disjunction_gives_nothing(self):
        condition = Or(
            Comparison("=", NodeTag(1), Constant("article")),
            Comparison("=", NodeContent(1), Constant("x")),
        )
        assert required_tags(condition) == {}

    def test_negated_atoms_ignored(self):
        condition = Not(Comparison("=", NodeTag(1), Constant("article")))
        assert required_tags(condition) == {}

    def test_conflicting_constraints_intersect(self):
        condition = And(
            Comparison("=", NodeTag(1), Constant("a")),
            Comparison("=", NodeTag(1), Constant("b")),
        )
        assert required_tags(condition) == {1: set()}

    def test_true_condition(self):
        assert required_tags(TrueCondition()) == {}
