"""Unit tests for embeddings and witness trees (Section 2.1.1)."""

import pytest

from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.embedding import (
    assemble_forest,
    find_embeddings,
    find_embeddings_in_collection,
    witness_tree,
)
from repro.tax.pattern import AD, PC, PatternTree, pattern_of
from repro.xmldb.parser import parse_document

DOC = """
<dblp>
  <inproceedings>
    <author>First Author</author>
    <title>Paper One</title>
    <year>1999</year>
  </inproceedings>
  <inproceedings>
    <author>Second Author</author>
    <author>Third Author</author>
    <title>Paper Two</title>
    <year>2000</year>
  </inproceedings>
</dblp>
"""


@pytest.fixture
def doc():
    return parse_document(DOC)


def figure_3_pattern():
    """The paper's Figure 3: inproceedings with title and year=1999."""
    pattern = pattern_of([(1, None, PC), (2, 1, PC), (3, 1, PC)])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("year")),
        Comparison("=", NodeContent(3), Constant("1999")),
    )
    return pattern


class TestFindEmbeddings:
    def test_figure_3_single_embedding(self, doc):
        embeddings = list(find_embeddings(figure_3_pattern(), doc))
        assert len(embeddings) == 1
        assert embeddings[0].image(2).text == "Paper One"

    def test_pc_edge_requires_direct_child(self, doc):
        pattern = pattern_of([(1, None, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("dblp")),
            Comparison("=", NodeTag(2), Constant("author")),
        )
        assert list(find_embeddings(pattern, doc)) == []

    def test_ad_edge_reaches_descendants(self, doc):
        pattern = pattern_of([(1, None, PC), (2, 1, AD)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("dblp")),
            Comparison("=", NodeTag(2), Constant("author")),
        )
        assert len(list(find_embeddings(pattern, doc))) == 3

    def test_multiple_embeddings_per_node(self, doc):
        # Two authors in paper two: pattern with one author node embeds
        # once per author.
        pattern = pattern_of([(1, None, PC), (2, 1, PC), (3, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeTag(3), Constant("year")),
            Comparison("=", NodeContent(3), Constant("2000")),
        )
        assert len(list(find_embeddings(pattern, doc))) == 2

    def test_root_can_embed_anywhere(self, doc):
        pattern = pattern_of([(1, None, PC)])
        pattern.condition = Comparison("=", NodeTag(1), Constant("author"))
        assert len(list(find_embeddings(pattern, doc))) == 3

    def test_unconstrained_root_tries_all_nodes(self, doc):
        pattern = pattern_of([(1, None, PC)])
        assert len(list(find_embeddings(pattern, doc))) == doc.size()

    def test_collection_search(self, doc):
        other = parse_document(DOC)
        pattern = pattern_of([(1, None, PC)])
        pattern.condition = Comparison("=", NodeTag(1), Constant("title"))
        embeddings = list(find_embeddings_in_collection(pattern, [doc, other]))
        assert len(embeddings) == 4


class TestWitnessTrees:
    def test_witness_contains_only_matched_nodes(self, doc):
        embedding = next(iter(find_embeddings(figure_3_pattern(), doc)))
        witness = witness_tree(embedding)
        assert witness.tag == "inproceedings"
        assert [c.tag for c in witness.children] == ["title", "year"]
        # author was not matched, so it is absent
        assert witness.find_first("author") is None

    def test_sl_inflates_subtrees(self, doc):
        embedding = next(iter(find_embeddings(figure_3_pattern(), doc)))
        witness = witness_tree(embedding, sl_labels=[1])
        assert [c.tag for c in witness.children] == ["author", "title", "year"]

    def test_witness_is_a_copy(self, doc):
        embedding = next(iter(find_embeddings(figure_3_pattern(), doc)))
        witness = witness_tree(embedding, sl_labels=[1])
        witness.children[0].text = "mutated"
        assert doc.find_first("author").text == "First Author"

    def test_witness_preserves_document_order(self, doc):
        # Match year before title in the pattern; output stays in
        # document order (title before year).
        pattern = pattern_of([(1, None, PC), (3, 1, PC), (2, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(3), Constant("year")),
            Comparison("=", NodeTag(2), Constant("title")),
            Comparison("=", NodeContent(3), Constant("1999")),
        )
        embedding = next(iter(find_embeddings(pattern, doc)))
        witness = witness_tree(embedding)
        assert [c.tag for c in witness.children] == ["title", "year"]

    def test_closest_ancestor_edge_rule(self, doc):
        # Pattern matching dblp and a deep author: the author hangs
        # directly under dblp in the witness (inproceedings not matched).
        pattern = pattern_of([(1, None, PC), (2, 1, AD)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("dblp")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeContent(2), Constant("First Author")),
        )
        embedding = next(iter(find_embeddings(pattern, doc)))
        witness = witness_tree(embedding)
        assert witness.tag == "dblp"
        assert [c.tag for c in witness.children] == ["author"]


class TestAssembleForest:
    def test_disconnected_nodes_become_separate_trees(self, doc):
        authors = doc.find_all("author")
        forest = assemble_forest(authors)
        assert len(forest) == 3
        assert all(tree.tag == "author" for tree in forest)

    def test_nested_selection_keeps_hierarchy(self, doc):
        nodes = [doc] + doc.find_all("title")
        forest = assemble_forest(nodes)
        assert len(forest) == 1
        assert [c.tag for c in forest[0].children] == ["title", "title"]

    def test_empty_input(self):
        assert assemble_forest([]) == []
