"""Unit tests for the TAX algebra operators."""

import pytest

from repro.tax.algebra import (
    PRODUCT_ROOT_TAG,
    difference,
    intersection,
    join,
    product,
    projection,
    selection,
    union,
)
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.pattern import AD, PC, pattern_of
from repro.tax.tree import canonical_keys, collection_nodes, copy_collection, dedupe, trees_equal
from repro.xmldb.parser import parse_document

DBLP = """
<dblp>
  <inproceedings>
    <author>First Author</author>
    <title>Paper One</title>
    <year>1999</year>
  </inproceedings>
  <inproceedings>
    <author>Second Author</author>
    <title>Paper Two</title>
    <year>1999</year>
  </inproceedings>
  <inproceedings>
    <author>Third Author</author>
    <title>Paper Three</title>
    <year>2001</year>
  </inproceedings>
</dblp>
"""

SIGMOD = """
<ProceedingsPage>
  <articles>
    <article>
      <title>Paper One</title>
      <author>F. Author</author>
    </article>
  </articles>
</ProceedingsPage>
"""


@pytest.fixture
def dblp():
    return parse_document(DBLP)


@pytest.fixture
def sigmod():
    return parse_document(SIGMOD)


def year_pattern(year):
    pattern = pattern_of([(1, None, PC), (2, 1, PC), (3, 1, PC)])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("year")),
        Comparison("=", NodeContent(3), Constant(year)),
    )
    return pattern


class TestSelection:
    def test_returns_witness_per_match(self, dblp):
        results = selection([dblp], year_pattern("1999"))
        assert len(results) == 2
        assert all(tree.tag == "inproceedings" for tree in results)

    def test_sl_includes_descendants(self, dblp):
        results = selection([dblp], year_pattern("1999"), sl_labels=[1])
        assert all(tree.find_first("author") is not None for tree in results)

    def test_without_sl_only_matched_nodes(self, dblp):
        results = selection([dblp], year_pattern("1999"))
        assert all(tree.find_first("author") is None for tree in results)

    def test_no_match_empty(self, dblp):
        assert selection([dblp], year_pattern("1883")) == []

    def test_duplicate_witnesses_collapsed(self, dblp):
        # A pattern with just an unconstrained year node produces one
        # witness per year element; two are structurally equal ("1999").
        pattern = pattern_of([(1, None, PC)])
        pattern.condition = Comparison("=", NodeTag(1), Constant("year"))
        results = selection([dblp], pattern, sl_labels=[1])
        texts = sorted(tree.text for tree in results)
        assert texts == ["1999", "2001"]


class TestProjection:
    def test_example_5_shape(self, dblp):
        """Projecting the authors of 1999 papers -> collection of authors."""
        pattern = pattern_of([(1, None, PC), (2, 1, PC), (3, 1, PC)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("inproceedings")),
            Comparison("=", NodeTag(2), Constant("author")),
            Comparison("=", NodeTag(3), Constant("year")),
            Comparison("=", NodeContent(3), Constant("1999")),
        )
        results = projection([dblp], pattern, [2])
        assert sorted(tree.text for tree in results) == [
            "First Author", "Second Author",
        ]

    def test_projection_keeps_hierarchy(self, dblp):
        pattern = pattern_of([(1, None, PC), (2, 1, AD)])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("dblp")),
            Comparison("=", NodeTag(2), Constant("title")),
        )
        results = projection([dblp], pattern, [1, 2])
        assert len(results) == 1
        assert [c.tag for c in results[0].children] == ["title"] * 3

    def test_projection_with_subtree_flag(self, dblp):
        pattern = pattern_of([(1, None, PC)])
        pattern.condition = Comparison("=", NodeTag(1), Constant("inproceedings"))
        results = projection([dblp], pattern, [(1, True)])
        assert all(tree.find_first("author") is not None for tree in results)

    def test_projection_no_matches(self, dblp):
        pattern = pattern_of([(1, None, PC)])
        pattern.condition = Comparison("=", NodeTag(1), Constant("zzz"))
        assert projection([dblp], pattern, [1]) == []


class TestProductAndJoin:
    def test_product_counts_pairs(self, dblp, sigmod):
        left = selection([dblp], year_pattern("1999"), sl_labels=[1])
        pairs = product(left, [sigmod])
        assert len(pairs) == 2
        assert all(tree.tag == PRODUCT_ROOT_TAG for tree in pairs)
        assert all(len(tree.children) == 2 for tree in pairs)

    def test_product_copies_inputs(self, dblp, sigmod):
        pairs = product([dblp], [sigmod])
        pairs[0].children[0].find_first("title").text = "mutated"
        assert dblp.find_first("title").text == "Paper One"

    def test_join_example_13_shape(self, dblp, sigmod):
        """Join on equal titles across schemas."""
        pattern = pattern_of(
            [(0, None, PC), (1, 0, PC), (2, 1, AD), (3, 0, AD), (4, 3, PC)]
        )
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("dblp")),
            Comparison("=", NodeTag(2), Constant("title")),
            Comparison("=", NodeTag(3), Constant("article")),
            Comparison("=", NodeTag(4), Constant("title")),
            Comparison("=", NodeContent(2), NodeContent(4)),
        )
        results = join([dblp], [sigmod], pattern, sl_labels=[2, 4])
        assert len(results) == 1
        titles = [node.text for node in results[0].find_all("title")]
        assert titles == ["Paper One", "Paper One"]


class TestSetOperators:
    def test_union_dedupes(self, dblp):
        papers = selection([dblp], year_pattern("1999"), sl_labels=[1])
        assert len(union(papers, papers)) == 2

    def test_intersection(self, dblp):
        all_years = selection([dblp], year_pattern("1999"), sl_labels=[1])
        one = all_years[:1]
        result = intersection(all_years, one)
        assert len(result) == 1
        assert trees_equal(result[0], one[0])

    def test_difference(self, dblp):
        all_years = selection([dblp], year_pattern("1999"), sl_labels=[1])
        one = all_years[:1]
        result = difference(all_years, one)
        assert len(result) == 1
        assert not trees_equal(result[0], one[0])

    def test_difference_disjoint(self, dblp):
        papers_1999 = selection([dblp], year_pattern("1999"), sl_labels=[1])
        papers_2001 = selection([dblp], year_pattern("2001"), sl_labels=[1])
        assert len(difference(papers_1999, papers_2001)) == 2

    def test_set_ops_return_copies(self, dblp):
        papers = selection([dblp], year_pattern("1999"), sl_labels=[1])
        united = union(papers, [])
        united[0].find_first("title").text = "mutated"
        assert papers[0].find_first("title").text != "mutated"


class TestTreeHelpers:
    def test_dedupe_keeps_first(self, dblp):
        copies = [dblp.copy().renumber(), dblp.copy().renumber()]
        assert len(dedupe(copies)) == 1

    def test_canonical_keys_align(self, dblp):
        keys = canonical_keys([dblp, dblp.copy().renumber()])
        assert keys[0] == keys[1]

    def test_collection_nodes(self, dblp):
        assert collection_nodes([dblp]) == dblp.size()

    def test_copy_collection(self, dblp):
        copies = copy_collection([dblp])
        assert copies[0] is not dblp
        assert trees_equal(copies[0], dblp)
