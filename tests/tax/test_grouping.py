"""Unit tests for the TAX grouping and aggregation operators."""

import pytest

from repro.errors import TaxError
from repro.tax.conditions import And, Comparison, Constant, NodeContent, NodeTag
from repro.tax.grouping import (
    AGGREGATE_TAG,
    GROUP_BASIS_TAG,
    GROUP_ROOT_TAG,
    GROUP_SUBROOT_TAG,
    aggregation,
    grouping,
)
from repro.tax.pattern import pattern_of
from repro.xmldb.parser import parse_document

DOC = """
<dblp>
  <inproceedings><title>A</title><year>1999</year><pages>10</pages></inproceedings>
  <inproceedings><title>B</title><year>1999</year><pages>20</pages></inproceedings>
  <inproceedings><title>C</title><year>2001</year><pages>30</pages></inproceedings>
</dblp>
"""


@pytest.fixture
def doc():
    return parse_document(DOC)


def paper_pattern():
    pattern = pattern_of([(1, None, "pc"), (2, 1, "pc")])
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("year")),
    )
    return pattern


class TestGrouping:
    def test_groups_by_year(self, doc):
        groups = grouping([doc], paper_pattern(), [NodeContent(2)], sl_labels=[1])
        assert len(groups) == 2
        assert all(g.tag == GROUP_ROOT_TAG for g in groups)
        keys = [g.child_by_tag(GROUP_BASIS_TAG).children[0].text for g in groups]
        assert keys == ["1999", "2001"]

    def test_group_members(self, doc):
        groups = grouping([doc], paper_pattern(), [NodeContent(2)], sl_labels=[1])
        first = groups[0].child_by_tag(GROUP_SUBROOT_TAG)
        titles = sorted(n.text for n in first.find_all("title"))
        assert titles == ["A", "B"]
        second = groups[1].child_by_tag(GROUP_SUBROOT_TAG)
        assert [n.text for n in second.find_all("title")] == ["C"]

    def test_multi_term_basis(self, doc):
        groups = grouping(
            [doc], paper_pattern(), [NodeTag(1), NodeContent(2)], sl_labels=[1]
        )
        basis = groups[0].child_by_tag(GROUP_BASIS_TAG)
        assert [k.text for k in basis.children] == ["inproceedings", "1999"]

    def test_empty_basis_rejected(self, doc):
        with pytest.raises(TaxError):
            grouping([doc], paper_pattern(), [])

    def test_members_deduplicated(self, doc):
        # Without SL, both 1999 witnesses are (inproceedings, year) pairs
        # with distinct year text -> 2 members; duplicates would arise
        # from identical witnesses only.
        groups = grouping([doc], paper_pattern(), [NodeContent(2)])
        first = groups[0].child_by_tag(GROUP_SUBROOT_TAG)
        assert len(first.children) == 1  # both 1999 witnesses identical


class TestAggregation:
    def test_count(self, doc):
        groups = grouping([doc], paper_pattern(), [NodeContent(2)], sl_labels=[1])
        counts = aggregation(groups, "count")
        assert [c.tag for c in counts] == [AGGREGATE_TAG] * 2
        values = {
            c.child_by_tag(GROUP_BASIS_TAG).children[0].text:
            c.child_by_tag("value").text
            for c in counts
        }
        assert values == {"1999": "2", "2001": "1"}

    @pytest.mark.parametrize(
        "function, expected_1999",
        [("sum", "30"), ("min", "10"), ("max", "20"), ("avg", "15")],
    )
    def test_numeric_aggregates(self, doc, function, expected_1999):
        groups = grouping([doc], paper_pattern(), [NodeContent(2)], sl_labels=[1])
        results = aggregation(groups, function, value_tag="pages")
        values = {
            r.child_by_tag(GROUP_BASIS_TAG).children[0].text:
            r.child_by_tag("value").text
            for r in results
        }
        assert values["1999"] == expected_1999

    def test_unknown_aggregate(self, doc):
        groups = grouping([doc], paper_pattern(), [NodeContent(2)])
        with pytest.raises(TaxError):
            aggregation(groups, "median")

    def test_numeric_aggregate_requires_value_tag(self, doc):
        groups = grouping([doc], paper_pattern(), [NodeContent(2)])
        with pytest.raises(TaxError):
            aggregation(groups, "sum")

    def test_non_numeric_content_rejected(self, doc):
        groups = grouping([doc], paper_pattern(), [NodeContent(2)], sl_labels=[1])
        with pytest.raises(TaxError):
            aggregation(groups, "sum", value_tag="title")

    def test_wrong_input_shape(self, doc):
        with pytest.raises(TaxError):
            aggregation([doc], "count")


class TestGroupingUnderSeo:
    def test_similarity_grouping(self):
        """Grouping composes with TOSS conditions: group similar authors."""
        from repro.core.conditions import SeoConditionContext, SimilarTo
        from repro.ontology import Hierarchy
        from repro.similarity.measures import Levenshtein
        from repro.similarity.seo import SimilarityEnhancedOntology

        doc = parse_document(
            "<db>"
            "<r><a>J. Smith</a><v>1</v></r>"
            "<r><a>J. Smyth</a><v>2</v></r>"
            "<r><a>P. Chen</a><v>3</v></r>"
            "</db>"
        )
        hierarchy = Hierarchy(
            [("J. Smith", "a"), ("J. Smyth", "a"), ("P. Chen", "a")]
        )
        seo = SimilarityEnhancedOntology.for_hierarchy(hierarchy, Levenshtein(), 1.0)
        context = SeoConditionContext(seo)
        pattern = pattern_of([(1, None, "pc"), (2, 1, "pc")])
        pattern.condition = And(
            Comparison("=", NodeTag(1), Constant("r")),
            Comparison("=", NodeTag(2), Constant("a")),
            SimilarTo(NodeContent(2), Constant("J. Smith")),
        )
        groups = grouping(
            [doc], pattern, [NodeContent(2)], sl_labels=[1], context=context
        )
        keys = sorted(
            g.child_by_tag(GROUP_BASIS_TAG).children[0].text for g in groups
        )
        assert keys == ["J. Smith", "J. Smyth"]
