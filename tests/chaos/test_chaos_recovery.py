"""Chaos suite: serving stays exact while workers die under it.

Every test here runs with deterministic fault injection
(:mod:`repro.faults`) against the supervised pool and holds the layer to
the acceptance bar of ``tests/property/test_serving_equivalence.py`` —
results bit-identical to serial execution, in identical order — except
the workers are being killed, hung and garbled while it serves.

The suite is marked ``chaos`` and runs in its own CI job under a hard
timeout: a recovery bug's failure mode is a *hang*, and a hung supervisor
should fail that job, not stall the main test matrix.
"""

import os
import signal
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core.system import TossSystem
from repro.faults import FaultPlan, FaultRule
from repro.serving import RetryPolicy, SupervisedWorkerPool
from repro.serving.snapshot import SystemSnapshot
from repro.xmldb.serializer import serialize

pytestmark = pytest.mark.chaos

AUTHORS = ["Ann Smith", "Bob Stone", "Cara Swan"]
QUERIES = [
    'paper(author ~ "Ann Smith")',
    'paper(author ~ "Bob Stone")',
    'paper(title contains "Indexing")',
    'paper(year = "1992")',
]

#: Near-zero backoff so a chaos example costs milliseconds, not seconds.
FAST = RetryPolicy(
    retry_backoff_base=0.005,
    retry_backoff_cap=0.02,
    respawn_backoff_base=0.005,
    respawn_backoff_cap=0.02,
)

# Pools fork real processes, so one system and one pool serve the whole
# module; each example only swaps the pool's fault plan.
_STATE = {}


def _system():
    if "system" not in _STATE:
        documents = [
            f"<paper key='p{index}'>"
            f"<title>{'Indexing' if index % 4 == 0 else 'Querying'} {index}</title>"
            f"<author>{AUTHORS[index % len(AUTHORS)]}</author>"
            f"<year>{1990 + index % 5}</year>"
            f"</paper>"
            for index in range(18)
        ]
        system = TossSystem(epsilon=2.0)
        system.add_instance("papers", documents)
        system.build()
        _STATE["system"] = system
        _STATE["serial"] = {
            query: [
                serialize(tree)
                for tree in system.query("papers", query).results
            ]
            for query in QUERIES
        }
    return _STATE["system"]


def _pool():
    if "pool" not in _STATE:
        _STATE["pool"] = SupervisedWorkerPool(
            SystemSnapshot.capture(_system()), 2, policy=FAST
        )
    return _STATE["pool"]


@pytest.fixture(scope="module", autouse=True)
def _teardown():
    yield
    pool = _STATE.pop("pool", None)
    if pool is not None:
        pool.close()


def make_task(query):
    return {
        "query": query,
        "collection": "papers",
        "sl_variables": (),
        "right_collection": None,
        "document_keys": None,
        "guard": None,
        "collect_metrics": False,
        "trace": False,
    }


def batch_result_texts(outcomes):
    texts = []
    for outcome in outcomes:
        assert "report" in outcome, outcome.get("failure")
        texts.append(outcome["report"]["results"])
    return texts


class TestKilledWorkersStayExact:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        kill_tasks=st.sets(st.integers(min_value=0, max_value=7), max_size=4),
        queries=st.lists(st.sampled_from(QUERIES), min_size=4, max_size=8),
    )
    def test_batch_identical_under_random_kills(self, kill_tasks, queries):
        """Killing workers at random points mid-batch never changes what
        the batch returns: every faulted task retries and recovers."""
        system = _system()
        pool = _pool()
        pool.fault_plan = FaultPlan(
            rules=(FaultRule(kind=faults.KILL, tasks=tuple(kill_tasks)),)
        )
        try:
            outcomes = pool.run_batch([make_task(q) for q in queries])
        finally:
            pool.fault_plan = None
        del system
        expected = [
            [
                text
                for text in _STATE["serial"][query]
            ]
            for query in queries
        ]
        assert batch_result_texts(outcomes) == expected

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        kill_chunks=st.sets(st.integers(min_value=0, max_value=2), max_size=2),
        query=st.sampled_from(QUERIES),
    )
    def test_partitioned_identical_under_random_kills(self, kill_chunks, query):
        from repro.serving import execute_partitioned

        system = _system()
        pool = _pool()
        pool.fault_plan = FaultPlan(
            rules=(FaultRule(kind=faults.KILL, tasks=tuple(kill_chunks)),)
        )
        try:
            merged = execute_partitioned(system, pool, "papers", query, jobs=3)
        finally:
            pool.fault_plan = None
        assert [
            serialize(tree) for tree in merged.results
        ] == _STATE["serial"][query]
        assert merged.degraded is False and not merged.failed_partitions


class TestExternalSigkill:
    def test_external_sigkill_mid_batch_neither_hangs_nor_corrupts(self):
        """An operator/OOM-style SIGKILL from outside the harness: the
        batch completes with results identical to serial."""
        _system()
        pool = _pool()
        stop = threading.Event()

        def killer():
            # Kill one live worker shortly after the batch starts; keep
            # trying until a pid exists (spawns may still be in flight).
            deadline = time.monotonic() + 5.0
            while not stop.is_set() and time.monotonic() < deadline:
                pids = [pid for pid in pool.worker_pids() if pid is not None]
                if pids:
                    try:
                        os.kill(pids[0], signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    return
                time.sleep(0.005)

        thread = threading.Thread(target=killer)
        thread.start()
        try:
            queries = [QUERIES[i % len(QUERIES)] for i in range(24)]
            outcomes = pool.run_batch([make_task(q) for q in queries])
        finally:
            stop.set()
            thread.join()
        expected = [list(_STATE["serial"][query]) for query in queries]
        assert batch_result_texts(outcomes) == expected


class TestHangAndCorruptRecovery:
    def test_hung_chunk_recovers_exactly(self):
        system = _system()
        plan = FaultPlan(
            rules=(FaultRule(kind=faults.HANG, tasks=(1,), seconds=60.0),)
        )
        policy = RetryPolicy(
            hard_timeout=0.5,
            retry_backoff_base=0.005,
            respawn_backoff_base=0.005,
        )
        with SupervisedWorkerPool(
            SystemSnapshot.capture(system), 2, policy=policy, fault_plan=plan
        ) as pool:
            outcomes = pool.run_batch([make_task(q) for q in QUERIES])
        expected = [list(_STATE["serial"][query]) for query in QUERIES]
        assert batch_result_texts(outcomes) == expected

    def test_corrupted_responses_recover_exactly(self):
        _system()
        pool = _pool()
        pool.fault_plan = FaultPlan(
            rules=(FaultRule(kind=faults.CORRUPT, tasks=(0, 2)),)
        )
        try:
            outcomes = pool.run_batch([make_task(q) for q in QUERIES])
        finally:
            pool.fault_plan = None
        expected = [list(_STATE["serial"][query]) for query in QUERIES]
        assert batch_result_texts(outcomes) == expected

    def test_spawn_transport_fault_recovers(self):
        """A worker whose first spawn fails snapshot transport respawns
        (next spawn re-rolls) and the pool still serves exactly."""
        system = _system()
        plan = FaultPlan(
            rules=(
                FaultRule(kind=faults.TRANSPORT, tasks=(0,), attempts=(0,)),
            )
        )
        # Spawn-scoped faults read the environment at worker start, so
        # the pool must fork its first generation inside the injection.
        with faults.inject(plan):
            with SupervisedWorkerPool(
                SystemSnapshot.capture(system), 2, policy=FAST
            ) as pool:
                outcomes = pool.run_batch([make_task(q) for q in QUERIES])
                stats = pool.stats()
        assert stats["spawn_failures"] >= 1
        expected = [list(_STATE["serial"][query]) for query in QUERIES]
        assert batch_result_texts(outcomes) == expected
