"""Chaos: workers killed mid-delta-apply recover to a consistent generation.

The delta broadcast (:meth:`SupervisedWorkerPool.apply_delta`) stamps
every delta task with :data:`~repro.serving.supervisor.DELTA_FAULT_SEQ`,
so a fault plan targeting that sequence number kills a worker exactly
while it is replaying the delta — the worst possible moment, half the
documents applied.  The contract under test: the pool never serves from
that half-applied state.  The dead incarnation is discarded, the
respawn initializes from the already-advanced snapshot, and the next
batch answers bit-identically to serial execution on the live system.
"""

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.serving import RetryPolicy, SupervisedWorkerPool
from repro.serving.snapshot import PICKLE, SystemSnapshot
from repro.serving.supervisor import DELTA_FAULT_SEQ
from repro.xmldb.serializer import serialize

from ..serving.conftest import make_system

pytestmark = pytest.mark.chaos

QUERY = 'paper(author ~ "Author 0")'
NEW_DOCS = [
    f"<paper key='q{index}'><title>Fresh {index}</title>"
    f"<author>Author 0</author><year>2004</year></paper>"
    for index in range(3)
]

FAST = RetryPolicy(
    retry_backoff_base=0.005,
    retry_backoff_cap=0.02,
    respawn_backoff_base=0.005,
    respawn_backoff_cap=0.02,
)

KILL_MID_APPLY = FaultPlan(
    rules=(FaultRule(kind=faults.KILL, tasks=(DELTA_FAULT_SEQ,)),)
)


def make_task(query=QUERY):
    return {
        "query": query,
        "collection": "papers",
        "sl_variables": (),
        "right_collection": None,
        "document_keys": None,
        "guard": None,
        "collect_metrics": False,
        "trace": False,
    }


def serial(system, query=QUERY):
    return [serialize(tree) for tree in system.query("papers", query).results]


def batch_texts(outcomes):
    texts = []
    for outcome in outcomes:
        assert "report" in outcome, outcome.get("failure")
        texts.append(outcome["report"]["results"])
    return texts


@pytest.mark.parametrize("mode", [None, PICKLE])
def test_kill_every_worker_mid_delta_apply_recovers_consistent(mode):
    """Every worker dies while replaying the delta; the respawned fleet
    still answers from exactly the target generation."""
    system = make_system(count=8)
    snapshot = SystemSnapshot.capture(system, mode=mode)
    with SupervisedWorkerPool(snapshot, 2, policy=FAST) as pool:
        pool.run_batch([make_task()])  # fleet warm and ready
        system.add_documents("papers", NEW_DOCS)
        system.replace_documents(
            "papers",
            {next(iter(system.database.get_collection("papers").keys())):
             "<paper key='p0'><title>Rewritten</title>"
             "<author>Author 0</author><year>1990</year></paper>"},
        )
        system.build()
        delta = snapshot.delta()
        assert delta is not None and delta.documents_shipped >= 4

        pool.fault_plan = KILL_MID_APPLY
        try:
            stats = pool.apply_delta(delta)
        finally:
            pool.fault_plan = None
        # No survivor may have acked a half-applied state as success.
        assert stats["applied"] == 0
        assert stats["respawning"] == 2
        # The snapshot advanced regardless: respawns converge on it.
        assert snapshot.signature == system.database.generation_signature()

        outcomes = pool.run_batch([make_task() for _ in range(4)])
        assert batch_texts(outcomes) == [serial(system)] * 4
        assert pool.stats()["respawns"] >= 2


def test_kill_mid_apply_then_clean_delta_converges():
    """A second, unfaulted delta after a chaotic one still applies to the
    respawned workers and serves the newest generation."""
    system = make_system(count=6)
    snapshot = SystemSnapshot.capture(system)
    with SupervisedWorkerPool(snapshot, 2, policy=FAST) as pool:
        pool.run_batch([make_task()])
        system.add_documents("papers", NEW_DOCS[0])
        system.build()
        pool.fault_plan = KILL_MID_APPLY
        try:
            pool.apply_delta(snapshot.delta())
        finally:
            pool.fault_plan = None
        # Workers are respawning; a further write arrives meanwhile.
        system.add_documents("papers", NEW_DOCS[1])
        system.build()
        delta = snapshot.delta()
        assert delta is not None
        pool.apply_delta(delta)
        outcomes = pool.run_batch([make_task() for _ in range(3)])
        assert batch_texts(outcomes) == [serial(system)] * 3
