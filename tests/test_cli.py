"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main

DBLP = """
<dblp>
  <inproceedings key="p1">
    <author>J. Smith</author>
    <title>Paper One</title>
  </inproceedings>
  <inproceedings key="p2">
    <author>J. Smyth</author>
    <title>Paper Two</title>
  </inproceedings>
</dblp>
"""

SIGMOD = """
<ProceedingsPage>
  <articles>
    <article key="p1"><title>Paper One.</title></article>
  </articles>
</ProceedingsPage>
"""


@pytest.fixture
def dblp_file(tmp_path):
    path = tmp_path / "dblp.xml"
    path.write_text(DBLP)
    return str(path)


@pytest.fixture
def sigmod_file(tmp_path):
    path = tmp_path / "sigmod.xml"
    path.write_text(SIGMOD)
    return str(path)


class TestQueryCommand:
    def test_similarity_query(self, dblp_file, capsys):
        status = main(
            [
                "query",
                "--source", f"dblp={dblp_file}",
                "--epsilon", "1",
                'inproceedings(author ~ "J. Smith")',
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "# 2 results" in out
        assert "Paper One" in out and "Paper Two" in out

    def test_join_query(self, dblp_file, sigmod_file, capsys):
        status = main(
            [
                "query",
                "--source", f"dblp={dblp_file}",
                "--source", f"sigmod={sigmod_file}",
                "--epsilon", "2",
                'inproceedings(title $a), //article(title $b) where $a ~ $b',
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "# 1 results" in out

    def test_bad_source_spec(self, capsys):
        with pytest.raises(SystemExit):
            main(["query", "--source", "no-equals-sign", "a"])

    def test_measure_option(self, dblp_file, capsys):
        status = main(
            [
                "query",
                "--source", f"dblp={dblp_file}",
                "--measure", "jaro_winkler",
                "--epsilon", "0.1",
                'inproceedings(author ~ "J. Smith")',
            ]
        )
        assert status == 0


class TestSeoCommand:
    def test_seo_to_stdout(self, dblp_file, capsys):
        status = main(
            ["seo", "--source", f"dblp={dblp_file}", "--epsilon", "1"]
        )
        assert status == 0
        out = capsys.readouterr().out
        body = out[out.index("{"):]
        payload = json.loads(body)
        assert payload["measure"] == "levenshtein"

    def test_seo_to_file(self, dblp_file, tmp_path, capsys):
        out_path = tmp_path / "seo.json"
        status = main(
            [
                "seo",
                "--source", f"dblp={dblp_file}",
                "--out", str(out_path),
            ]
        )
        assert status == 0
        from repro.similarity.persistence import read_seo

        seo = read_seo(str(out_path))
        assert "J. Smith" in seo


class TestExperimentCommand:
    def test_fig15a_small(self, capsys):
        status = main(
            ["experiment", "fig15a", "--datasets", "1", "--papers", "40"]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "avg precision" in out

    @pytest.mark.parametrize("figure", ["fig15b", "fig15c"])
    def test_fig15_series_quick(self, figure, capsys):
        assert main(["experiment", figure, "--quick"]) == 0
        assert capsys.readouterr().out.strip()

    def test_fig16a_quick(self, capsys):
        assert main(["experiment", "fig16a", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "TAX" in out and "TOSS" in out

    def test_fig16b_quick(self, capsys):
        assert main(["experiment", "fig16b", "--quick"]) == 0
        assert "join" in capsys.readouterr().out

    def test_fig16c_quick(self, capsys):
        assert main(["experiment", "fig16c", "--quick"]) == 0
        assert "epsilon" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestSaveLoad:
    def test_save_then_query_loaded(self, dblp_file, tmp_path, capsys):
        store = str(tmp_path / "system")
        status = main(
            ["save", "--source", f"dblp={dblp_file}", "--epsilon", "1",
             "--out", store]
        )
        assert status == 0
        assert "saved 1 instances" in capsys.readouterr().out
        status = main(
            ["query", "--load", store, 'inproceedings(author ~ "J. Smith")']
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "# 2 results" in out

    def test_query_needs_source_or_load(self):
        with pytest.raises(SystemExit):
            main(["query", "a(b)"])


class TestDbCommand:
    @pytest.fixture
    def store(self, dblp_file, tmp_path, capsys):
        root = str(tmp_path / "system")
        assert main(
            ["save", "--source", f"dblp={dblp_file}", "--epsilon", "1",
             "--out", root]
        ) == 0
        capsys.readouterr()
        return root

    def test_verify_clean(self, store, capsys):
        assert main(["db", "verify", store]) == 0
        out = capsys.readouterr().out
        assert "0 quarantined" in out

    def test_verify_detects_corruption(self, store, tmp_path, capsys):
        victim = next((tmp_path / "system" / "database" / "dblp").glob("*.xml"))
        victim.write_text("garbage")
        assert main(["db", "verify", store]) == 1
        assert "1 quarantined" in capsys.readouterr().out
        assert victim.exists()  # verify is read-only

    def test_recover_quarantines_and_rewrites(self, store, tmp_path, capsys):
        victim = next((tmp_path / "system" / "database" / "dblp").glob("*.xml"))
        victim.write_text("garbage")
        assert main(["db", "recover", store]) == 0
        out = capsys.readouterr().out
        assert "store rewritten" in out
        assert not victim.exists()
        assert (tmp_path / "system" / "database" / ".quarantine").is_dir()
        # after recovery the store verifies clean again
        assert main(["db", "verify", store]) == 0

    def test_verify_missing_store(self, tmp_path, capsys):
        assert main(["db", "verify", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


class TestDbBuildCommand:
    def test_build_persists_and_reports(self, dblp_file, tmp_path, capsys):
        root = str(tmp_path / "system")
        status = main(
            ["db", "build", "--source", f"dblp={dblp_file}",
             "--epsilon", "1", root]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "build: measure=levenshtein epsilon=1.0" in out
        assert "isa:" in out
        assert f"saved 1 instances to {root}" in out
        # The persisted store answers queries.
        assert main(
            ["query", "--load", root, 'inproceedings(author ~ "J. Smith")']
        ) == 0
        assert "# 2 results" in capsys.readouterr().out

    def test_build_with_workers_and_filter(self, dblp_file, tmp_path, capsys):
        root = str(tmp_path / "system")
        status = main(
            ["db", "build", "--source", f"dblp={dblp_file}",
             "--epsilon", "1", "--workers", "2", root]
        )
        assert status == 0
        assert "workers=2" in capsys.readouterr().out

    def test_build_cache_cold_then_warm(self, dblp_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "seo-cache")
        for attempt, expect in [("cold", "0 hits"), ("warm", "hits")]:
            root = str(tmp_path / f"system-{attempt}")
            assert main(
                ["db", "build", "--source", f"dblp={dblp_file}",
                 "--epsilon", "1", "--cache-dir", cache_dir, root]
            ) == 0
        out = capsys.readouterr().out
        assert "cache hit" in out  # the warm build's relations hit

    def test_build_no_cache_bypasses(self, dblp_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "seo-cache")
        root = str(tmp_path / "system")
        assert main(
            ["db", "build", "--source", f"dblp={dblp_file}", "--epsilon", "1",
             "--cache-dir", cache_dir, "--no-cache", root]
        ) == 0
        out = capsys.readouterr().out
        assert "cache=off" in out
        import pathlib

        assert not list(pathlib.Path(cache_dir).glob("*.json"))


class TestDbStatsCommand:
    def test_stats_after_build(self, dblp_file, tmp_path, capsys):
        root = str(tmp_path / "system")
        assert main(
            ["db", "build", "--source", f"dblp={dblp_file}",
             "--epsilon", "1", root]
        ) == 0
        capsys.readouterr()
        assert main(["db", "stats", root]) == 0
        out = capsys.readouterr().out
        assert "collections: 1" in out
        assert "xpath query cache:" in out
        assert "build: measure=levenshtein" in out
        assert "seo cache outcome:" in out
        assert "pairs pruned" in out

    def test_stats_without_build_report(self, dblp_file, tmp_path, capsys):
        # `save` predates the build report; stats must degrade gracefully.
        root = str(tmp_path / "system")
        assert main(
            ["save", "--source", f"dblp={dblp_file}", "--epsilon", "1",
             "--out", root]
        ) == 0
        import os

        report_path = os.path.join(root, "build_report.json")
        if os.path.exists(report_path):
            os.unlink(report_path)
        capsys.readouterr()
        assert main(["db", "stats", root]) == 0
        assert "build report: none persisted" in capsys.readouterr().out


class TestUsage:
    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])
