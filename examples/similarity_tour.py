#!/usr/bin/env python
"""A tour of the pluggable similarity measures and the SEA algorithm.

Section 4.3: "the TOSS framework can plug in any such similarity
implementation."  This example compares every registered measure on the
paper's own string pairs (Section 2.2), then runs SEA on the Example 11
toy ontology and on a name hierarchy, showing how the enhanced nodes
change with the measure and the threshold.

Run:  python examples/similarity_tour.py
"""

from repro.ontology import Hierarchy
from repro.similarity import get_measure
from repro.similarity.measures import available_measures
from repro.similarity.sea import sea

PAPER_PAIRS = [
    ("Gian Luigi Ferrari", "GianLuigi Ferrari"),   # "very similar"  (0.1)
    ("Marco Ferrari", "Mauro Ferrari"),            # "quite similar" (2.2)
    ("Marco Ferrari", "GianLuigi Ferrari"),        # "much less"     (6.5)
    ("J. Ullman", "Jeffrey D. Ullman"),
    ("SIGMOD Conference",
     "ACM SIGMOD International Conference on Management of Data"),
]


def measure_table() -> None:
    measures = {name: get_measure(name) for name in available_measures()}

    width = max(len(name) for name in measures) + 2
    header = "pair".ljust(46) + "".join(name.rjust(width) for name in measures)
    print(header)
    print("-" * len(header))
    for x, y in PAPER_PAIRS:
        row = f"{x[:20]!r} ~ {y[:20]!r}".ljust(46)
        for measure in measures.values():
            row += f"{measure.distance(x, y):>{width}.2f}"
        print(row)
    print()


def example_11() -> None:
    """Figure 13: Levenshtein, epsilon = 2 on the toy isa hierarchy."""
    hierarchy = Hierarchy(
        [
            ("relation", "concept"),
            ("relational", "concept"),
            ("model", "concept"),
            ("models", "concept"),
        ]
    )
    enhancement = sea(hierarchy, get_measure("levenshtein"), 2.0, verify=True)
    print("Example 11 — SEA(Levenshtein, epsilon=2):")
    for node in sorted(enhancement.hierarchy.terms, key=str):
        print(f"  node {node}")
    print()


def epsilon_sensitivity() -> None:
    """How the author-name cliques grow with epsilon."""
    names = [
        "Jeffrey D. Ullman", "Jeffrey Ullman", "JeffreyD. Ullman",
        "Jeffery D. Ullman", "Marco Ferrari", "Mauro Ferrari",
        "Marco Ferrara", "Paolo Ciancarini",
    ]
    hierarchy = Hierarchy([(name, "author") for name in names])
    for epsilon in (0.0, 1.0, 2.0, 3.0):
        enhancement = sea(hierarchy, get_measure("levenshtein"), epsilon)
        merged = [
            str(node)
            for node in enhancement.hierarchy.terms
            if len(node.members) > 1
        ]
        print(f"epsilon={epsilon:>3}: "
              f"{len(enhancement.hierarchy)} enhanced nodes; merged: "
              f"{sorted(merged) if merged else '(none)'}")
    print()


def main() -> None:
    measure_table()
    example_11()
    epsilon_sensitivity()


if __name__ == "__main__":
    main()
