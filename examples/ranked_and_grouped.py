#!/usr/bin/env python
"""Ranked similarity search and grouped aggregation — TOSS extensions.

Two features this library adds on top of the paper's boolean algebra:

1. **Ranked queries** (`repro.core.scoring`): the boolean ``~`` answer
   set, ordered by how close each match actually is — nearest first, with
   top-k truncation (the direction the paper's related-work section
   points to via TIX).
2. **Grouping + aggregation** (`repro.tax.grouping`): the rest of the
   original TAX algebra, evaluated under TOSS's SEO-aware conditions —
   here, counting a similar-author's papers per venue category.

Run:  python examples/ranked_and_grouped.py
"""

from repro.core.parser import parse_query
from repro.core.scoring import ranked_selection
from repro.data import generate_corpus, render_dblp
from repro.experiments.workload import build_system
from repro.tax.conditions import NodeContent
from repro.tax.grouping import GROUP_BASIS_TAG, aggregation, grouping


def main() -> None:
    corpus = generate_corpus(150, seed=13)
    dblp = render_dblp(corpus, seed=13)
    system = build_system(corpus, [dblp], epsilon=3.0)

    # The most prolific author in this corpus.
    frequency = {}
    for paper in corpus.papers:
        for author_id in paper.author_ids:
            frequency[author_id] = frequency.get(author_id, 0) + 1
    target = corpus.authors[max(frequency, key=frequency.get)].canonical
    print(f'Target author: "{target}"')
    print()

    parsed = parse_query(f'inproceedings(author $a ~ "{target}", title $t)')

    # 1. Ranked search: nearest surface forms first.
    ranked = ranked_selection(
        system.instances["dblp"].trees,
        parsed.pattern,
        system.context,
        sl_labels=parsed.roots,
        top_k=5,
    )
    measure = system.seo.measure
    print("Top 5 papers by similarity of the author surface form:")
    for result in ranked:
        # The witness carries the whole record; show the author that
        # actually matched (the one nearest to the target).
        authors = [n.text for n in result.tree.find_all("author")]
        matched = min(authors, key=lambda a: measure.distance(a, target))
        title = result.tree.find_first("title").text
        print(f"  [d={result.score:>4.1f}]  {matched:<26} {title}")
    print()

    # 2. Group the same answers by venue and count per group.
    grouping_parsed = parse_query(
        f'inproceedings(author ~ "{target}", booktitle $v)'
    )
    groups = grouping(
        system.instances["dblp"].trees,
        grouping_parsed.pattern,
        [NodeContent(grouping_parsed.label("v"))],
        sl_labels=grouping_parsed.roots,
        context=system.context,
    )
    counts = aggregation(groups, "count")
    print("Papers per venue (similarity-matched author):")
    for row in counts:
        venue = row.child_by_tag(GROUP_BASIS_TAG).children[0].text
        print(f"  {venue:<22} {row.child_by_tag('value').text}")


if __name__ == "__main__":
    main()
