#!/usr/bin/env python
"""Typed comparisons with conversion functions (Section 5's type system).

The paper's data model types every attribute and assumes a closed set of
conversion functions ("converting from Euro to Pound is not identical to
converting from Euro to USD to Pound...").  This example queries a parts
catalogue whose two suppliers quote lengths in different units and prices
in different currencies; the typed ``<=`` condition converts through the
least common supertype automatically.

Run:  python examples/unit_conversion.py
"""

from repro.core import TossSystem
from repro.core.conditions import TypedComparison, default_typing
from repro.tax import And, Comparison, Constant, NodeContent, NodeTag, PatternTree

CATALOGUE = """
<catalogue>
  <part key="a">
    <name>spacer ring</name>
    <width unit="mm">25</width>
    <price currency="usd">3.50</price>
  </part>
  <part key="b">
    <name>mounting plate</name>
    <width unit="cm">4</width>
    <price currency="eur">2.70</price>
  </part>
  <part key="c">
    <name>rail segment</name>
    <width unit="cm">12</width>
    <price currency="usd">8.00</price>
  </part>
</catalogue>
"""

#: element tag + unit attribute -> registered type name
UNIT_TYPES = {"mm": "length_mm", "cm": "length_cm", "m": "length_m",
              "usd": "usd", "eur": "eur"}


def unit_typing(node, attribute):
    """Instance typing: width/price content is typed by its unit attribute."""
    if attribute == "content":
        unit = node.attributes.get("unit") or node.attributes.get("currency")
        if unit in UNIT_TYPES:
            return UNIT_TYPES[unit]
    return default_typing(node, attribute)


def width_at_most(value: str, type_name: str) -> PatternTree:
    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("part")),
        Comparison("=", NodeTag(2), Constant("width")),
        TypedComparison("<=", NodeContent(2), Constant(value, type_name)),
    )
    return pattern


def price_at_most(value: str, type_name: str) -> PatternTree:
    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("part")),
        Comparison("=", NodeTag(2), Constant("price")),
        TypedComparison("<=", NodeContent(2), Constant(value, type_name)),
    )
    return pattern


def main() -> None:
    system = TossSystem(epsilon=0.0, typing=unit_typing)
    system.add_instance("catalogue", CATALOGUE)
    system.build()

    print("Parts at most 5 cm wide (25 mm converts to 2.5 cm, 4 cm stays):")
    report = system.select("catalogue", width_at_most("5", "length_cm"),
                           sl_labels=[1])
    for tree in report.results:
        width = tree.find_first("width")
        print(f"  - {tree.find_first('name').text}: "
              f"{width.text} {width.attributes['unit']}")
    print()

    print("Parts costing at most 3.20 EUR (3.50 USD converts to 3.15 EUR):")
    report = system.select("catalogue", price_at_most("3.20", "eur"),
                           sl_labels=[1])
    for tree in report.results:
        price = tree.find_first("price")
        print(f"  - {tree.find_first('name').text}: "
              f"{price.text} {price.attributes['currency']}")


if __name__ == "__main__":
    main()
