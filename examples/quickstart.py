#!/usr/bin/env python
"""Quickstart: similarity-aware querying of a small DBLP fragment.

The paper's motivating example: a TAX query for papers by "J. Ullman"
misses "J.D. Ullman" and "Jeffrey Ullman" because TAX matches exactly.
TOSS answers the same pattern query through a similarity enhanced
ontology and finds them.

Run:  python examples/quickstart.py
"""

from repro import TossSystem, PatternTree
from repro.core.conditions import SimilarTo
from repro.similarity.rules import NameRuleMeasure
from repro.tax import And, Comparison, Constant, NodeContent, NodeTag

DBLP_FRAGMENT = """
<dblp>
  <inproceedings key="u1">
    <author>Jeffrey D. Ullman</author>
    <title>A Survey of Deductive Database Systems</title>
    <year>1995</year>
    <booktitle>SIGMOD Conference</booktitle>
  </inproceedings>
  <inproceedings key="u2">
    <author>J. D. Ullman</author>
    <title>Information Integration Using Logical Views</title>
    <year>1997</year>
    <booktitle>ICDT</booktitle>
  </inproceedings>
  <inproceedings key="u3">
    <author>Jeffrey Ullman</author>
    <title>Principles of Database and Knowledge-Base Systems</title>
    <year>1989</year>
    <booktitle>PODS</booktitle>
  </inproceedings>
  <inproceedings key="c1">
    <author>Paolo Ciancarini</author>
    <title>Managing Complex Documents Over the WWW</title>
    <year>1999</year>
    <booktitle>VLDB</booktitle>
  </inproceedings>
</dblp>
"""


def author_query(surface: str) -> PatternTree:
    """Pattern: an inproceedings whose author is similar to ``surface``."""
    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        SimilarTo(NodeContent(2), Constant(surface)),
    )
    return pattern


def main() -> None:
    # The rule-based person-name measure understands initials; threshold
    # 1.0 accepts "same last name + compatible given names" (distance 0.5)
    # and single-slip variants (distance 1.0).
    system = TossSystem(measure=NameRuleMeasure(), epsilon=1.0)
    system.add_instance("dblp", DBLP_FRAGMENT)
    system.build()

    print("Ontology terms:", system.ontology_size())
    print()
    print('TOSS: papers by someone similar to "J. Ullman"')
    report = system.select("dblp", author_query("J. Ullman"), sl_labels=[1])
    for tree in report.results:
        title = tree.find_first("title")
        author = tree.find_first("author")
        print(f"  - {title.text}  (as {author.text!r})")
    print(f"  [{len(report.results)} results; "
          f"rewrite {report.rewrite_seconds * 1000:.2f} ms, "
          f"xpath {report.xpath_seconds * 1000:.2f} ms, "
          f"convert {report.convert_seconds * 1000:.2f} ms]")
    print()

    # The TAX baseline: same pattern, exact matching, no ontology.
    tax_pattern = author_query("J. Ullman")
    tax_pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("author")),
        Comparison("=", NodeContent(2), Constant("J. Ullman")),
    )
    tax_report = system.tax_executor().selection("dblp", tax_pattern, sl_labels=[1])
    print(f'TAX: exact match for "J. Ullman" finds {len(tax_report.results)} papers '
          f"(the three Ullman variants are all missed)")


if __name__ == "__main__":
    main()
