#!/usr/bin/env python
"""The introduction's motivating query: "papers with a US-government author".

"TAX cannot answer queries of the form 'Find all papers having at least
one author from the US government.' ... few authors if any will list their
affiliations as 'US Government.'  They are more likely to list their
affiliations as 'US Census Bureau' or 'US Army'."

This example builds a small bibliography whose records carry affiliation
elements, lets the Ontology Maker (with the embedded lexicon's
organisation taxonomy) place the concrete agencies below "us government"
and "government agency", and answers the query with a ``below`` condition.

Run:  python examples/government_ontology.py
"""

from repro.core import TossSystem
from repro.core.conditions import Below, PartOf
from repro.ontology.maker import OntologyMaker
from repro.tax import And, Comparison, Constant, NodeContent, NodeTag, PatternTree

PAPERS = """
<bibliography>
  <paper key="g1">
    <author>Ann Kim Lee</author>
    <affiliation>US Census Bureau</affiliation>
    <title>Record Linkage at National Scale</title>
  </paper>
  <paper key="g2">
    <author>Victor Braun</author>
    <affiliation>US Army</affiliation>
    <title>Logistics Optimization for Field Deployments</title>
  </paper>
  <paper key="g3">
    <author>Petra Novak</author>
    <affiliation>NASA</affiliation>
    <title>Telemetry Compression for Deep Space Probes</title>
  </paper>
  <paper key="c1">
    <author>Marco Rossi</author>
    <affiliation>Google</affiliation>
    <title>Ranking Signals in Web Search</title>
  </paper>
  <paper key="c2">
    <author>Laura Chen</author>
    <affiliation>Microsoft</affiliation>
    <title>Materialized View Selection for SQL Server</title>
  </paper>
</bibliography>
"""


def affiliation_query(concept: str, relation: str = "isa") -> PatternTree:
    """Papers whose affiliation is below ``concept``.

    ``relation`` selects the hierarchy: "isa" (Google below "web search
    company") or "part-of" ("US Census Bureau" part of "US government" —
    the introduction's lexical relationship).
    """
    pattern = PatternTree()
    pattern.add_node(1)
    pattern.add_node(2, parent=1, edge="pc")
    semantic = (
        PartOf(NodeContent(2), Constant(concept))
        if relation == "part-of"
        else Below(NodeContent(2), Constant(concept))
    )
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("paper")),
        Comparison("=", NodeTag(2), Constant("affiliation")),
        semantic,
    )
    return pattern


def main() -> None:
    maker = OntologyMaker(content_tags={"affiliation"})
    system = TossSystem(measure="levenshtein", epsilon=1.0, maker=maker)
    system.add_instance("papers", PAPERS)
    system.build()

    print("The isa hierarchy the Ontology Maker extracted:")
    print(system.instances["papers"].isa.pretty())
    print()

    for concept, relation in (
        ("us government", "part-of"),
        ("web search company", "isa"),
        ("organization", "isa"),
    ):
        report = system.select(
            "papers", affiliation_query(concept, relation), sl_labels=[1]
        )
        print(f'Papers whose affiliation is {relation}-below "{concept}":')
        for tree in report.results:
            print(f"  - {tree.find_first('title').text}"
                  f"  [{tree.find_first('affiliation').text}]")
        if not report.results:
            print("  (none)")
        print()


if __name__ == "__main__":
    main()
