#!/usr/bin/env python
"""Integrating DBLP with the SIGMOD proceedings pages (Sections 2 and 5).

Reproduces the paper's running scenario end to end on generated data:

1. two sources with different schemas and different surface conventions
   (DBLP: full first names, short venue names; SIGMOD pages: initials,
   spelled-out conference names);
2. per-source ontologies from the Ontology Maker, fused under
   interoperation constraints (``booktitle:dblp = conference:sigmod``,
   ``confYear:sigmod = year:dblp`` — Example 9/10);
3. a similarity join finding the same papers across both sources even
   though the titles differ by punctuation (Example 13 / Figure 14).

Run:  python examples/bibliographic_integration.py
"""

from repro.core import TossSystem
from repro.core.conditions import SimilarTo
from repro.data import generate_corpus, render_dblp, render_sigmod_pages
from repro.data.lexicon_rules import corpus_lexicon
from repro.ontology.maker import OntologyMaker
from repro.tax import And, Comparison, Constant, NodeContent, NodeTag, PatternTree


def cross_source_join_pattern() -> PatternTree:
    """DBLP inproceedings x SIGMOD article with similar titles."""
    pattern = PatternTree()
    pattern.add_node(0)                      # tax_prod_root
    pattern.add_node(1, parent=0, edge="pc")  # dblp record
    pattern.add_node(2, parent=1, edge="pc")  # its title
    pattern.add_node(3, parent=0, edge="ad")  # sigmod article
    pattern.add_node(4, parent=3, edge="pc")  # its title
    pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("article")),
        Comparison("=", NodeTag(4), Constant("title")),
        SimilarTo(NodeContent(2), NodeContent(4)),
    )
    return pattern


def main() -> None:
    corpus = generate_corpus(40, seed=7)
    dblp = render_dblp(corpus, seed=7)
    pages = render_sigmod_pages(corpus, seed=7)
    print(f"Corpus: {len(corpus.papers)} papers, "
          f"{sum(1 for p in corpus.papers if p.venue_key == 'sigmod')} at SIGMOD, "
          f"{len(pages)} proceedings pages")

    system = TossSystem(
        measure="levenshtein",
        epsilon=3.0,
        maker=OntologyMaker(lexicon=corpus_lexicon()),
    )
    system.add_instance("dblp", dblp)
    system.add_instance("sigmod", pages)
    # Example 9's DBA constraints; the shared-term and synonym constraints
    # (author:dblp = author:sigmod, ...) are derived automatically.
    system.add_constraint("booktitle:dblp = conference:sigmod")
    system.add_constraint("confYear:sigmod = year:dblp")
    system.build()

    print(f"Fused + similarity enhanced ontology: {system.ontology_size()} terms")
    print()

    report = system.join("dblp", "sigmod", cross_source_join_pattern(),
                         sl_labels=[2, 4])
    print(f"Similarity join found {len(report.results)} cross-source title pairs:")
    for tree in report.results[:8]:
        titles = [node.text for node in tree.find_all("title")]
        marker = "(exact)" if titles[0] == titles[1] else "(similar)"
        print(f"  - {titles[0]!r} ~ {titles[1]!r} {marker}")
    if len(report.results) > 8:
        print(f"  ... and {len(report.results) - 8} more")
    print()
    print(f"Timing: rewrite {report.rewrite_seconds:.4f}s, "
          f"xpath {report.xpath_seconds:.4f}s, "
          f"convert {report.convert_seconds:.4f}s")

    # The same join with TAX's exact matching: punctuation variants vanish.
    tax_pattern = cross_source_join_pattern()
    tax_pattern.condition = And(
        Comparison("=", NodeTag(1), Constant("inproceedings")),
        Comparison("=", NodeTag(2), Constant("title")),
        Comparison("=", NodeTag(3), Constant("article")),
        Comparison("=", NodeTag(4), Constant("title")),
        Comparison("=", NodeContent(2), NodeContent(4)),
    )
    tax_report = system.tax_executor().join(
        "dblp", "sigmod", tax_pattern, sl_labels=[2, 4]
    )
    print(f"TAX (exact titles) finds only {len(tax_report.results)} pairs")


if __name__ == "__main__":
    main()
