"""Exception hierarchy for the TOSS reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause.  Subsystems
define narrower classes below; the class names mirror the paper's
terminology (e.g. :class:`SimilarityInconsistencyError` is Definition 9's
"similarity inconsistency").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# XML database substrate (repro.xmldb)
# ---------------------------------------------------------------------------


class XmlDbError(ReproError):
    """Base class for errors raised by the XML database substrate."""


class XmlParseError(XmlDbError):
    """Malformed XML text could not be parsed into a data tree."""


class XPathSyntaxError(XmlDbError):
    """An XPath query string could not be parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        #: Character offset in the query where parsing failed (-1 if unknown).
        self.position = position


class XPathEvaluationError(XmlDbError):
    """A syntactically valid XPath query failed during evaluation."""


class StorageCorruptionError(XmlDbError):
    """A persisted file is truncated, unreadable or fails its checksum.

    Raised by :func:`repro.xmldb.storage.load_database` in ``raise`` mode;
    in ``quarantine`` mode the offending file is moved aside and recorded
    in a :class:`~repro.xmldb.storage.RecoveryReport` instead.
    """


class CollectionError(XmlDbError):
    """Collection-level failure (duplicate name, missing document, ...)."""


class DocumentTooLargeError(CollectionError):
    """A document exceeded the collection's configured size cap.

    Mirrors Apache Xindice's 5 MB per-document limitation, which shapes the
    paper's scalability experiments (Section 6).
    """

    def __init__(self, size: int, limit: int) -> None:
        super().__init__(
            f"document of {size} bytes exceeds the collection limit of {limit} bytes"
        )
        self.size = size
        self.limit = limit


# ---------------------------------------------------------------------------
# Resource guards (repro.guard)
# ---------------------------------------------------------------------------


class ResourceLimitError(ReproError):
    """Base class for resource-guard violations (deadline, step, result caps)."""


class QueryTimeoutError(ResourceLimitError):
    """An operation exceeded its wall-clock deadline.

    Attributes
    ----------
    deadline, elapsed:
        The configured budget and the measured wall-clock time, seconds.
    """

    def __init__(self, what: str, deadline: float, elapsed: float) -> None:
        super().__init__(
            f"{what} exceeded its deadline of {deadline:.3f}s "
            f"(ran for {elapsed:.3f}s)"
        )
        self.deadline = deadline
        self.elapsed = elapsed


class ResourceExhaustedError(ResourceLimitError):
    """An evaluation-step or result-count budget was exceeded."""


# ---------------------------------------------------------------------------
# TAX algebra (repro.tax)
# ---------------------------------------------------------------------------


class TaxError(ReproError):
    """Base class for errors raised by the TAX algebra."""


class PatternTreeError(TaxError):
    """A pattern tree is structurally invalid (duplicate labels, cycles...)."""


class ConditionError(TaxError):
    """A selection condition is malformed or references unknown nodes."""


# ---------------------------------------------------------------------------
# Ontologies (repro.ontology)
# ---------------------------------------------------------------------------


class OntologyError(ReproError):
    """Base class for ontology-related errors."""


class HierarchyCycleError(OntologyError):
    """An edge set intended to define a partial order contains a cycle."""

    def __init__(self, cycle: list) -> None:
        super().__init__(f"hierarchy contains a cycle: {' -> '.join(map(str, cycle))}")
        #: The offending node sequence (first node repeated at the end).
        self.cycle = cycle


class UnknownTermError(OntologyError):
    """A term was looked up that is not present in the hierarchy."""


class ConstraintError(OntologyError):
    """An interoperation constraint references an unknown hierarchy/term."""


class FusionInconsistencyError(OntologyError):
    """The interoperation constraints are unsatisfiable.

    Raised when a ``x:i != y:j`` constraint is violated by the canonical
    fusion (the two terms end up in the same equivalence class).
    """


# ---------------------------------------------------------------------------
# Similarity (repro.similarity)
# ---------------------------------------------------------------------------


class SimilarityError(ReproError):
    """Base class for similarity-subsystem errors."""


class SimilarityInconsistencyError(SimilarityError):
    """No similarity enhancement exists for (H, d, epsilon) — Definition 9."""


# ---------------------------------------------------------------------------
# TOSS core (repro.core)
# ---------------------------------------------------------------------------


class TossError(ReproError):
    """Base class for errors raised by the TOSS core."""


class TypeSystemError(TossError):
    """Invalid type-hierarchy or conversion-function configuration."""


class ConversionError(TypeSystemError):
    """No conversion function exists between two types, or conversion failed."""


class IllTypedConditionError(TossError):
    """A selection condition is not well-typed in the context of an instance.

    Section 5.1.1: a simple condition ``X op Y`` with a comparison operator
    is well-typed only when X and Y have a least common supertype reachable
    through registered conversion functions.
    """


class QueryExecutionError(TossError):
    """The query executor failed to translate or run a query."""


# ---------------------------------------------------------------------------
# Query serving (repro.serving)
# ---------------------------------------------------------------------------


class ServingError(TossError):
    """Base class for errors raised by the query-serving layer."""


class ServerOverloadedError(ServingError):
    """The server's bounded admission queue rejected a submission.

    Attributes
    ----------
    pending, limit:
        Work already admitted and the configured ``max_pending`` cap.
    """

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"server admission queue is full ({pending} pending, "
            f"limit {limit}); retry later or raise max_pending"
        )
        self.pending = pending
        self.limit = limit


class SnapshotStaleError(ServingError):
    """The served snapshot no longer matches the live system.

    Raised when a collection changed (documents added, replaced or
    removed — detected through the collection generation counters) after
    the worker pool snapshotted the system.  Call
    :meth:`~repro.serving.server.QueryServer.refresh` to re-snapshot.
    """


class SnapshotTransportError(ServingError):
    """The snapshot payload failed to reach or restore in a worker.

    A *transient* failure by definition — queries are read-only and the
    payload itself is immutable — so the supervised pool respawns the
    worker with backoff instead of failing the batch.
    """


class WorkerCrashError(ServingError):
    """A worker died (or was killed for hanging) and retries ran out.

    Attributes
    ----------
    query, attempts, reason:
        The query text the final attempt carried, how many attempts were
        made in total, and what happened on the last one (e.g.
        ``worker_died: pid 123 exit -9``, ``hung: exceeded the 2.0s
        parent-side hard timeout``).
    """

    def __init__(self, query: str, attempts: int, reason: str) -> None:
        super().__init__(
            f"worker crashed executing {query!r} ({reason}); "
            f"gave up after {attempts} attempt(s)"
        )
        self.query = query
        self.attempts = attempts
        self.reason = reason


class PoisonTaskError(ServingError):
    """A task was quarantined after crashing several workers in a row.

    Retrying a query that reliably kills its worker just grinds the pool
    through respawn cycles; after ``quarantine_after`` crashes on the
    same task the supervisor fails it permanently instead.

    Attributes
    ----------
    query, crashes:
        The query text and how many workers it took down.
    """

    def __init__(self, query: str, crashes: int) -> None:
        super().__init__(
            f"query {query!r} quarantined after crashing {crashes} worker(s); "
            "refusing to retry a poison task"
        )
        self.query = query
        self.crashes = crashes


class CircuitOpenError(ServerOverloadedError):
    """The serving circuit breaker is shedding load.

    Raised at batch admission while the breaker is open: the recent
    worker crash rate exceeded the configured threshold, so the server
    refuses new work until the cooldown elapses (then lets one batch
    through half-open).

    Attributes
    ----------
    crash_rate, threshold, retry_after:
        The observed crash rate that tripped the breaker, the configured
        limit, and the seconds left before the breaker half-opens.
    """

    def __init__(
        self, crash_rate: float, threshold: float, retry_after: float
    ) -> None:
        ServingError.__init__(
            self,
            f"serving circuit breaker is open: worker crash rate "
            f"{crash_rate:.0%} exceeded the {threshold:.0%} threshold; "
            f"shedding load for another {retry_after:.1f}s",
        )
        self.crash_rate = crash_rate
        self.threshold = threshold
        self.retry_after = retry_after
