"""Exception hierarchy for the TOSS reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause.  Subsystems
define narrower classes below; the class names mirror the paper's
terminology (e.g. :class:`SimilarityInconsistencyError` is Definition 9's
"similarity inconsistency").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# XML database substrate (repro.xmldb)
# ---------------------------------------------------------------------------


class XmlDbError(ReproError):
    """Base class for errors raised by the XML database substrate."""


class XmlParseError(XmlDbError):
    """Malformed XML text could not be parsed into a data tree."""


class XPathSyntaxError(XmlDbError):
    """An XPath query string could not be parsed."""

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        #: Character offset in the query where parsing failed (-1 if unknown).
        self.position = position


class XPathEvaluationError(XmlDbError):
    """A syntactically valid XPath query failed during evaluation."""


class StorageCorruptionError(XmlDbError):
    """A persisted file is truncated, unreadable or fails its checksum.

    Raised by :func:`repro.xmldb.storage.load_database` in ``raise`` mode;
    in ``quarantine`` mode the offending file is moved aside and recorded
    in a :class:`~repro.xmldb.storage.RecoveryReport` instead.
    """


class CollectionError(XmlDbError):
    """Collection-level failure (duplicate name, missing document, ...)."""


class DocumentTooLargeError(CollectionError):
    """A document exceeded the collection's configured size cap.

    Mirrors Apache Xindice's 5 MB per-document limitation, which shapes the
    paper's scalability experiments (Section 6).
    """

    def __init__(self, size: int, limit: int) -> None:
        super().__init__(
            f"document of {size} bytes exceeds the collection limit of {limit} bytes"
        )
        self.size = size
        self.limit = limit


# ---------------------------------------------------------------------------
# Resource guards (repro.guard)
# ---------------------------------------------------------------------------


class ResourceLimitError(ReproError):
    """Base class for resource-guard violations (deadline, step, result caps)."""


class QueryTimeoutError(ResourceLimitError):
    """An operation exceeded its wall-clock deadline.

    Attributes
    ----------
    deadline, elapsed:
        The configured budget and the measured wall-clock time, seconds.
    """

    def __init__(self, what: str, deadline: float, elapsed: float) -> None:
        super().__init__(
            f"{what} exceeded its deadline of {deadline:.3f}s "
            f"(ran for {elapsed:.3f}s)"
        )
        self.deadline = deadline
        self.elapsed = elapsed


class ResourceExhaustedError(ResourceLimitError):
    """An evaluation-step or result-count budget was exceeded."""


# ---------------------------------------------------------------------------
# TAX algebra (repro.tax)
# ---------------------------------------------------------------------------


class TaxError(ReproError):
    """Base class for errors raised by the TAX algebra."""


class PatternTreeError(TaxError):
    """A pattern tree is structurally invalid (duplicate labels, cycles...)."""


class ConditionError(TaxError):
    """A selection condition is malformed or references unknown nodes."""


# ---------------------------------------------------------------------------
# Ontologies (repro.ontology)
# ---------------------------------------------------------------------------


class OntologyError(ReproError):
    """Base class for ontology-related errors."""


class HierarchyCycleError(OntologyError):
    """An edge set intended to define a partial order contains a cycle."""

    def __init__(self, cycle: list) -> None:
        super().__init__(f"hierarchy contains a cycle: {' -> '.join(map(str, cycle))}")
        #: The offending node sequence (first node repeated at the end).
        self.cycle = cycle


class UnknownTermError(OntologyError):
    """A term was looked up that is not present in the hierarchy."""


class ConstraintError(OntologyError):
    """An interoperation constraint references an unknown hierarchy/term."""


class FusionInconsistencyError(OntologyError):
    """The interoperation constraints are unsatisfiable.

    Raised when a ``x:i != y:j`` constraint is violated by the canonical
    fusion (the two terms end up in the same equivalence class).
    """


# ---------------------------------------------------------------------------
# Similarity (repro.similarity)
# ---------------------------------------------------------------------------


class SimilarityError(ReproError):
    """Base class for similarity-subsystem errors."""


class SimilarityInconsistencyError(SimilarityError):
    """No similarity enhancement exists for (H, d, epsilon) — Definition 9."""


# ---------------------------------------------------------------------------
# TOSS core (repro.core)
# ---------------------------------------------------------------------------


class TossError(ReproError):
    """Base class for errors raised by the TOSS core."""


class TypeSystemError(TossError):
    """Invalid type-hierarchy or conversion-function configuration."""


class ConversionError(TypeSystemError):
    """No conversion function exists between two types, or conversion failed."""


class IllTypedConditionError(TossError):
    """A selection condition is not well-typed in the context of an instance.

    Section 5.1.1: a simple condition ``X op Y`` with a comparison operator
    is well-typed only when X and Y have a least common supertype reachable
    through registered conversion functions.
    """


class QueryExecutionError(TossError):
    """The query executor failed to translate or run a query."""


# ---------------------------------------------------------------------------
# Query serving (repro.serving)
# ---------------------------------------------------------------------------


class ServingError(TossError):
    """Base class for errors raised by the query-serving layer."""


class ServerOverloadedError(ServingError):
    """The server's bounded admission queue rejected a submission.

    Attributes
    ----------
    pending, limit:
        Work already admitted and the configured ``max_pending`` cap.
    """

    def __init__(self, pending: int, limit: int) -> None:
        super().__init__(
            f"server admission queue is full ({pending} pending, "
            f"limit {limit}); retry later or raise max_pending"
        )
        self.pending = pending
        self.limit = limit


class SnapshotStaleError(ServingError):
    """The served snapshot no longer matches the live system.

    Raised when a collection changed (documents added, replaced or
    removed — detected through the collection generation counters) after
    the worker pool snapshotted the system.  Call
    :meth:`~repro.serving.server.QueryServer.refresh` to re-snapshot.
    """
