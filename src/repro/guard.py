"""Resource guards: deadlines and budgets for queries and SEO builds.

Apache Xindice — and every production XML store — bounds what a single
request may consume; the paper's experiments implicitly rely on that (the
5 MB document cap of Section 6 is one such bound).  A
:class:`ResourceGuard` makes the same discipline explicit for this
reproduction: one guard instance watches one operation (an XPath query, a
TOSS selection, an SEA build) and raises
:class:`~repro.errors.QueryTimeoutError` /
:class:`~repro.errors.ResourceExhaustedError` when the operation exceeds
its wall-clock deadline, its evaluation-step budget or its result-count
cap.

Guards are cheap to consult: callers ``tick()`` at fine-grained points
(once per XPath evaluation step, once per verified candidate, once per
compared node pair) and the guard amortises the actual clock reads —
the deadline is re-checked every :data:`CHECK_INTERVAL` steps, so a
query that exceeds its deadline is interrupted well within 2x the
configured budget even when individual steps are microseconds.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .errors import QueryTimeoutError, ResourceExhaustedError

#: Steps between wall-clock reads in :meth:`ResourceGuard.tick`.
CHECK_INTERVAL = 64


class ResourceGuard:
    """Deadline + step budget + result cap for one guarded operation.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget; ``None`` disables the deadline.
    max_results:
        Upper bound on the number of results an operation may accumulate;
        ``None`` disables the cap.
    max_steps:
        Upper bound on ``tick()`` counts (XPath evaluation steps,
        verification candidates, SEA pair comparisons); ``None`` disables
        the budget.

    The clock starts at construction; callers reusing one guard across
    operations (e.g. a :class:`~repro.core.executor.QueryExecutor`
    configured with a per-query guard) call :meth:`start` to reset it.
    """

    __slots__ = (
        "deadline_seconds",
        "max_results",
        "max_steps",
        "_started",
        "_steps",
        "_since_check",
        "_stage_steps",
    )

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_results: Optional[int] = None,
        max_steps: Optional[int] = None,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds < 0:
            raise ValueError(f"deadline_seconds must be >= 0, got {deadline_seconds}")
        if max_results is not None and max_results < 0:
            raise ValueError(f"max_results must be >= 0, got {max_results}")
        if max_steps is not None and max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        self.deadline_seconds = deadline_seconds
        self.max_results = max_results
        self.max_steps = max_steps
        self.start()

    def start(self) -> "ResourceGuard":
        """(Re)start the clock and zero the step counter; returns self."""
        self._started = time.perf_counter()
        self._steps = 0
        self._since_check = 0
        self._stage_steps: Dict[str, int] = {}
        return self

    @property
    def elapsed(self) -> float:
        """Seconds since construction or the last :meth:`start`."""
        return time.perf_counter() - self._started

    @property
    def steps(self) -> int:
        """Steps ticked since construction or the last :meth:`start`."""
        return self._steps

    @property
    def stage_steps(self) -> Dict[str, int]:
        """Steps ticked per ``what`` label; values sum to :attr:`steps`.

        This is the per-stage attribution surfaced by trace spans and the
        ``explain``/``db trace`` diagnostics ("index probe" vs "xpath
        evaluation" vs "SEA similarity graph"...).
        """
        return dict(self._stage_steps)

    def check_deadline(self, what: str = "operation") -> None:
        """Raise :class:`QueryTimeoutError` if the deadline has passed."""
        if self.deadline_seconds is None:
            return
        elapsed = time.perf_counter() - self._started
        if elapsed > self.deadline_seconds:
            raise QueryTimeoutError(what, self.deadline_seconds, elapsed)

    def tick(self, steps: int = 1, what: str = "operation") -> None:
        """Account for ``steps`` units of work.

        Raises :class:`ResourceExhaustedError` when the step budget is
        exceeded; re-checks the deadline every :data:`CHECK_INTERVAL`
        accumulated steps.
        """
        self._steps += steps
        stage_steps = self._stage_steps
        stage_steps[what] = stage_steps.get(what, 0) + steps
        if self.max_steps is not None and self._steps > self.max_steps:
            raise ResourceExhaustedError(
                f"{what} exceeded its evaluation budget of {self.max_steps} steps"
            )
        self._since_check += steps
        if self._since_check >= CHECK_INTERVAL:
            self._since_check = 0
            self.check_deadline(what)

    def check_results(self, count: int, what: str = "query") -> None:
        """Raise :class:`ResourceExhaustedError` when ``count`` exceeds the cap."""
        if self.max_results is not None and count > self.max_results:
            raise ResourceExhaustedError(
                f"{what} produced {count} results, exceeding the cap of "
                f"{self.max_results}"
            )

    def __repr__(self) -> str:
        return (
            f"ResourceGuard(deadline_seconds={self.deadline_seconds}, "
            f"max_results={self.max_results}, max_steps={self.max_steps})"
        )
