"""Rule-based similarity for proper nouns (person and venue names).

Section 4.3: "In certain domains, rule based methods can also be used to
specify similarity between proper nouns (in our SIGMOD/DBLP application for
example, we could write a set of rules describing when two names are
considered similar)."  These two measures encode exactly the variation the
paper's motivating examples use:

* person names — "J. Ullman" / "J.D. Ullman" / "Jeffrey D. Ullman" are the
  same researcher; "Gian Luigi Ferrari" / "GianLuigi Ferrari" differ by a
  data-entry space; "Marco Ferrari" / "Mauro Ferrari" are different people;
* venue names — "SIGMOD Conference" (DBLP) vs the spelled-out
  "ACM SIGMOD International Conference on Management of Data" (SIGMOD
  proceedings pages).

Both return graded distances so they compose with SEA thresholds: 0 for a
confident same-entity match, small values for rule matches, and a fallback
edit-distance-derived value otherwise.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .measures import JaroWinkler, Levenshtein, StringSimilarityMeasure
from .tokenize import words

#: Stop words ignored when comparing venue names.
_VENUE_STOP_WORDS = frozenset(
    {
        "acm",
        "ieee",
        "international",
        "conference",
        "conf",
        "proceedings",
        "proc",
        "of",
        "on",
        "the",
        "annual",
        "symposium",
        "workshop",
    }
)

#: Well-known venue acronym expansions (DBA-editable).
VENUE_ACRONYMS = {
    "sigmod": ("management", "data"),
    "vldb": ("very", "large", "data", "bases"),
    "pods": ("principles", "database", "systems"),
    "icde": ("data", "engineering"),
    "kdd": ("knowledge", "discovery", "data", "mining"),
    "cikm": ("information", "knowledge", "management"),
    "edbt": ("extending", "database", "technology"),
    "icdt": ("database", "theory"),
    "www": ("world", "wide", "web"),
    "sigir": ("research", "development", "information", "retrieval"),
}


def _name_parts(name: str) -> Tuple[List[str], str]:
    """Split a person name into given-name tokens and the last name.

    Handles "Last, First" order and trailing Jr./Sr./Roman suffixes.
    """
    cleaned = name.strip()
    if "," in cleaned:
        last, _, first = cleaned.partition(",")
        cleaned = f"{first.strip()} {last.strip()}"
    tokens = [token for token in words(cleaned) if token not in {"jr", "sr", "ii", "iii", "iv"}]
    if not tokens:
        return [], ""
    return tokens[:-1], tokens[-1]


def _is_initial_of(initial: str, full: str) -> bool:
    """True when ``initial`` is a one-letter abbreviation of ``full``."""
    return len(initial) == 1 and full.startswith(initial)


def _given_names_compatible(a: Sequence[str], b: Sequence[str]) -> bool:
    """Whether two given-name token lists can denote the same person.

    Tokens are matched positionally after aligning lengths; an initial is
    compatible with any full name it abbreviates; missing middle names are
    compatible with anything ("Jeffrey Ullman" ~ "Jeffrey D. Ullman").
    """
    if not a or not b:
        return True  # a bare last name matches anything
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    # Greedy subsequence alignment: each token of the shorter list must be
    # matched, in order, by a compatible token of the longer list.
    position = 0
    for token in shorter:
        matched = False
        while position < len(longer):
            other = longer[position]
            position += 1
            if token == other or _is_initial_of(token, other) or _is_initial_of(other, token):
                matched = True
                break
        if not matched:
            return False
    return True


class NameRuleMeasure(StringSimilarityMeasure):
    """Distance between person names using bibliographic rules.

    Distances (smaller is more similar):

    ====  ======================================================
    0.0   identical strings
    0.5   same last name, compatible given names (initials etc.)
    1.0   last names within 1 edit, compatible given names
          (typos / joined tokens, e.g. "GianLuigi" ~ "Gian Luigi")
    ====  ======================================================

    Anything else falls back to ``2 + jaro_winkler_distance * scale`` so
    the measure stays graded and total.
    """

    is_strong = False

    def __init__(self, fallback_scale: float = 8.0) -> None:
        self.fallback_scale = fallback_scale
        self._edit = Levenshtein()
        self._fallback = JaroWinkler()

    def distance(self, x: str, y: str) -> float:
        if x == y:
            return 0.0
        given_x, last_x = _name_parts(x)
        given_y, last_y = _name_parts(y)
        if not last_x or not last_y:
            return 2.0 + self._fallback.distance(x, y) * self.fallback_scale

        if last_x == last_y and _given_names_compatible(given_x, given_y):
            return 0.5

        # Joined / typo'd names: compare with spaces stripped as well.
        joined_x = "".join(given_x) + last_x
        joined_y = "".join(given_y) + last_y
        if self._edit.distance(joined_x, joined_y) <= 1.0:
            return 1.0
        if (
            self._edit.distance(last_x, last_y) <= 1.0
            and _given_names_compatible(given_x, given_y)
        ):
            return 1.0

        return 2.0 + self._fallback.distance(x, y) * self.fallback_scale


class VenueRuleMeasure(StringSimilarityMeasure):
    """Distance between venue names (conference long/short forms).

    After stop-word removal and acronym expansion, two venue names that
    share their distinctive token set are distance 0.5 apart; overlapping
    but unequal sets are scored by Jaccard distance scaled into (0.5, 2.0);
    disjoint sets fall back to ``2 + jaccard * scale``.
    """

    is_strong = False

    def __init__(self, fallback_scale: float = 8.0) -> None:
        self.fallback_scale = fallback_scale

    def _signature(self, venue: str) -> frozenset:
        tokens = set()
        for token in words(venue):
            if token in VENUE_ACRONYMS:
                tokens.add(token)
                tokens.update(VENUE_ACRONYMS[token])
            elif token not in _VENUE_STOP_WORDS:
                tokens.add(token)
        return frozenset(tokens)

    def distance(self, x: str, y: str) -> float:
        if x == y:
            return 0.0
        sig_x, sig_y = self._signature(x), self._signature(y)
        if not sig_x or not sig_y:
            return 2.0 + self.fallback_scale
        overlap = len(sig_x & sig_y)
        if overlap == 0:
            return 2.0 + self.fallback_scale
        union = len(sig_x | sig_y)
        jaccard = 1.0 - overlap / union
        if sig_x <= sig_y or sig_y <= sig_x:
            return 0.5
        return 0.5 + 1.5 * jaccard
