"""Tokenisers and corpus statistics for token-based similarity measures.

Token-based measures (Jaccard, cosine TF-IDF, Monge-Elkan) operate on word
multisets rather than raw characters.  This module centralises how strings
become tokens so that every measure tokenises identically, and provides the
document-frequency statistics cosine TF-IDF needs.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from typing import Dict, Iterable, List, Tuple

_WORD_RE = re.compile(r"[A-Za-z0-9]+")


def words(text: str) -> List[str]:
    """Lower-cased alphanumeric word tokens, in order of appearance.

    >>> words("Jeffrey D. Ullman")
    ['jeffrey', 'd', 'ullman']
    """
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def word_set(text: str) -> frozenset:
    """The set of word tokens of ``text`` (order and multiplicity dropped)."""
    return frozenset(words(text))


def qgrams(text: str, q: int = 3, pad: bool = True) -> List[str]:
    """Character q-grams of ``text``.

    With ``pad=True`` the string is wrapped in ``q - 1`` sentinel characters
    on each side (the standard Ukkonen construction), so that every string
    of length >= 1 has at least ``q`` grams and prefixes/suffixes carry
    weight.

    >>> qgrams("ab", q=2)
    ['#a', 'ab', 'b#']
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    lowered = text.lower()
    if pad and q > 1:
        sentinel = "#" * (q - 1)
        lowered = f"{sentinel}{lowered}{sentinel}"
    if len(lowered) < q:
        return [lowered] if lowered else []
    return [lowered[i : i + q] for i in range(len(lowered) - q + 1)]


class CorpusStatistics:
    """Document-frequency statistics over a corpus of strings.

    Feeds inverse-document-frequency weights to :class:`CosineTfIdf`.  The
    corpus can be grown incrementally with :meth:`add`; weights are
    recomputed lazily.
    """

    def __init__(self, documents: Iterable[str] = ()) -> None:
        self._doc_count = 0
        self._doc_freq: Counter = Counter()
        self._dirty = True
        self._idf: Dict[str, float] = {}
        for document in documents:
            self.add(document)

    def add(self, document: str) -> None:
        """Register one document's tokens in the statistics."""
        self._doc_count += 1
        self._doc_freq.update(word_set(document))
        self._dirty = True

    @property
    def document_count(self) -> int:
        return self._doc_count

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``.

        Uses ``log((1 + N) / (1 + df)) + 1`` so unseen tokens still get a
        positive weight and an empty corpus degenerates to uniform weights.
        """
        if self._dirty:
            self._recompute()
        return self._idf.get(token, self._default_idf())

    def _default_idf(self) -> float:
        return math.log((1 + self._doc_count) / 1.0) + 1.0

    def _recompute(self) -> None:
        self._idf = {
            token: math.log((1 + self._doc_count) / (1 + freq)) + 1.0
            for token, freq in self._doc_freq.items()
        }
        self._dirty = False

    def tfidf_vector(self, text: str) -> Dict[str, float]:
        """L2-normalised TF-IDF vector of ``text`` as a sparse dict."""
        counts = Counter(words(text))
        if not counts:
            return {}
        vector = {token: count * self.idf(token) for token, count in counts.items()}
        norm = math.sqrt(sum(weight * weight for weight in vector.values()))
        if norm == 0.0:
            return {}
        return {token: weight / norm for token, weight in vector.items()}


def cosine_of_vectors(u: Dict[str, float], v: Dict[str, float]) -> float:
    """Cosine similarity of two sparse, already-normalised vectors."""
    if len(u) > len(v):
        u, v = v, u
    return sum(weight * v.get(token, 0.0) for token, weight in u.items())


def sorted_token_pair(a: str, b: str) -> Tuple[str, str]:
    """Canonical ordering of a string pair (for symmetric caches)."""
    return (a, b) if a <= b else (b, a)
