"""Persisting similarity enhanced ontologies to JSON.

Section 6: "We also precompute an SEO during integration of different XML
databases" — a production deployment keeps that precomputation on disk so
query processes can load it instead of re-running fusion + SEA.  The
serialised form stores the *structure* (scoped terms, fused nodes,
enhanced nodes, both Hasse edge sets, the witness and mu mappings) plus
the measure name and epsilon; loading re-instantiates the measure from
the registry.

Round-trip guarantee: ``load_seo(dump_seo(seo))`` answers every
``similar`` / ``expand_*`` / ``leq`` query identically (tested).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, Iterable, List, Tuple

from ..errors import SimilarityError
from ..ioutils import atomic_write_text
from ..ontology.constraints import ScopedTerm
from ..ontology.fusion import FusedNode, FusionResult
from ..ontology.hierarchy import Hierarchy
from .measures import StringSimilarityMeasure, get_measure
from .sea import EnhancedNode, NodeDistance, SimilarityEnhancement
from .seo import SimilarityEnhancedOntology

FORMAT_VERSION = 1
PATCH_FORMAT_VERSION = 1


def _scoped_to_json(scoped: ScopedTerm) -> List[Any]:
    return [scoped.term, scoped.source]


def _scoped_from_json(payload: List[Any]) -> ScopedTerm:
    return ScopedTerm(payload[0], payload[1])


def _fused_to_json(node: FusedNode) -> List[List[Any]]:
    return sorted((_scoped_to_json(member) for member in node.members), key=str)


def _fused_from_json(payload: List[List[Any]]) -> FusedNode:
    return FusedNode(frozenset(_scoped_from_json(member) for member in payload))


def seo_to_dict(seo: SimilarityEnhancedOntology) -> Dict[str, Any]:
    """Serialise an SEO into a JSON-compatible dictionary."""
    measure = seo.measure
    if not measure.name:
        raise SimilarityError(
            "only registry measures (with a .name) can be persisted; "
            f"{type(measure).__name__} has none"
        )

    fused_nodes = sorted(seo.fusion.hierarchy.terms, key=str)
    fused_index = {node: i for i, node in enumerate(fused_nodes)}
    enhanced_nodes = sorted(seo.hierarchy.terms, key=str)
    enhanced_index = {node: i for i, node in enumerate(enhanced_nodes)}

    return {
        "format": FORMAT_VERSION,
        "measure": measure.name,
        "epsilon": seo.epsilon,
        "mode": seo.enhancement.mode,
        "fusion": {
            "nodes": [_fused_to_json(node) for node in fused_nodes],
            "edges": sorted(
                [fused_index[lower], fused_index[upper]]
                for lower, upper in seo.fusion.hierarchy.edges()
            ),
            "witness": [
                [_scoped_to_json(scoped), fused_index[node]]
                for scoped, node in sorted(
                    seo.fusion.witness.items(), key=lambda kv: str(kv[0])
                )
            ],
        },
        "enhancement": {
            "nodes": [
                sorted(fused_index[member] for member in node.members)
                for node in enhanced_nodes
            ],
            "edges": sorted(
                [enhanced_index[lower], enhanced_index[upper]]
                for lower, upper in seo.hierarchy.edges()
            ),
        },
    }


def seo_from_dict(
    payload: Dict[str, Any], trusted: bool = False
) -> SimilarityEnhancedOntology:
    """Rebuild an SEO from :func:`seo_to_dict` output.

    ``trusted`` restores the hierarchies via
    :meth:`~repro.ontology.hierarchy.Hierarchy.from_hasse`, skipping the
    transitive-reduction normalisation — sound because serialised edges
    come from a ``Hierarchy`` and are already Hasse.  Only pass it for
    payloads whose integrity was verified (e.g. a checksummed cache
    entry); untrusted files keep the full normalising constructor.
    """
    version = payload.get("format")
    if version != FORMAT_VERSION:
        raise SimilarityError(f"unsupported SEO format version {version!r}")
    measure = get_measure(payload["measure"])
    epsilon = float(payload["epsilon"])
    make_hierarchy = Hierarchy.from_hasse if trusted else Hierarchy

    fused_nodes = [_fused_from_json(node) for node in payload["fusion"]["nodes"]]
    fused_hierarchy = make_hierarchy(
        [
            (fused_nodes[lower], fused_nodes[upper])
            for lower, upper in payload["fusion"]["edges"]
        ],
        nodes=fused_nodes,
    )
    witness = {
        _scoped_from_json(scoped): fused_nodes[index]
        for scoped, index in payload["fusion"]["witness"]
    }
    fusion = FusionResult(fused_hierarchy, witness)

    enhanced_nodes = [
        EnhancedNode(frozenset(fused_nodes[i] for i in members))
        for members in payload["enhancement"]["nodes"]
    ]
    enhanced_hierarchy = make_hierarchy(
        [
            (enhanced_nodes[lower], enhanced_nodes[upper])
            for lower, upper in payload["enhancement"]["edges"]
        ],
        nodes=enhanced_nodes,
    )
    mu: Dict[Hashable, set] = {node: set() for node in fused_nodes}
    for enhanced in enhanced_nodes:
        for member in enhanced.members:
            mu[member].add(enhanced)
    enhancement = SimilarityEnhancement(
        enhanced_hierarchy,
        {node: frozenset(groups) for node, groups in mu.items()},
        epsilon,
        NodeDistance(measure),
        payload.get("mode", "strict"),
    )
    return SimilarityEnhancedOntology(fusion, enhancement)


def _enhanced_to_json(node: EnhancedNode) -> List[Any]:
    return sorted((_fused_to_json(member) for member in node.members), key=str)


def _enhanced_from_json(payload: List[Any]) -> EnhancedNode:
    return EnhancedNode(
        frozenset(_fused_from_json(member) for member in payload)
    )


def seo_patch_to_dict(
    previous: SimilarityEnhancedOntology,
    seo: SimilarityEnhancedOntology,
    removed: Iterable[EnhancedNode],
    added: Iterable[EnhancedNode],
) -> Dict[str, Any]:
    """The value-based wire form of one enhancement patch.

    ``seo`` must have been built from ``previous`` by
    :func:`~repro.similarity.sea.extend_enhancement` (leaf-only growth),
    with ``removed``/``added`` the enhanced cliques the patch dropped and
    created.  The dict is JSON-compatible and sized to the *delta*, not
    the ontology: the new fused singletons with their fusion covers, plus
    the removed/added cliques with the added ones' covers in H'.  All
    nodes are encoded by value (scoped-term sets), so
    :func:`apply_seo_patch` can replay it against any value-identical
    copy of ``previous`` — a worker's restored or fork-inherited SEO —
    without sharing object identity with the builder.
    """
    removed = list(removed)
    added = list(added)
    prev_fused = previous.fusion.hierarchy
    new_fused: List[FusedNode] = []
    seen: set = set()
    for node in added:
        for member in node.members:
            if member not in prev_fused and member not in seen:
                seen.add(member)
                new_fused.append(member)
    new_fused.sort(key=str)
    fused_hierarchy = seo.fusion.hierarchy
    return {
        "format": PATCH_FORMAT_VERSION,
        "epsilon": seo.epsilon,
        "fusion": {
            "nodes": [_fused_to_json(node) for node in new_fused],
            "parents": [
                [
                    index,
                    [
                        _fused_to_json(parent)
                        for parent in sorted(
                            fused_hierarchy.parents(node), key=str
                        )
                    ],
                ]
                for index, node in enumerate(new_fused)
            ],
        },
        "enhancement": {
            "removed": [_enhanced_to_json(node) for node in removed],
            "added": [
                {
                    "members": _enhanced_to_json(node),
                    "parents": [
                        _enhanced_to_json(parent)
                        for parent in sorted(
                            seo.hierarchy.parents(node), key=str
                        )
                    ],
                }
                for node in added
            ],
        },
    }


def apply_seo_patch(
    seo: SimilarityEnhancedOntology, payload: Dict[str, Any]
) -> SimilarityEnhancedOntology:
    """Replay a :func:`seo_patch_to_dict` payload against a live SEO.

    Returns a new SEO (copy-on-write — ``seo`` is never mutated, and all
    unaffected structure is shared with it), value-identical to the one
    the patch was recorded from.  Replay is idempotent: a patch whose
    additions are all present and removals all absent returns ``seo``
    unchanged, so a worker that already converged (e.g. one respawned
    from an advanced snapshot mid-broadcast) is a no-op.  A patch that
    neither applies cleanly nor was already applied raises
    :class:`~repro.errors.SimilarityError` — the caller's system is not
    the base the patch was computed against.
    """
    version = payload.get("format")
    if version != PATCH_FORMAT_VERSION:
        raise SimilarityError(f"unsupported SEO patch format {version!r}")
    if float(payload["epsilon"]) != seo.epsilon:
        raise SimilarityError("SEO patch epsilon does not match the live SEO")
    removed = [
        _enhanced_from_json(entry)
        for entry in payload["enhancement"]["removed"]
    ]
    added_entries = payload["enhancement"]["added"]
    added = [_enhanced_from_json(entry["members"]) for entry in added_entries]
    hierarchy = seo.hierarchy
    added_present = sum(1 for node in added if node in hierarchy)
    removed_present = sum(1 for node in removed if node in hierarchy)
    if added_present == len(added) and removed_present == 0:
        return seo  # already applied: idempotent replay
    if added_present or removed_present != len(removed):
        raise SimilarityError("SEO patch does not apply to this SEO")

    fused_nodes = [
        _fused_from_json(entry) for entry in payload["fusion"]["nodes"]
    ]
    fused_edges: List[Tuple[FusedNode, FusedNode]] = []
    isolated: List[FusedNode] = []
    for index, parents in payload["fusion"]["parents"]:
        node = fused_nodes[index]
        if parents:
            fused_edges.extend(
                (node, _fused_from_json(parent)) for parent in parents
            )
        else:
            isolated.append(node)
    extended_fusion = seo.fusion.hierarchy.extended_with_lower_terms(
        fused_edges, new_nodes=isolated
    )
    if extended_fusion is None:
        raise SimilarityError("SEO patch fusion extension does not apply")
    witness = dict(seo.fusion.witness)
    for node in fused_nodes:
        for scoped in node.members:
            witness[scoped] = node
    fusion = FusionResult(extended_fusion, witness)

    patched = hierarchy.without_leaves(removed)
    if patched is None:
        raise SimilarityError("SEO patch removals do not apply")
    new_edges: List[Tuple[EnhancedNode, EnhancedNode]] = []
    roots: List[EnhancedNode] = []
    for node, entry in zip(added, added_entries):
        if entry["parents"]:
            new_edges.extend(
                (node, _enhanced_from_json(parent))
                for parent in entry["parents"]
            )
        else:
            roots.append(node)
    extended = patched.extended_with_lower_terms(new_edges, new_nodes=roots)
    if extended is None:
        raise SimilarityError("SEO patch additions do not apply")
    mu = dict(seo.enhancement.mu)
    for clique in removed:
        for member in clique.members:
            groups = mu.get(member)
            if groups:
                mu[member] = frozenset(g for g in groups if g != clique)
    for clique in added:
        for member in clique.members:
            mu[member] = (mu.get(member) or frozenset()) | {clique}
    enhancement = SimilarityEnhancement(
        extended,
        mu,
        seo.epsilon,
        seo.enhancement.distance,
        seo.enhancement.mode,
    )
    return SimilarityEnhancedOntology._patched(
        fusion, enhancement, seo, removed, added
    )


def dump_seo(seo: SimilarityEnhancedOntology, indent: int = 0) -> str:
    """Serialise an SEO to a JSON string."""
    return json.dumps(seo_to_dict(seo), indent=indent or None, sort_keys=True)


def load_seo(text: str) -> SimilarityEnhancedOntology:
    """Load an SEO from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimilarityError(f"corrupt SEO data: {exc}") from exc
    return seo_from_dict(payload)


def save_seo(seo: SimilarityEnhancedOntology, path: str) -> None:
    """Write an SEO to a JSON file (atomically: temp + fsync + replace).

    SEOs are the dominant precomputation cost (taxonomic similarity over
    the fused hierarchy), so their on-disk cache must never be left torn
    by a crash mid-write.
    """
    atomic_write_text(path, dump_seo(seo, indent=2))


def read_seo(path: str) -> SimilarityEnhancedOntology:
    """Read an SEO from a JSON file.

    Raises :class:`~repro.errors.SimilarityError` on truncated or
    otherwise corrupt files (callers can then rebuild from source data).
    """
    with open(path, "r", encoding="utf-8") as handle:
        return load_seo(handle.read())
