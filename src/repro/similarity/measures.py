"""String similarity measures (Definition 7 of the paper).

The paper models similarity as a *distance*: a string similarity measure
``d_s`` maps a pair of strings to a non-negative real, with ``d_s(X, X) = 0``
and symmetry; it is *strong* when it additionally satisfies the triangle
inequality (Levenshtein is the paper's canonical strong measure).  Measures
originally defined as similarities in [0, 1] (Jaro, Jaccard, cosine...) are
exposed here as the distance ``1 - similarity``.

All measures share the :class:`StringSimilarityMeasure` interface so the
SEA algorithm, the ``~`` (similarTo) operator and the experiment harness
can plug in any of them — exactly the pluggability Section 4.3 claims for
the TOSS framework.
"""

from __future__ import annotations

import abc
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence

from . import tokenize
from .tokenize import CorpusStatistics


class StringSimilarityMeasure(abc.ABC):
    """A distance between strings per Definition 7.

    Subclasses implement :meth:`distance`.  ``is_strong`` must be True only
    when the triangle inequality provably holds; the SEA algorithm uses it
    to enable the Lemma 1 fast path for node-to-node distances.
    """

    #: Whether the triangle inequality holds (Definition 7's "strong").
    is_strong: bool = False

    #: Registry name; filled in by :func:`register_measure`.
    name: str = ""

    @abc.abstractmethod
    def distance(self, x: str, y: str) -> float:
        """Non-negative distance; 0 means the strings are identical."""

    def lower_bound(self, x: str, y: str) -> float:
        """A cheap lower bound on ``distance(x, y)`` (default: 0).

        Subclasses with an O(1) bound override this; the SEA algorithm uses
        it to discard most node pairs before running the full measure.
        """
        return 0.0

    def bounded_distance(self, x: str, y: str, bound: float) -> float:
        """``distance(x, y)``, allowed to return any value > ``bound`` early.

        The default delegates to :meth:`distance`; measures with a banded
        implementation (Levenshtein) override it.
        """
        if self.lower_bound(x, y) > bound:
            return bound + 1.0
        return self.distance(x, y)

    def similar(self, x: str, y: str, epsilon: float) -> bool:
        """True iff ``distance(x, y) <= epsilon`` (the ``~`` operator)."""
        return self.bounded_distance(x, y, epsilon) <= epsilon

    def __call__(self, x: str, y: str) -> float:
        return self.distance(x, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Callable[[], StringSimilarityMeasure]] = {}


def register_measure(
    name: str, factory: Callable[[], StringSimilarityMeasure]
) -> None:
    """Register a measure factory under ``name`` for :func:`get_measure`."""
    _REGISTRY[name] = factory


def available_measures() -> List[str]:
    """Names accepted by :func:`get_measure`, sorted."""
    return sorted(_REGISTRY)


def get_measure(name: str) -> StringSimilarityMeasure:
    """Instantiate a registered measure by name.

    >>> get_measure("levenshtein").distance("model", "models")
    1.0
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown similarity measure {name!r}; known: {known}") from None
    measure = factory()
    measure.name = name
    return measure


# ---------------------------------------------------------------------------
# Edit distances
# ---------------------------------------------------------------------------


@lru_cache(maxsize=65536)
def _levenshtein(x: str, y: str) -> int:
    """Classic unit-cost edit distance, two-row dynamic programme."""
    if x == y:
        return 0
    if not x:
        return len(y)
    if not y:
        return len(x)
    if len(x) < len(y):  # iterate over the longer string's columns
        x, y = y, x
    previous = list(range(len(y) + 1))
    for i, cx in enumerate(x, start=1):
        current = [i]
        for j, cy in enumerate(y, start=1):
            cost = 0 if cx == cy else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


@lru_cache(maxsize=65536)
def _banded_levenshtein(x: str, y: str, bound: float) -> float:
    """Banded edit-distance DP; ``len(x) >= len(y)`` and both non-equal.

    Returns the distance, or ``bound + 1`` once it provably exceeds the
    bound (whole rows of the band above the threshold).
    """
    radius = int(bound)
    len_x, len_y = len(x), len(y)
    big = bound + 1.0
    previous = [float(j) if j <= radius else big for j in range(len_y + 1)]
    for i in range(1, len_x + 1):
        lo = max(1, i - radius)
        hi = min(len_y, i + radius)
        current = [big] * (len_y + 1)
        row_min = big
        if lo == 1:
            current[0] = float(i) if i <= radius else big
            row_min = current[0]
        cx = x[i - 1]
        for j in range(lo, hi + 1):
            cost = 0.0 if cx == y[j - 1] else 1.0
            best = min(
                previous[j] + 1.0,
                current[j - 1] + 1.0,
                previous[j - 1] + cost,
            )
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > bound:
            return big
        previous = current
    return previous[len_y] if previous[len_y] <= bound else big


class Levenshtein(StringSimilarityMeasure):
    """Unit-cost edit distance — the paper's running strong measure.

    Example 11 uses it with epsilon = 2 to merge {relation, relational}
    and {model, models}.
    """

    is_strong = True

    def distance(self, x: str, y: str) -> float:
        return float(_levenshtein(*tokenize.sorted_token_pair(x, y)))

    def lower_bound(self, x: str, y: str) -> float:
        return float(abs(len(x) - len(y)))

    def bounded_distance(self, x: str, y: str, bound: float) -> float:
        """Banded (Ukkonen) edit distance: O(bound * min(len)) time.

        Returns ``bound + 1`` as soon as the distance provably exceeds the
        bound, which is what makes epsilon-similarity graphs over thousands
        of ontology terms tractable.  Results are memoised (the DP is the
        similarity hot spot of join pruning and verification, and the same
        title/venue pairs recur across queries).
        """
        if x == y:
            return 0.0
        if abs(len(x) - len(y)) > bound:
            return bound + 1.0
        if int(bound) < 0:
            return bound + 1.0
        if len(x) < len(y):
            x, y = y, x
        return _banded_levenshtein(x, y, bound)


class NormalizedLevenshtein(StringSimilarityMeasure):
    """Levenshtein scaled into [0, 1] by the longer string's length.

    Convenient when comparing strings of very different lengths; note the
    normalisation breaks the triangle inequality, so this measure is not
    strong.
    """

    is_strong = False

    def distance(self, x: str, y: str) -> float:
        if x == y:
            return 0.0
        longest = max(len(x), len(y))
        if longest == 0:
            return 0.0
        return _levenshtein(*tokenize.sorted_token_pair(x, y)) / longest


class DamerauLevenshtein(StringSimilarityMeasure):
    """Edit distance with adjacent transpositions (restricted Damerau).

    Useful for typo-style variation ("GianLuigi" vs "Gian Luigi" style
    data-entry errors the paper motivates in Section 2.2).
    """

    is_strong = True

    def distance(self, x: str, y: str) -> float:
        if x == y:
            return 0.0
        if not x:
            return float(len(y))
        if not y:
            return float(len(x))
        width = len(y) + 1
        two_back: List[int] = []
        previous = list(range(width))
        for i, cx in enumerate(x, start=1):
            current = [i]
            for j, cy in enumerate(y, start=1):
                cost = 0 if cx == cy else 1
                best = min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + cost,
                )
                if (
                    i > 1
                    and j > 1
                    and cx == y[j - 2]
                    and x[i - 2] == cy
                ):
                    best = min(best, two_back[j - 2] + 1)
                current.append(best)
            two_back = previous
            previous = current
        return float(previous[-1])


# ---------------------------------------------------------------------------
# Jaro family
# ---------------------------------------------------------------------------


def _jaro_similarity(x: str, y: str) -> float:
    if x == y:
        return 1.0
    len_x, len_y = len(x), len(y)
    if len_x == 0 or len_y == 0:
        return 0.0
    window = max(len_x, len_y) // 2 - 1
    window = max(window, 0)
    x_flags = [False] * len_x
    y_flags = [False] * len_y
    matches = 0
    for i, cx in enumerate(x):
        lo = max(0, i - window)
        hi = min(i + window + 1, len_y)
        for j in range(lo, hi):
            if not y_flags[j] and y[j] == cx:
                x_flags[i] = y_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_x):
        if not x_flags[i]:
            continue
        while not y_flags[j]:
            j += 1
        if x[i] != y[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    m = float(matches)
    return (m / len_x + m / len_y + (m - transpositions) / m) / 3.0


class Jaro(StringSimilarityMeasure):
    """Jaro metric [9], exposed as distance ``1 - jaro_similarity``."""

    is_strong = False

    def distance(self, x: str, y: str) -> float:
        return 1.0 - _jaro_similarity(x, y)

    def similarity(self, x: str, y: str) -> float:
        """The underlying similarity in [0, 1]."""
        return _jaro_similarity(x, y)


class JaroWinkler(StringSimilarityMeasure):
    """Jaro-Winkler: Jaro boosted for common prefixes (names match better)."""

    is_strong = False

    def __init__(self, prefix_weight: float = 0.1, max_prefix: int = 4) -> None:
        if not 0.0 <= prefix_weight <= 0.25:
            raise ValueError("prefix_weight must be in [0, 0.25]")
        self.prefix_weight = prefix_weight
        self.max_prefix = max_prefix

    def similarity(self, x: str, y: str) -> float:
        jaro = _jaro_similarity(x, y)
        prefix = 0
        for cx, cy in zip(x, y):
            if cx != cy or prefix >= self.max_prefix:
                break
            prefix += 1
        return jaro + prefix * self.prefix_weight * (1.0 - jaro)

    def distance(self, x: str, y: str) -> float:
        return 1.0 - self.similarity(x, y)


# ---------------------------------------------------------------------------
# Token-based measures
# ---------------------------------------------------------------------------


class Jaccard(StringSimilarityMeasure):
    """Jaccard word-set distance: ``1 - |S intersect T| / |S union T|``.

    The footnote in Section 4.3 defines the similarity form; we expose the
    complementary distance.  Jaccard distance on sets is a true metric, so
    the measure is strong.
    """

    is_strong = True

    def distance(self, x: str, y: str) -> float:
        sx, sy = tokenize.word_set(x), tokenize.word_set(y)
        if not sx and not sy:
            return 0.0
        union = len(sx | sy)
        if union == 0:
            return 0.0
        return 1.0 - len(sx & sy) / union


class CosineTfIdf(StringSimilarityMeasure):
    """Cosine distance over TF-IDF word vectors.

    Needs corpus statistics for IDF weights; with no corpus it degrades to
    plain TF cosine.  ``1 - cosine`` violates the triangle inequality in
    general, so the measure is not strong.
    """

    is_strong = False

    def __init__(self, corpus: Optional[CorpusStatistics] = None) -> None:
        self.corpus = corpus if corpus is not None else CorpusStatistics()

    def distance(self, x: str, y: str) -> float:
        if x == y:
            return 0.0
        u = self.corpus.tfidf_vector(x)
        v = self.corpus.tfidf_vector(y)
        if not u and not v:
            return 0.0
        return 1.0 - tokenize.cosine_of_vectors(u, v)


class QGram(StringSimilarityMeasure):
    """q-gram distance (Ukkonen): L1 distance between q-gram profiles.

    A strong (metric) measure that is much cheaper than Levenshtein on long
    strings and bounds it from below (up to a factor of 2q).
    """

    is_strong = True

    def __init__(self, q: int = 3) -> None:
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q

    def distance(self, x: str, y: str) -> float:
        if x == y:
            return 0.0
        from collections import Counter

        profile_x = Counter(tokenize.qgrams(x, self.q))
        profile_y = Counter(tokenize.qgrams(y, self.q))
        keys = set(profile_x) | set(profile_y)
        return float(sum(abs(profile_x[k] - profile_y[k]) for k in keys))


class MongeElkan(StringSimilarityMeasure):
    """Monge-Elkan [12]: average best-match score between word tokens.

    Each token of the first string is matched to its most similar token of
    the second under an inner measure (Jaro-Winkler by default); the scores
    are averaged.  The raw form is asymmetric, so we symmetrise by taking
    the max of the two directions (a distance, the worst-direction view).
    """

    is_strong = False

    def __init__(self, inner: Optional[StringSimilarityMeasure] = None) -> None:
        self.inner = inner if inner is not None else JaroWinkler()

    def _directed(self, tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
        if not tokens_a:
            return 0.0 if not tokens_b else 1.0
        if not tokens_b:
            return 1.0
        total = 0.0
        for token_a in tokens_a:
            best = min(self.inner.distance(token_a, token_b) for token_b in tokens_b)
            total += best
        return total / len(tokens_a)

    def distance(self, x: str, y: str) -> float:
        if x == y:
            return 0.0
        tokens_x = tokenize.words(x)
        tokens_y = tokenize.words(y)
        return max(self._directed(tokens_x, tokens_y), self._directed(tokens_y, tokens_x))


class ScaledMeasure(StringSimilarityMeasure):
    """An existing measure multiplied by a constant factor.

    Lets [0, 1]-valued measures be used with the paper's integer-looking
    epsilon thresholds (Section 2.2's example distances: 0.1, 2.2, 6.5).
    Scaling preserves strongness.
    """

    def __init__(self, base: StringSimilarityMeasure, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.base = base
        self.factor = factor
        self.is_strong = base.is_strong

    def distance(self, x: str, y: str) -> float:
        return self.base.distance(x, y) * self.factor


register_measure("levenshtein", Levenshtein)
register_measure("normalized_levenshtein", NormalizedLevenshtein)
register_measure("damerau", DamerauLevenshtein)
register_measure("jaro", Jaro)
register_measure("jaro_winkler", JaroWinkler)
register_measure("jaccard", Jaccard)
register_measure("cosine", CosineTfIdf)
register_measure("qgram", QGram)
register_measure("monge_elkan", MongeElkan)
