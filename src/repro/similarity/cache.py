"""Persistent similarity-graph cache for SEO construction.

Section 6 of the paper: the SEO is a *precomputation* — it only changes
when the source hierarchies, the measure, epsilon, the interoperation
constraints or the SEA mode change.  This module keys a built SEO by
exactly those inputs (a sha256 over a canonical rendering of all five)
and stores the serialised SEO next to the key, so rebuilding a system
after a restart, or re-running an experiment with an unchanged corpus,
skips both the fusion and the quadratic similarity-graph phase entirely.

Entries are written with the crash-safe atomic writer from
:mod:`repro.ioutils` and carry an embedded checksum over the SEO payload;
:meth:`SimilarityGraphCache.load` verifies it before taking the *trusted*
deserialisation fast path (:func:`~repro.similarity.persistence.seo_from_dict`
with ``trusted=True``, which skips re-normalising the stored Hasse
edges).  Any mismatch, damage or format drift is treated as a plain cache
miss — a corrupt cache can cost a rebuild, never a wrong answer.

Not every build is cacheable: the key must be derivable from the inputs
alone, so unnamed (unregistered) measures and hierarchies over
non-string terms fall through with ``key() -> None`` and the caller
builds uncached.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional

from ..ioutils import atomic_write_text, sha256_text
from ..ontology.constraints import InteroperationConstraint
from ..ontology.hierarchy import Hierarchy
from .measures import StringSimilarityMeasure
from .persistence import seo_from_dict, seo_to_dict
from .seo import SimilarityEnhancedOntology

#: Bump when the key derivation or entry layout changes; old entries
#: then simply miss and get rebuilt.
CACHE_FORMAT = 1

_KEY_PREFIX = "toss-seo-cache"


def _canonical_payload_text(seo_payload: Dict[str, Any]) -> str:
    """The checksummed rendering of a serialised SEO (key-order invariant)."""
    return json.dumps(seo_payload, sort_keys=True, separators=(",", ":"))


def cache_key(
    hierarchies: Mapping[Hashable, Hierarchy],
    measure: StringSimilarityMeasure,
    epsilon: float,
    constraints: Iterable[InteroperationConstraint] = (),
    mode: str = "strict",
) -> Optional[str]:
    """Deterministic content key for one SEO build, or None if uncacheable.

    The key hashes a canonical text listing every build input: the cache
    format version, the measure's registry name, epsilon, the SEA mode,
    each source hierarchy's sorted node and edge lists, and the sorted
    constraint representations.  Uncacheable inputs — measures without a
    registry name (they could not be restored anyway) and hierarchies
    whose terms or source labels are not plain strings (no canonical
    rendering exists for arbitrary objects) — return None.
    """
    if not measure.name:
        return None
    lines = [
        f"{_KEY_PREFIX}/{CACHE_FORMAT}",
        f"measure={measure.name}",
        f"epsilon={float(epsilon)!r}",
        f"mode={mode}",
    ]
    try:
        sources = sorted(hierarchies, key=str)
    except TypeError:
        return None
    for source in sources:
        if not isinstance(source, str):
            return None
        hierarchy = hierarchies[source]
        for term in hierarchy.terms:
            if not isinstance(term, str):
                return None
        lines.append(f"hierarchy={source}")
        lines.extend(f"node={term}" for term in sorted(hierarchy.terms))
        lines.extend(
            f"edge={lower}\x00{upper}"
            for lower, upper in sorted(hierarchy.edges())
        )
    lines.extend(f"constraint={text}" for text in sorted(repr(c) for c in constraints))
    return sha256_text("\n".join(lines))


class SimilarityGraphCache:
    """On-disk cache of built SEOs, one checksummed JSON file per key."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0

    # -- key / path helpers -------------------------------------------------

    key = staticmethod(cache_key)

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    # -- operations ---------------------------------------------------------

    def load(self, key: str) -> Optional[SimilarityEnhancedOntology]:
        """The cached SEO for ``key``, or None (counted as a miss).

        Verification order matters: the checksum is checked against the
        canonical rendering of the embedded SEO payload *before* the
        trusted deserialisation fast path runs, so a tampered or torn
        entry can only ever produce a miss.
        """
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("format") != CACHE_FORMAT or entry.get("key") != key:
                raise ValueError("cache entry format/key mismatch")
            payload = entry["seo"]
            if sha256_text(_canonical_payload_text(payload)) != entry["checksum"]:
                raise ValueError("cache entry checksum mismatch")
            seo = seo_from_dict(payload, trusted=True)
        except Exception:
            # Missing, torn, tampered or stale-format entries all mean the
            # same thing to the caller: build it again.
            self.misses += 1
            return None
        self.hits += 1
        return seo

    def store(
        self,
        key: str,
        seo: SimilarityEnhancedOntology,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Persist ``seo`` under ``key`` (atomic write); returns the path."""
        payload = seo_to_dict(seo)
        entry = {
            "format": CACHE_FORMAT,
            "key": key,
            "checksum": sha256_text(_canonical_payload_text(payload)),
            "seo": payload,
            "meta": dict(meta or {}),
        }
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(key)
        atomic_write_text(path, json.dumps(entry, sort_keys=True))
        self.stores += 1
        return path

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        try:
            os.unlink(self.path_for(key))
        except FileNotFoundError:
            return False
        self.invalidated += 1
        return True

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        removed = 0
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except FileNotFoundError:
                    continue
                removed += 1
        self.invalidated += removed
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
        }

    def __repr__(self) -> str:
        return (
            f"SimilarityGraphCache({self.directory!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
