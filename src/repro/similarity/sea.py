"""The SEA algorithm (Figure 12): similarity enhancement of a hierarchy.

Given a (fused) hierarchy H, a similarity measure d and a threshold
epsilon, SEA builds the *similarity enhancement* (H', mu) of Definition 8:

* the nodes of H' are the maximal sets of pairwise-epsilon-similar nodes of
  H — i.e. the maximal cliques of the epsilon-similarity graph (conditions
  2 and 3 of Definition 8), with subsumed sets removed (condition 4);
* ``mu`` maps every node of H to the set of H' nodes containing it;
* H' carries an edge (path) from V to W exactly when *every* pair
  ``a in V, b in W`` satisfies ``a <= b`` in H (the only order relation
  compatible with both directions of condition 1), transitively reduced to
  Hasse form.

If condition 1 cannot be satisfied — some pair ``a < b`` in H sits in
cliques V, W whose full cross product is not ordered — or the induced
relation is cyclic, no similarity enhancement exists (Definition 9,
"similarity inconsistency") and :class:`SimilarityInconsistencyError` is
raised with a diagnostic witness.

Theorem 1 guarantees this construction is the unique enhancement up to
isomorphism; Theorem 2's correctness argument is mirrored by the
``_verify`` post-condition (enabled via ``verify=True``), and the test
suite property-checks Definition 8's conditions on random inputs.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .. import graphutils
from ..errors import SimilarityInconsistencyError
from ..guard import ResourceGuard
from ..obs.metrics import REGISTRY as METRICS
from ..obs.trace import current_tracer
from ..parallel import (
    SERIAL_OPTIONS,
    BuildOptions,
    parallel_group_edges,
    should_parallelize,
)
from ..ontology.hierarchy import Hierarchy
from .candidates import (
    BlockStats,
    block_edges,
    length_sorted_order,
    pair_count,
    supports_filter,
)
from .incremental import EpsilonGraphCache, delta_rep_edges
from .measures import StringSimilarityMeasure

Node = Hashable

#: Order context of a node: its strict ancestors and descendants.
OrderContext = Tuple[FrozenSet[Node], FrozenSet[Node]]


def node_strings(node: Node) -> FrozenSet[str]:
    """The set of strings "contained in" a hierarchy node (Section 4.3).

    Fused nodes carry several strings (their merged terms); plain string
    nodes contain just themselves; anything else contributes ``str(node)``.
    """
    strings = getattr(node, "strings", None)
    if strings is not None:
        return frozenset(strings)
    if isinstance(node, str):
        return frozenset({node})
    return frozenset({str(node)})


class NodeDistance:
    """Node-to-node distance induced by a string measure (Definition 7).

    ``d(A, B) = min over X in S_A, Y in S_B of d_s(X, Y)`` where ``S_A`` is
    the set of strings contained in node A.  For *strong* measures, Lemma 1
    shows all cross pairs agree, so a single pair suffices — the fast path
    used here.  Distances are cached symmetrically.
    """

    def __init__(
        self,
        measure: StringSimilarityMeasure,
        strings_of: Callable[[Node], FrozenSet[str]] = node_strings,
    ) -> None:
        self.measure = measure
        self.strings_of = strings_of
        self._cache: Dict[Tuple[int, int], float] = {}

    def __call__(self, a: Node, b: Node) -> float:
        if a == b:
            return 0.0
        key = (id(a), id(b)) if id(a) <= id(b) else (id(b), id(a))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        strings_a = self.strings_of(a)
        strings_b = self.strings_of(b)
        if not strings_a or not strings_b:
            raise SimilarityInconsistencyError(
                f"node {a!r} or {b!r} contains no strings; distance undefined"
            )
        if self.measure.is_strong:
            # Lemma 1: within a node all strings are distance 0 apart, and
            # the triangle inequality forces every cross pair to agree.
            # The representative is the lexicographic minimum so the choice
            # is deterministic across interpreter runs and worker processes.
            value = self.measure.distance(min(strings_a), min(strings_b))
        else:
            value = min(
                self.measure.distance(x, y)
                for x in strings_a
                for y in strings_b
            )
        self._cache[key] = value
        return value

    def within(self, a: Node, b: Node, epsilon: float) -> bool:
        """``d(a, b) <= epsilon`` using the measure's bounded fast path.

        Avoids computing exact distances for far-apart pairs — the
        dominant cost when building the epsilon-similarity graph over a
        large fused ontology.
        """
        if a == b:
            return True
        key = (id(a), id(b)) if id(a) <= id(b) else (id(b), id(a))
        cached = self._cache.get(key)
        if cached is not None:
            return cached <= epsilon
        strings_a = self.strings_of(a)
        strings_b = self.strings_of(b)
        if self.measure.is_strong:
            return (
                self.measure.bounded_distance(min(strings_a), min(strings_b), epsilon)
                <= epsilon
            )
        return any(
            self.measure.bounded_distance(x, y, epsilon) <= epsilon
            for x in strings_a
            for y in strings_b
        )


@dataclass(frozen=True)
class EnhancedNode:
    """A node of the similarity-enhanced hierarchy: a set of H nodes.

    ``strings`` unions the strings of the members, so enhanced hierarchies
    can themselves be fed back through similarity machinery, and so the
    query executor can expand a term into everything it co-habits with.
    """

    members: FrozenSet[Node]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("an enhanced node must contain at least one member")

    @property
    def strings(self) -> FrozenSet[str]:
        result: Set[str] = set()
        for member in self.members:
            result.update(node_strings(member))
        return frozenset(result)

    @property
    def label(self) -> str:
        return min(self.strings)

    def __str__(self) -> str:
        if len(self.members) == 1:
            return str(next(iter(self.members)))
        return "{" + ", ".join(sorted(str(m) for m in self.members)) + "}"

    def __repr__(self) -> str:
        return f"EnhancedNode({str(self)})"


class SimilarityEnhancement:
    """The pair (H', mu) of Definition 8 plus its parameters.

    Attributes
    ----------
    hierarchy:
        H' — a :class:`Hierarchy` over :class:`EnhancedNode` values.
    mu:
        The mapping from each original node to the frozenset of enhanced
        nodes containing it.
    epsilon, distance:
        The parameters the enhancement was built with.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        mu: Mapping[Node, FrozenSet[EnhancedNode]],
        epsilon: float,
        distance: NodeDistance,
        mode: str = "strict",
    ) -> None:
        self.hierarchy = hierarchy
        self.mu: Dict[Node, FrozenSet[EnhancedNode]] = dict(mu)
        self.epsilon = epsilon
        self.distance = distance
        self.mode = mode
        #: :class:`SeaStats` of the build that produced this enhancement;
        #: None for enhancements restored from disk.
        self.stats: Optional[SeaStats] = None
        #: Order-context buckets of the build (order-safe mode only):
        #: context -> every H node carrying it, singletons included.  The
        #: enhancement-patch path (:func:`extend_enhancement`) needs them
        #: to find which existing nodes a new leaf must be compared
        #: against without re-bucketing the whole hierarchy; None when
        #: built in strict mode or restored from disk.
        self.context_buckets: Optional[Dict[OrderContext, List[Node]]] = None

    def mu_inverse(self, enhanced: EnhancedNode) -> FrozenSet[Node]:
        """``mu^{-1}``: the original nodes mapped into ``enhanced``."""
        return enhanced.members

    def nodes_containing(self, original: Node) -> FrozenSet[EnhancedNode]:
        """All enhanced nodes whose member set includes ``original``."""
        return self.mu.get(original, frozenset())

    def cohabiting(self, a: Node, b: Node) -> bool:
        """Definition 8's similarity test: do a and b share an H' node?

        This is exactly the semantics of the ``~`` operator: "the condition
        is true iff there exists a node containing both of them in the
        similarity enhancement."
        """
        return a == b or bool(
            {node for node in self.mu.get(a, frozenset())}
            & {node for node in self.mu.get(b, frozenset())}
        )

    def similar_nodes(self, original: Node) -> FrozenSet[Node]:
        """All original nodes sharing at least one enhanced node with this one."""
        result: Set[Node] = set()
        for enhanced in self.mu.get(original, frozenset()):
            result.update(enhanced.members)
        result.discard(original)
        return frozenset(result)

    def __repr__(self) -> str:
        return (
            f"SimilarityEnhancement({len(self.hierarchy)} nodes, "
            f"epsilon={self.epsilon})"
        )


@dataclass
class SeaStats:
    """Counters and timings of one SEA similarity-graph construction.

    Exposed as :attr:`SimilarityEnhancement.stats` and rolled up into the
    system-level build report so operators can see what the candidate
    filter pruned and whether the parallel path engaged.
    """

    mode: str = "strict"
    #: Order-context buckets with at least two members.
    groups: int = 0
    #: All-pairs comparison count the naive algorithm would have run.
    total_pairs: int = 0
    #: Pairs that reached distance verification (the filters' output).
    candidates: int = 0
    #: Pairs the filters eliminated without running the measure.
    pairs_pruned: int = 0
    #: Verified epsilon-similar pairs (edges of the similarity graph).
    graph_edges: int = 0
    #: Maximal cliques (nodes of the enhanced hierarchy).
    cliques: int = 0
    filter_used: bool = False
    parallel_used: bool = False
    workers: int = 1
    graph_seconds: float = 0.0
    #: True when the graph was built by replaying a previous build's
    #: verdicts and verifying only the delta (see
    #: :mod:`repro.similarity.incremental`).
    incremental: bool = False
    #: Rep-level pair verdicts replayed from the cache (incremental only).
    reused_pairs: int = 0
    #: True when the previous enhancement was *patched in place* — only
    #: the buckets touched by new leaves were reprocessed and the
    #: enhanced hierarchy was edited, never rebuilt (see
    #: :func:`extend_enhancement`).  Implies ``incremental``.
    patched: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "groups": self.groups,
            "total_pairs": self.total_pairs,
            "candidates": self.candidates,
            "pairs_pruned": self.pairs_pruned,
            "graph_edges": self.graph_edges,
            "cliques": self.cliques,
            "filter_used": self.filter_used,
            "parallel_used": self.parallel_used,
            "workers": self.workers,
            "graph_seconds": self.graph_seconds,
            "incremental": self.incremental,
            "reused_pairs": self.reused_pairs,
            "patched": self.patched,
        }


def _order_context_index(
    hierarchy: Hierarchy, nodes: List[Node]
) -> Dict[Node, OrderContext]:
    """Each node's order context, computed in one pass and reused
    everywhere order-safe bucketing is needed (including `_verify`)."""
    return {
        node: (hierarchy.ancestors(node), hierarchy.descendants(node))
        for node in nodes
    }


def _connect_rep_level(
    adjacency: Dict[Node, Set[Node]],
    nodes_by_rep: Dict[str, List[Node]],
    rep_edges: Set[Tuple[str, str]],
) -> int:
    """Expand rep-level verdicts into node-level similarity edges.

    Nodes sharing one representative are at distance 0 and always
    connect; distinct-rep pairs connect exactly when their rep pair is an
    epsilon-edge.  Returns the number of node-level edges added — the
    same count a from-scratch :func:`block_edges` pass would report.
    """
    added = 0
    for members in nodes_by_rep.values():
        for i in range(len(members) - 1):
            for j in range(i + 1, len(members)):
                adjacency[members[i]].add(members[j])
                adjacency[members[j]].add(members[i])
                added += 1
    for rep_a, rep_b in rep_edges:
        for node_a in nodes_by_rep.get(rep_a, ()):
            for node_b in nodes_by_rep.get(rep_b, ()):
                adjacency[node_a].add(node_b)
                adjacency[node_b].add(node_a)
                added += 1
    return added


def _similarity_cliques(
    nodes: List[Node],
    distance: NodeDistance,
    epsilon: float,
    context_index: Optional[Dict[Node, OrderContext]] = None,
    guard: Optional[ResourceGuard] = None,
    options: Optional[BuildOptions] = None,
    reuse: Optional[EpsilonGraphCache] = None,
) -> Tuple[
    List[FrozenSet[Node]], SeaStats, Optional[Dict[OrderContext, List[Node]]]
]:
    """Maximal cliques of the epsilon-similarity graph over ``nodes``.

    The third element of the result is the full order-context bucket map
    (singletons included) in order-safe mode, None otherwise; the caller
    stores it on the enhancement for :func:`extend_enhancement`.

    With ``context_index`` given (order-safe mode), an edge additionally
    requires the two nodes to have identical order context — the same
    strict ancestors and descendants — which provably guarantees a
    similarity enhancement exists (see :func:`sea`).  In that mode nodes
    are bucketed by order context, so only same-context pairs are ever
    compared.

    Strong measures compare one deterministic representative string per
    node (Lemma 1) and route through the candidate-generation layer
    (:mod:`repro.similarity.candidates`): a length + q-gram count filter
    prunes almost every pair before the dynamic programme runs, and when
    ``options`` asks for workers the blocks are fanned out across a
    process pool (:mod:`repro.parallel`) with a deterministic merge.
    Weak measures need the full string-set cross product per pair and
    keep the serial loop.
    """
    options = SERIAL_OPTIONS if options is None else options
    measure = distance.measure
    strings_of = distance.strings_of
    adjacency: Dict[Node, Set[Node]] = {node: set() for node in nodes}
    stats = SeaStats(workers=options.workers)

    # Bucket by order context in order-safe mode; one bucket otherwise.
    buckets: Optional[Dict[OrderContext, List[Node]]] = None
    if context_index is not None:
        buckets = {}
        for node in nodes:
            buckets.setdefault(context_index[node], []).append(node)
        groups = [group for group in buckets.values() if len(group) >= 2]
    else:
        groups = [nodes] if len(nodes) >= 2 else []
    stats.groups = len(groups)
    stats.total_pairs = pair_count([len(group) for group in groups])
    started = time.perf_counter()

    def connect(group: List[Node], index_pairs: Iterable[Tuple[int, int]]) -> None:
        for i, j in index_pairs:
            adjacency[group[i]].add(group[j])
            adjacency[group[j]].add(group[i])

    if measure.is_strong:
        # Lemma 1: one representative per node decides similarity; the
        # lexicographic minimum makes the choice identical in every
        # process, which the parallel path's bit-identity relies on.
        reps_by_group = [
            [min(strings_of(node)) for node in group] for group in groups
        ]
        use_filter = options.candidate_filter and supports_filter(measure)
        stats.filter_used = use_filter
        if reuse is not None and len(reuse) > 0:
            # Incremental path: replay cached rep-level verdicts, filter +
            # verify only pairs involving representatives the cache has
            # not seen.  Verdict purity (Lemma 1) makes the resulting
            # edge set identical to the from-scratch branches below.
            stats.incremental = True
            block_stats = BlockStats()
            refreshed: List[Tuple[Set[str], Set[Tuple[str, str]]]] = []
            for group, reps in zip(groups, reps_by_group):
                rep_set = set(reps)
                rep_edges, reused = delta_rep_edges(
                    rep_set, reuse, measure, epsilon, use_filter,
                    guard=guard, stats=block_stats,
                )
                stats.reused_pairs += reused
                refreshed.append((rep_set, rep_edges))
                nodes_by_rep: Dict[str, List[Node]] = {}
                for node, rep in zip(group, reps):
                    nodes_by_rep.setdefault(rep, []).append(node)
                stats.graph_edges += _connect_rep_level(
                    adjacency, nodes_by_rep, rep_edges
                )
            reuse.refresh(refreshed)
            stats.candidates = block_stats.candidates
        else:
            if should_parallelize(options, measure.name, stats.total_pairs):
                stats.parallel_used = True
                edges_by_group, run_stats = parallel_group_edges(
                    dict(enumerate(reps_by_group)),
                    measure.name,
                    epsilon,
                    options,
                    guard=guard,
                    use_filter=use_filter,
                )
                block_stats = run_stats.block_stats
                for gid, group in enumerate(groups):
                    connect(group, edges_by_group[gid])
            else:
                block_stats = BlockStats()
                edges_by_group = {}
                for gid, (group, reps) in enumerate(zip(groups, reps_by_group)):
                    order = length_sorted_order(reps)
                    edges, group_stats = block_edges(
                        reps,
                        order,
                        measure,
                        epsilon,
                        0,
                        len(reps),
                        guard=guard,
                        use_filter=use_filter,
                    )
                    block_stats.merge(group_stats)
                    edges_by_group[gid] = edges
                    connect(group, edges)
            stats.candidates = block_stats.candidates
            stats.graph_edges = block_stats.edges
            if reuse is not None:
                # Seed the cache from this full build so the next one can
                # take the delta path.  Same-rep pairs stay implicit (two
                # nodes sharing a representative are always similar).
                seeded: List[Tuple[Set[str], Set[Tuple[str, str]]]] = []
                for gid, reps in enumerate(reps_by_group):
                    rep_edges = set()
                    for i, j in edges_by_group[gid]:
                        rep_i, rep_j = reps[i], reps[j]
                        if rep_i != rep_j:
                            rep_edges.add(
                                (rep_i, rep_j) if rep_i <= rep_j else (rep_j, rep_i)
                            )
                    seeded.append((set(reps), rep_edges))
                reuse.refresh(seeded)
    else:
        # Weak measures: node distance is the min over the full string-set
        # cross product, for which no sound prefilter exists here.
        for group in groups:
            for i in range(len(group) - 1):
                node_a = group[i]
                if guard is not None:
                    # One tick per outer node; this pair loop is the
                    # quadratic hot spot for weak measures.
                    guard.tick(len(group) - 1 - i, what="SEA similarity graph")
                for j in range(i + 1, len(group)):
                    node_b = group[j]
                    stats.candidates += 1
                    close = any(
                        measure.bounded_distance(x, y, epsilon) <= epsilon
                        for x in strings_of(node_a)
                        for y in strings_of(node_b)
                    )
                    if close:
                        stats.graph_edges += 1
                        adjacency[node_a].add(node_b)
                        adjacency[node_b].add(node_a)

    stats.pairs_pruned = max(0, stats.total_pairs - stats.candidates)
    cliques = graphutils.maximal_cliques(adjacency)
    stats.cliques = len(cliques)
    stats.graph_seconds = time.perf_counter() - started
    return cliques, stats, buckets


#: SEA modes: "strict" is Figure 12 verbatim and may find the input
#: similarity-inconsistent (Definition 9); "order-safe" additionally
#: requires similar nodes to share their exact order context, under which
#: an enhancement provably always exists (if u < v, every clique member of
#: u's clique inherits v as an ancestor and vice versa, so the all-pairs
#: edge rule is always satisfiable and acyclic).
STRICT = "strict"
ORDER_SAFE = "order-safe"


def sea(
    hierarchy: Hierarchy,
    measure: "StringSimilarityMeasure | NodeDistance",
    epsilon: float,
    verify: bool = False,
    mode: str = STRICT,
    guard: Optional[ResourceGuard] = None,
    options: Optional[BuildOptions] = None,
    reuse: Optional[EpsilonGraphCache] = None,
) -> SimilarityEnhancement:
    """Run the SEA algorithm of Figure 12.

    Parameters
    ----------
    hierarchy:
        The (fused) hierarchy H to enhance.
    measure:
        A string similarity measure, or a pre-built :class:`NodeDistance`.
    epsilon:
        The DBA's similarity threshold (>= 0).
    verify:
        When True, re-check Definition 8's four conditions on the output
        (Theorem 2's correctness post-condition); useful in tests.
    mode:
        ``"strict"`` (the paper's algorithm — raises on similarity
        inconsistency) or ``"order-safe"`` (only merges terms with the
        same strict ancestors and descendants; never inconsistent, and the
        natural policy when similar surface forms such as "article" /
        "articles" play *different* structural roles).
    guard:
        Optional :class:`~repro.guard.ResourceGuard`; the quadratic
        similarity-graph and edge-derivation loops tick it, so a build
        over a pathological hierarchy is interrupted by
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.ResourceExhaustedError` instead of hanging.
        Under a worker pool each worker runs with the guard's *remaining*
        budget and the parent re-raises the first worker failure, so the
        error contract is unchanged.
    options:
        :class:`~repro.parallel.BuildOptions` tuning the similarity-graph
        phase (candidate filter, worker count); None means serial with
        the filter enabled.
    reuse:
        Optional :class:`~repro.similarity.incremental.EpsilonGraphCache`
        carrying rep-level verdicts from a previous build under the same
        ``(measure, epsilon)``.  Strong measures replay those verdicts
        and verify only the new-representative delta; the cache is
        refreshed in place either way (a full build seeds it).  The
        resulting enhancement is identical to a from-scratch build.

    Raises
    ------
    SimilarityInconsistencyError
        When no similarity enhancement exists (Definition 9; strict mode).
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be >= 0, got {epsilon}")
    if mode not in (STRICT, ORDER_SAFE):
        raise ValueError(f"mode must be 'strict' or 'order-safe', got {mode!r}")
    distance = measure if isinstance(measure, NodeDistance) else NodeDistance(measure)

    if guard is not None:
        guard.check_deadline("SEA build")
    nodes = list(hierarchy.terms)
    # Order contexts are computed once, here, and reused for bucketing and
    # (when verify=True) for the order-safe restriction of condition 3.
    context_index = (
        _order_context_index(hierarchy, nodes) if mode == ORDER_SAFE else None
    )
    # Lines 3-8 of Figure 12: build all maximal pairwise-similar node sets.
    tracer = current_tracer()
    if reuse is not None and not distance.measure.is_strong:
        reuse = None  # verdict purity (Lemma 1) only holds for strong measures
    with tracer.span("sea.similarity_graph", nodes=len(nodes)):
        cliques, stats, context_buckets = _similarity_cliques(
            nodes, distance, epsilon, context_index, guard, options, reuse
        )
        tracer.annotate(
            total_pairs=stats.total_pairs,
            candidates=stats.candidates,
            edges=stats.graph_edges,
            cliques=stats.cliques,
            parallel=stats.parallel_used,
            incremental=stats.incremental,
        )
    METRICS.counter("sea.candidates").inc(stats.candidates)
    METRICS.counter("sea.graph_edges").inc(stats.graph_edges)
    METRICS.counter("sea.pairs_pruned").inc(
        max(0, stats.total_pairs - stats.candidates)
    )
    stats.mode = mode
    enhanced_nodes = [EnhancedNode(clique) for clique in cliques]

    # Lines 9-10: mu maps each original node to the cliques containing it.
    mu: Dict[Node, Set[EnhancedNode]] = {node: set() for node in nodes}
    for enhanced in enhanced_nodes:
        for member in enhanced.members:
            mu[member].add(enhanced)

    # Lines 11-13: V <=' W iff every cross pair is ordered a <= b in H.
    # (The only relation compatible with both directions of condition 1;
    # see the module docstring.)  For each clique V, precompute the set of
    # H nodes that are above *every* member; W is then an upper neighbour
    # exactly when its members all lie in that set.
    above_all: Dict[EnhancedNode, FrozenSet[Node]] = {}
    for enhanced in enhanced_nodes:
        members = iter(enhanced.members)
        common = set(hierarchy.above(next(members)))
        for member in members:
            common &= hierarchy.above(member)
        above_all[enhanced] = frozenset(common)

    edges: List[Tuple[EnhancedNode, EnhancedNode]] = []
    with tracer.span("sea.edge_derivation", enhanced_nodes=len(enhanced_nodes)):
        # ``W.members <= above_all[V]`` is decided by counting, through mu,
        # how many of W's members lie in V's allowed-upper set: the count
        # equals |W.members| exactly when all of them do.  This walks only
        # the (small) allowed-upper sets instead of all O(|H'|^2) clique
        # pairs, and derives the identical edge set.
        for lower in enhanced_nodes:
            allowed_upper = above_all[lower]
            if guard is not None:
                guard.tick(len(enhanced_nodes), what="SEA edge derivation")
            counts: Dict[EnhancedNode, int] = {}
            for member in allowed_upper:
                for upper in mu.get(member, ()):
                    counts[upper] = counts.get(upper, 0) + 1
            for upper, count in counts.items():
                if upper is not lower and count == len(upper.members):
                    edges.append((lower, upper))
        tracer.annotate(edges=len(edges))

    # Condition-1 forward check: every strict pair a < b in H must be
    # covered, for every pair of cliques containing a resp. b.
    edge_set = set(edges)
    for a in nodes:
        for b in hierarchy.ancestors(a):
            for lower in mu[a]:
                for upper in mu[b]:
                    if lower != upper and (lower, upper) not in edge_set:
                        raise SimilarityInconsistencyError(
                            f"no similarity enhancement exists: {a!s} < {b!s} in H, "
                            f"but the enhanced nodes {lower} and {upper} cannot be "
                            f"ordered without violating condition (1) of Definition 8"
                        )

    # Line 14: check-acyclic(H').  With the all-pairs edge rule the relation
    # is provably acyclic on a DAG, but we keep the explicit check both for
    # faithfulness to Figure 12 and as a defensive invariant.
    adjacency = {node: set() for node in enhanced_nodes}  # type: Dict[EnhancedNode, Set[EnhancedNode]]
    for lower, upper in edges:
        adjacency[lower].add(upper)
    cycle = graphutils.find_cycle(adjacency)
    if cycle is not None:  # pragma: no cover - unreachable on valid inputs
        raise SimilarityInconsistencyError(
            f"similarity enhancement would contain a cycle: "
            f"{' -> '.join(str(c) for c in cycle)}"
        )

    enhanced_hierarchy = Hierarchy(edges, nodes=enhanced_nodes)
    enhancement = SimilarityEnhancement(
        enhanced_hierarchy,
        {node: frozenset(groups) for node, groups in mu.items()},
        epsilon,
        distance,
        mode,
    )
    enhancement.stats = stats
    enhancement.context_buckets = context_buckets
    if verify:
        _verify(hierarchy, enhancement, context_index)
    return enhancement


#: The descendant half of a minimal term's order context.
_NO_DESCENDANTS: FrozenSet[Node] = frozenset()

#: Result of :func:`extend_enhancement`: the patched enhancement plus the
#: enhanced nodes it removed from and added to the previous hierarchy
#: (what the SEO layer needs to patch its string index).
EnhancementPatch = Tuple[
    SimilarityEnhancement, List[EnhancedNode], List[EnhancedNode]
]


def extend_enhancement(
    previous: SimilarityEnhancement,
    old_hierarchy: Hierarchy,
    hierarchy: Hierarchy,
    epsilon: float,
    mode: str = STRICT,
    guard: Optional[ResourceGuard] = None,
    options: Optional[BuildOptions] = None,
    reuse: Optional[EpsilonGraphCache] = None,
) -> Optional[EnhancementPatch]:
    """Patch ``previous`` for a leaf-only hierarchy extension, in place of SEA.

    ``hierarchy`` must extend ``old_hierarchy`` (the hierarchy
    ``previous`` was built over) with new *minimal* terms only — exactly
    what :func:`~repro.ontology.fusion.extend_fusion` produces for
    leaf-only mutation deltas.  Under order-safe semantics such an
    extension is local by construction:

    * a new leaf's order context is ``(its ancestors, {})``, so the only
      nodes it can ever be similar to are the members of that one stored
      bucket — every other pairwise verdict of the previous build is
      untouched (verdict purity, Lemma 1);
    * members of such a bucket are themselves minimal terms, so the
      cliques gaining members are *sink* nodes of H' — they have no
      incoming H' edges, absorbing one (condition 4) cannot orphan an
      edge, and the cliques created for the new leaves attach strictly
      below existing H' nodes, which is precisely the shape
      :meth:`~repro.ontology.hierarchy.Hierarchy.extended_with_lower_terms`
      extends without re-reducing;
    * the ancestors of the new leaves are the only existing nodes whose
      context moves (their descendant sets grow).  The patch requires
      each to sit in a singleton clique — the ubiquitous case for
      structural tags — because a context move invalidates any similarity
      edge built on the old context.

    Every structure the result carries (cliques, mu, H' with its
    closures, context buckets, the rep-level verdict cache) is repaired
    in time proportional to the touched buckets, never the hierarchy.
    The output is value-identical to a from-scratch :func:`sea` run over
    ``hierarchy`` — the property suite and the online-mutations benchmark
    byte-compare the two.

    Returns None whenever any precondition fails (strict mode, changed
    epsilon, weak measure, missing bucket map, a non-leaf new term, a
    similar or colliding ancestor...); callers fall back to :func:`sea`.
    """
    if mode != ORDER_SAFE or previous.mode != ORDER_SAFE:
        return None
    if previous.epsilon != epsilon:
        return None
    distance = previous.distance
    measure = distance.measure
    if not measure.is_strong:
        return None
    buckets = getattr(previous, "context_buckets", None)
    if buckets is None or reuse is None or len(reuse) == 0:
        return None
    mu = previous.mu
    new_nodes = [node for node in hierarchy.terms if node not in mu]
    if len(hierarchy) != len(mu) + len(new_nodes):
        return None  # terms vanished: not a pure extension
    if not new_nodes:
        return previous, [], []
    started = time.perf_counter()
    if guard is not None:
        guard.check_deadline("SEA enhancement patch")
    for node in new_nodes:
        if hierarchy.children(node):
            return None  # a new term above another term: full rebuild

    # The new leaves' ancestors are the only existing nodes whose order
    # context moves.  Each must be similar to nothing (singleton clique),
    # and no two moved contexts may coincide — a coincidence would create
    # comparison pairs this patch never runs.  (A moved context can never
    # coincide with an unmoved one: it contains a new leaf in its
    # descendant half, and only moved contexts do.)
    gained: Dict[Node, Set[Node]] = {}
    for node in new_nodes:
        for ancestor in hierarchy.ancestors(node):
            gained.setdefault(ancestor, set()).add(node)
    for ancestor in gained:
        cliques_of = mu.get(ancestor)
        if cliques_of is None or len(cliques_of) != 1:
            return None
        (clique,) = cliques_of
        if clique.members != frozenset({ancestor}):
            return None
    moved: Dict[Node, OrderContext] = {
        ancestor: (
            old_hierarchy.ancestors(ancestor),
            frozenset(old_hierarchy.descendants(ancestor) | extra),
        )
        for ancestor, extra in gained.items()
    }
    if len(set(moved.values())) != len(moved):
        return None

    # Copy-on-write bucket map: move the ancestors to their new contexts.
    updated_buckets = dict(buckets)
    for ancestor, context in moved.items():
        old_context = (
            old_hierarchy.ancestors(ancestor),
            old_hierarchy.descendants(ancestor),
        )
        members = updated_buckets.get(old_context)
        if members is None or ancestor not in members or context in updated_buckets:
            return None  # stored buckets disagree with the old hierarchy
        remaining = [other for other in members if other != ancestor]
        if remaining:
            updated_buckets[old_context] = remaining
        else:
            del updated_buckets[old_context]
        updated_buckets[context] = [ancestor]

    options = SERIAL_OPTIONS if options is None else options
    strings_of = distance.strings_of
    use_filter = options.candidate_filter and supports_filter(measure)
    block_stats = BlockStats()
    reused_pairs = 0
    groups: Dict[OrderContext, List[Node]] = {}
    for node in new_nodes:
        key = (hierarchy.ancestors(node), _NO_DESCENDANTS)
        groups.setdefault(key, []).append(node)

    removed: List[EnhancedNode] = []
    added: List[EnhancedNode] = []
    clique_sets: Dict[Node, Set[EnhancedNode]] = {}
    absorb_updates: List[Tuple[Set[str], Set[Tuple[str, str]]]] = []
    group_sizes: List[int] = []
    for key, fresh in groups.items():
        existing = updated_buckets.get(key, [])
        fresh = sorted(fresh, key=lambda n: min(strings_of(n)))
        members = list(existing) + fresh
        group_sizes.append(len(members))
        reps = {node: min(strings_of(node)) for node in members}
        rep_set = set(reps.values())
        rep_edges, reused = delta_rep_edges(
            rep_set, reuse, measure, epsilon, use_filter,
            guard=guard, stats=block_stats,
        )
        reused_pairs += reused
        if len(members) >= 2:
            absorb_updates.append((rep_set, rep_edges))
        neighbour_reps: Dict[str, Set[str]] = {}
        for rep_a, rep_b in rep_edges:
            neighbour_reps.setdefault(rep_a, set()).add(rep_b)
            neighbour_reps.setdefault(rep_b, set()).add(rep_a)
        nodes_by_rep: Dict[str, List[Node]] = {}
        for node in existing:
            nodes_by_rep.setdefault(reps[node], []).append(node)
            clique_sets[node] = set(mu[node])
        # Insert the new leaves one at a time; after each insertion the
        # working clique sets are exactly the maximal cliques of the
        # bucket graph so far (so clique co-membership *is* adjacency).
        for node in fresh:
            rep = reps[node]
            neighbourhood = [
                other for other in nodes_by_rep.get(rep, ()) if other != node
            ]
            for other_rep in neighbour_reps.get(rep, ()):
                neighbourhood.extend(nodes_by_rep.get(other_rep, ()))
            if not neighbourhood:
                clique = EnhancedNode(frozenset({node}))
                added.append(clique)
                clique_sets[node] = {clique}
            else:
                neighbour_set = set(neighbourhood)
                local = {
                    u: {
                        w
                        for w in neighbourhood
                        if w != u and clique_sets[u] & clique_sets[w]
                    }
                    for u in neighbourhood
                }
                # Existing cliques entirely inside the neighbourhood are
                # absorbed (condition 4: the new leaf extends them).
                dead: Set[EnhancedNode] = set()
                for u in neighbourhood:
                    for clique in clique_sets[u]:
                        if clique not in dead and clique.members <= neighbour_set:
                            dead.add(clique)
                for clique in dead:
                    for member in clique.members:
                        clique_sets[member].discard(clique)
                    try:
                        added.remove(clique)  # born and absorbed this patch
                    except ValueError:
                        removed.append(clique)
                clique_sets[node] = set()
                for local_clique in graphutils.maximal_cliques(local):
                    clique = EnhancedNode(frozenset(local_clique | {node}))
                    added.append(clique)
                    for member in clique.members:
                        clique_sets[member].add(clique)
            nodes_by_rep.setdefault(rep, []).append(node)
        updated_buckets[key] = members

    new_mu: Dict[Node, FrozenSet[EnhancedNode]] = dict(mu)
    for node, cliques_of in clique_sets.items():
        new_mu[node] = frozenset(cliques_of)

    # Patch H': absorbed cliques are sinks (their members are minimal
    # terms), new cliques attach strictly below the ancestor cliques —
    # all of which are singletons (checked above), so every counting
    # step of the full edge derivation degenerates to "one edge per
    # ancestor clique" and no cycle or condition-1 violation is possible.
    patched = previous.hierarchy.without_leaves(removed)
    if patched is None:
        return None
    new_edges: List[Tuple[EnhancedNode, EnhancedNode]] = []
    for clique in added:
        member = next(iter(clique.members))
        counts: Dict[EnhancedNode, int] = {}
        for ancestor in hierarchy.ancestors(member):
            for upper in new_mu[ancestor]:
                counts[upper] = counts.get(upper, 0) + 1
        for upper, count in counts.items():
            if count == len(upper.members):
                new_edges.append((clique, upper))
    extended = patched.extended_with_lower_terms(new_edges, new_nodes=added)
    if extended is None:
        return None
    reuse.absorb(absorb_updates)

    stats = SeaStats(
        mode=mode,
        groups=len(groups),
        total_pairs=pair_count(group_sizes),
        candidates=block_stats.candidates,
        graph_edges=block_stats.edges,
        cliques=len(extended),
        filter_used=use_filter,
        incremental=True,
        reused_pairs=reused_pairs,
        patched=True,
    )
    stats.pairs_pruned = max(0, stats.total_pairs - stats.candidates)
    stats.graph_seconds = time.perf_counter() - started
    METRICS.counter("sea.candidates").inc(stats.candidates)
    METRICS.counter("sea.graph_edges").inc(stats.graph_edges)
    METRICS.counter("sea.patched_builds").inc()
    enhancement = SimilarityEnhancement(
        extended, new_mu, epsilon, distance, mode
    )
    enhancement.stats = stats
    enhancement.context_buckets = updated_buckets
    return enhancement, removed, added


def _verify(
    hierarchy: Hierarchy,
    enhancement: SimilarityEnhancement,
    context_index: Optional[Dict[Node, OrderContext]] = None,
) -> None:
    """Assert Definition 8's four conditions hold for the output.

    ``context_index`` is the order-context map the build already computed
    (order-safe mode only); it is reused here rather than re-traversing
    the hierarchy.
    """
    distance = enhancement.distance
    epsilon = enhancement.epsilon
    enhanced = enhancement.hierarchy
    mu = enhancement.mu

    # Condition 2: co-members of any enhanced node are within epsilon.
    for node in enhanced.terms:
        for a, b in itertools.combinations(node.members, 2):
            assert distance(a, b) <= epsilon, f"condition 2 violated by {a}, {b}"

    # Condition 3: every epsilon-close pair shares an enhanced node.  In
    # order-safe mode the similarity relation is deliberately restricted to
    # order-equivalent pairs, so condition 3 is checked within order
    # contexts only, reusing the context index the build computed.
    originals = list(hierarchy.terms)
    if enhancement.mode != ORDER_SAFE:
        for a, b in itertools.combinations(originals, 2):
            if distance(a, b) <= epsilon:
                assert mu[a] & mu[b], f"condition 3 violated by {a}, {b}"
    else:
        if context_index is None:
            context_index = _order_context_index(hierarchy, originals)
        for a, b in itertools.combinations(originals, 2):
            if context_index[a] == context_index[b] and distance(a, b) <= epsilon:
                assert mu[a] & mu[b], (
                    f"condition 3 (order-restricted) violated by {a}, {b}"
                )

    # Condition 4: no enhanced node's member set subsumes another's.
    for first, second in itertools.permutations(enhanced.terms, 2):
        assert not first.members < second.members, "condition 4 violated"

    # Condition 1 (both directions).
    for a in originals:
        for b in originals:
            if a == b or not hierarchy.leq(a, b):
                continue
            for lower in mu[a]:
                for upper in mu[b]:
                    assert enhanced.leq(lower, upper), (
                        f"condition 1 (forward) violated: {a} <= {b} but "
                        f"{lower} !<= {upper}"
                    )
    for lower in enhanced.terms:
        for upper in enhanced.terms:
            if lower == upper or not enhanced.leq(lower, upper):
                continue  # zero-length paths impose nothing (Definition 8)
            for a in lower.members:
                for b in upper.members:
                    assert hierarchy.leq(a, b), (
                        f"condition 1 (backward) violated: {lower} <= {upper} "
                        f"but {a} !<= {b}"
                    )
