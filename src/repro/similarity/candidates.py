"""Candidate generation for the epsilon-similarity graph.

The SEA precomputation (Figure 12) needs every pair of hierarchy nodes
within edit distance epsilon.  Enumerating all ``C(n, 2)`` pairs and
running the (even banded) dynamic programme on each is the dominant cost
of a build over a real ontology; the similarity-join literature replaces
the enumeration with *candidate generation*: an inverted index over
string features emits a small superset of the truly similar pairs, and
only that superset is verified.

This module implements the classic edit-distance filter stack for the
unit-cost Levenshtein measure:

* **length filter** — ``|len(x) - len(y)| <= epsilon`` is necessary;
* **count filter** (Ukkonen) — the L1 distance between q-gram profiles
  satisfies ``L1 <= 2 q ed(x, y)``, so with q = 2 a pair within epsilon
  shares at least ``ceil((p_x + p_y - 4 epsilon) / 2)`` bigram
  *occurrences* (profiles are multisets; an occurrence ``(gram, k)`` is
  the k-th copy of ``gram``, which turns multiset intersection into
  plain set intersection);
* **prefix filter** — order every profile by ascending global gram
  frequency; two profiles meeting the count threshold must share an
  occurrence within their first ``floor(2.5 epsilon) + 2`` entries
  (the standard prefix-filter bound, using the length filter to cap the
  profile-size gap at epsilon), so only those short prefixes are
  indexed and probed.  Pairs whose count threshold is non-positive
  (both profiles tiny relative to ``4 epsilon``) cannot be found through
  shared grams at all and are generated from a separate small-profile
  pool.

Pairs that share no indexed occurrence are therefore *never generated*,
which removes the quadratic enumeration for realistic inputs.  Probing
walks strings in length-sorted order against the already-indexed ones,
so the work decomposes into independent contiguous *blocks* of probe
positions — exactly the unit the parallel build layer
(:mod:`repro.parallel`) distributes across worker processes.  Serial and
parallel builds run this same code over the same deterministic order, so
their edge sets are bit-identical.

For measures where the q-gram bound is unsound (anything other than
plain :class:`~repro.similarity.measures.Levenshtein`), callers pass
``use_filter=False`` and :func:`block_edges` degrades to verified
all-pairs enumeration over the same probe order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..guard import ResourceGuard
from .measures import Levenshtein, StringSimilarityMeasure

#: Occurrence-tagged bigram: the k-th copy of a gram in one profile.
Occurrence = Tuple[str, int]


def supports_filter(measure: StringSimilarityMeasure) -> bool:
    """True when the q-gram count filter is sound for ``measure``.

    The Ukkonen bound is only claimed for plain unit-cost Levenshtein;
    Damerau transpositions, normalisation and token measures all break
    it, so they fall back to all-pairs verification.
    """
    return type(measure) is Levenshtein


def bigram_occurrences(text: str) -> Tuple[Occurrence, ...]:
    """The occurrence-tagged bigram profile of ``text``.

    Strings shorter than 2 characters contribute their whole text as a
    single pseudo-gram (mirroring ``_bigrams`` in the SEA module); such
    profiles are always small enough for the small-profile pool, so the
    unsoundness of the q-gram bound on them never matters.
    """
    if len(text) < 2:
        return ((text, 1),)
    counts: Dict[str, int] = {}
    out: List[Occurrence] = []
    for i in range(len(text) - 1):
        gram = text[i : i + 2]
        k = counts.get(gram, 0) + 1
        counts[gram] = k
        out.append((gram, k))
    return tuple(out)


def length_sorted_order(reps: Sequence[str]) -> List[int]:
    """Deterministic probe order: ascending length, then text, then index.

    Probing in length order means every probe only looks *backwards* at
    strings no longer than itself, which keeps the per-pair count
    threshold (and hence the prefix bound) tight.
    """
    return sorted(range(len(reps)), key=lambda i: (len(reps[i]), reps[i], i))


@dataclass
class BlockStats:
    """Counters for one :func:`block_edges` call."""

    #: Probe positions processed (block width).
    probes: int = 0
    #: Pairs that reached verification (the filters' output size).
    candidates: int = 0
    #: Verified epsilon-similar pairs.
    edges: int = 0

    def merge(self, other: "BlockStats") -> None:
        self.probes += other.probes
        self.candidates += other.candidates
        self.edges += other.edges


def block_edges(
    reps: Sequence[str],
    order: Sequence[int],
    measure: StringSimilarityMeasure,
    epsilon: float,
    lo: int,
    hi: int,
    guard: Optional[ResourceGuard] = None,
    use_filter: bool = True,
    what: str = "SEA similarity graph",
) -> Tuple[List[Tuple[int, int]], BlockStats]:
    """Similar pairs whose *later* element sits at probe positions [lo, hi).

    ``order`` must be :func:`length_sorted_order` of ``reps``; every pair
    ``(a, b)`` of epsilon-similar representatives is reported exactly once,
    in the block containing the larger of the two probe positions, as the
    index pair ``(min(i, j), max(i, j))`` into ``reps``.  The union of the
    edges over a partition of ``[0, n)`` into blocks is therefore exactly
    the edge set of the epsilon-similarity graph — the invariant the
    parallel layer relies on for its deterministic merge.

    With ``use_filter`` (sound only when :func:`supports_filter` holds)
    candidates come from the prefix-filtered inverted occurrence index;
    otherwise every earlier probe position is verified (all-pairs mode).
    ``guard`` is ticked once per probe and once per verified candidate.
    """
    stats = BlockStats()
    edges: List[Tuple[int, int]] = []
    n = len(reps)
    if hi > n or lo < 0 or lo > hi:
        raise ValueError(f"block [{lo}, {hi}) out of range for {n} strings")
    if n < 2 or lo == hi:
        return edges, stats

    lengths = [len(reps[i]) for i in order]

    def verify(pos_a: int, pos_b: int) -> None:
        """Run the measure on an order-position pair; record an edge."""
        i, j = order[pos_a], order[pos_b]
        stats.candidates += 1
        if guard is not None:
            guard.tick(1, what=what)
        rep_i, rep_j = reps[i], reps[j]
        if rep_i == rep_j:
            close = True
        else:
            close = measure.bounded_distance(rep_i, rep_j, epsilon) <= epsilon
        if close:
            stats.edges += 1
            edges.append((i, j) if i <= j else (j, i))

    if not use_filter:
        # All-pairs fallback: verify each probe against every earlier one.
        for p in range(lo, hi):
            stats.probes += 1
            if guard is not None:
                guard.tick(1, what=what)
            length_p = lengths[p]
            for q in range(p):
                if abs(length_p - lengths[q]) > epsilon:
                    continue
                verify(q, p)
        return edges, stats

    budget = 4.0 * epsilon  # Ukkonen: L1 of bigram profiles <= 2q * epsilon
    occs = [bigram_occurrences(reps[i]) for i in order]
    profile_sizes = [len(occ) for occ in occs]

    # Global gram frequencies define the prefix order (rarest first, so
    # prefixes are maximally selective); deterministic tie-break on the
    # gram text keeps serial and parallel runs identical.
    frequency: Dict[str, int] = {}
    for occ in occs:
        for gram, _ in occ:
            frequency[gram] = frequency.get(gram, 0) + 1
    sorted_occs: List[Tuple[Occurrence, ...]] = [
        tuple(sorted(occ, key=lambda item: (frequency[item[0]], item[0], item[1])))
        for occ in occs
    ]
    occ_sets: List[FrozenSet[Occurrence]] = [frozenset(occ) for occ in occs]
    prefix_length = int(2.5 * epsilon) + 2

    inverted: Dict[Occurrence, List[int]] = {}
    #: Probe positions whose profile is small enough that some partner
    #: pair could meet the count bound with zero shared occurrences
    #: (threshold <= 0 needs p_x + p_y <= budget, hence p <= budget - 1).
    small_pool: List[int] = []

    for p in range(hi):
        occ = sorted_occs[p]
        prefix = occ[:prefix_length]
        if p >= lo:
            stats.probes += 1
            if guard is not None:
                guard.tick(1, what=what)
            length_p = lengths[p]
            size_p = profile_sizes[p]
            occ_set_p = occ_sets[p]
            seen: set = set()
            for entry in prefix:
                postings = inverted.get(entry)
                if postings:
                    seen.update(postings)
            if size_p <= budget - 1.0:
                for q in small_pool:
                    if size_p + profile_sizes[q] <= budget:
                        seen.add(q)
            for q in sorted(seen):
                if abs(length_p - lengths[q]) > epsilon:
                    continue
                # Exact count filter: multiset L1 distance as symmetric
                # difference of occurrence sets.
                if len(occ_set_p ^ occ_sets[q]) > budget:
                    continue
                verify(q, p)
        for entry in prefix:
            inverted.setdefault(entry, []).append(p)
        if profile_sizes[p] <= budget - 1.0:
            small_pool.append(p)

    return edges, stats


def pair_count(group_sizes: Sequence[int]) -> int:
    """Total unordered pairs across groups (the all-pairs comparison cost)."""
    return sum(size * (size - 1) // 2 for size in group_sizes)
