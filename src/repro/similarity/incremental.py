"""Incremental maintenance of the epsilon-similarity graph.

The expensive phase of SEA (Figure 12) is the epsilon-similarity graph:
every same-context pair of fused nodes runs through the candidate filter
and (for survivors) the bounded edit-distance programme.  For *strong*
measures, Lemma 1 makes the verdict of a pair a pure function of the two
nodes' representative strings, the measure and epsilon — independent of
the hierarchy around them.  That purity is what makes the graph
incrementally maintainable: a verdict computed in one build can be
replayed in the next build for free, and only pairs involving *new*
representatives ever touch the measure again.

:class:`EpsilonGraphCache` stores, per order-context bucket of the last
build, the set of representative strings and the rep-level edge set.  On
the next build each bucket is matched (by representative overlap) against
the cached buckets, known-known verdicts are reused wholesale, and only
new-vs-known and new-vs-new pairs are filtered + verified — the delta
path of :func:`delta_rep_edges`.  Because every reused verdict was itself
produced by ``measure.bounded_distance`` under the same ``(measure,
epsilon)``, the resulting edge set is bit-identical to a from-scratch
build; the property suite asserts exactly that.

The cache is only consulted when the caller guarantees ``(measure,
epsilon)`` are unchanged (see ``TossSystem``'s build-state keying); a
changed threshold or measure starts from an empty cache.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..guard import ResourceGuard
from .candidates import BlockStats, Occurrence, bigram_occurrences
from .measures import StringSimilarityMeasure

#: A rep-level edge: the pair of representative strings, min first.
RepEdge = Tuple[str, str]


def _rep_pair(a: str, b: str) -> RepEdge:
    return (a, b) if a <= b else (b, a)


class _BucketEntry:
    """One order-context bucket of a previous build, at rep level."""

    __slots__ = ("reps", "edges")

    def __init__(self, reps: Set[str], edges: Set[RepEdge]) -> None:
        self.reps = reps
        self.edges = edges


class EpsilonGraphCache:
    """Reusable rep-level similarity-graph state across SEA builds.

    Valid only while the measure and epsilon are unchanged; the owner
    (the system's build state) drops the cache when either moves.
    Verdicts are keyed purely by representative strings, so the cache
    survives arbitrary hierarchy restructuring — fused nodes may merge,
    split or change context without invalidating a single verdict.
    """

    def __init__(self) -> None:
        self._buckets: List[_BucketEntry] = []
        self._by_rep: Dict[str, int] = {}
        #: rep -> occurrence-tagged bigram profile set (for the count
        #: filter); kept across builds so known reps never re-profile.
        self._occ_sets: Dict[str, FrozenSet[Occurrence]] = {}
        #: Number of builds that have refreshed this cache.
        self.generation = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def occ_set(self, rep: str) -> FrozenSet[Occurrence]:
        cached = self._occ_sets.get(rep)
        if cached is None:
            cached = frozenset(bigram_occurrences(rep))
            self._occ_sets[rep] = cached
        return cached

    def match(self, rep_set: Set[str]) -> Optional[_BucketEntry]:
        """The cached bucket sharing the most representatives, if any."""
        votes: Dict[int, int] = {}
        by_rep = self._by_rep
        for rep in rep_set:
            index = by_rep.get(rep)
            if index is not None:
                votes[index] = votes.get(index, 0) + 1
        if not votes:
            return None
        best = max(votes.items(), key=lambda item: (item[1], -item[0]))[0]
        return self._buckets[best]

    def refresh(self, buckets: List[Tuple[Set[str], Set[RepEdge]]]) -> None:
        """Replace the cached buckets with this build's outcome."""
        self._buckets = [_BucketEntry(reps, edges) for reps, edges in buckets]
        self._by_rep = {}
        live: Set[str] = set()
        for index, entry in enumerate(self._buckets):
            live.update(entry.reps)
            for rep in entry.reps:
                self._by_rep.setdefault(rep, index)
        # Prune profiles of representatives that left the ontology so the
        # cache's footprint tracks the corpus, not its history.
        if len(self._occ_sets) > len(live):
            self._occ_sets = {
                rep: occ for rep, occ in self._occ_sets.items() if rep in live
            }
        self.generation += 1

    def absorb(self, updates: List[Tuple[Set[str], Set[RepEdge]]]) -> None:
        """Fold freshly verified buckets into the cache *in place*.

        The enhancement-patch path (:func:`~repro.similarity.sea
        .extend_enhancement`) touches a handful of buckets instead of
        re-deriving all of them, so it cannot call :meth:`refresh`
        (which replaces the whole bucket list).  Each update is merged
        into the cached bucket sharing the most representatives, or
        appended as a new bucket; verdict purity makes the union safe —
        an edge verified under ``(measure, epsilon)`` stays an edge.
        """
        for rep_set, rep_edges in updates:
            matched = self.match(rep_set)
            if matched is not None:
                matched.reps |= rep_set
                matched.edges |= rep_edges
                index = self._buckets.index(matched)
            else:
                self._buckets.append(_BucketEntry(set(rep_set), set(rep_edges)))
                index = len(self._buckets) - 1
            for rep in rep_set:
                self._by_rep.setdefault(rep, index)
        self.generation += 1


def delta_rep_edges(
    rep_set: Set[str],
    cache: EpsilonGraphCache,
    measure: StringSimilarityMeasure,
    epsilon: float,
    use_filter: bool,
    guard: Optional[ResourceGuard] = None,
    stats: Optional[BlockStats] = None,
) -> Tuple[Set[RepEdge], int]:
    """Rep-level edges of one bucket, reusing cached verdicts.

    Returns ``(edges, reused_pairs)`` where ``edges`` is exactly the set
    of epsilon-similar unordered rep pairs within ``rep_set`` and
    ``reused_pairs`` counts the pairs whose verdict was replayed from the
    cache instead of recomputed.  Fresh pairs run the same length +
    Ukkonen-count filters and the same ``bounded_distance`` verification
    as :func:`~repro.similarity.candidates.block_edges`, so the output is
    identical to a from-scratch bucket build.
    """
    if stats is None:
        stats = BlockStats()
    matched = cache.match(rep_set)
    if matched is not None:
        known = rep_set & matched.reps
        edges: Set[RepEdge] = {
            edge
            for edge in matched.edges
            if edge[0] in rep_set and edge[1] in rep_set
        }
    else:
        known = set()
        edges = set()
    reused = len(known) * (len(known) - 1) // 2
    fresh = sorted(rep_set - known)
    if not fresh:
        return edges, reused

    budget = 4.0 * epsilon  # Ukkonen: L1 of bigram profiles <= 2q * epsilon
    seen: List[str] = sorted(known)
    seen_lengths = [len(rep) for rep in seen]
    for probe in fresh:
        stats.probes += 1
        if guard is not None:
            guard.tick(1, what="SEA similarity graph (delta)")
        length_p = len(probe)
        occ_p = cache.occ_set(probe) if use_filter else None
        for index, known_rep in enumerate(seen):
            if abs(length_p - seen_lengths[index]) > epsilon:
                continue
            if use_filter and len(occ_p ^ cache.occ_set(known_rep)) > budget:
                continue
            stats.candidates += 1
            if guard is not None:
                guard.tick(1, what="SEA similarity graph (delta)")
            if measure.bounded_distance(probe, known_rep, epsilon) <= epsilon:
                stats.edges += 1
                edges.add(_rep_pair(probe, known_rep))
        seen.append(probe)
        seen_lengths.append(length_p)
    return edges, reused
