"""Similarity measures and the SEA similarity-enhancement algorithm.

The paper (Section 4.3) deliberately does not invent a new string
similarity notion; it plugs in measures from the IR literature.  This
package provides from-scratch implementations of the measures the paper
names — Levenshtein, Monge-Elkan, Jaro, Jaccard, cosine — plus several
companions (Damerau-Levenshtein, Jaro-Winkler, q-gram), a rule-based
person/venue-name measure, and the SEA algorithm (Figure 12) that turns a
fused hierarchy into a similarity enhanced ontology (SEO).
"""

from .measures import (
    CosineTfIdf,
    DamerauLevenshtein,
    Jaccard,
    Jaro,
    JaroWinkler,
    Levenshtein,
    MongeElkan,
    NormalizedLevenshtein,
    QGram,
    ScaledMeasure,
    StringSimilarityMeasure,
    get_measure,
    register_measure,
)
from .measures import register_measure
from .rules import NameRuleMeasure, VenueRuleMeasure
from .sea import NodeDistance, SimilarityEnhancement, sea
from .seo import SimilarityEnhancedOntology

# The rule-based measures register late to avoid a circular import
# between measures.py (registry) and rules.py (uses base measures).
register_measure("name_rules", NameRuleMeasure)
register_measure("venue_rules", VenueRuleMeasure)

__all__ = [
    "CosineTfIdf",
    "DamerauLevenshtein",
    "Jaccard",
    "Jaro",
    "JaroWinkler",
    "Levenshtein",
    "MongeElkan",
    "NameRuleMeasure",
    "NodeDistance",
    "NormalizedLevenshtein",
    "QGram",
    "ScaledMeasure",
    "SimilarityEnhancedOntology",
    "SimilarityEnhancement",
    "StringSimilarityMeasure",
    "VenueRuleMeasure",
    "get_measure",
    "register_measure",
    "sea",
]
