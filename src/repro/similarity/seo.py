"""Similarity enhanced (fused) ontologies — the SEO of the paper's title.

A :class:`SimilarityEnhancedOntology` packages the whole Section 4
pipeline: per-instance hierarchies are canonically fused under
interoperation constraints, then the fused hierarchy is similarity-enhanced
with SEA.  On top it offers the *string-level* query API the TOSS algebra
and the query executor need:

* ``similar(x, y)`` — the ``~`` operator of Section 5.1.1: true iff some
  enhanced node contains both strings;
* ``expand_similar(term)`` — every string co-habiting an enhanced node with
  ``term`` (how the executor turns one search term into a disjunction);
* ``expand_below(term)`` / ``expand_above(term)`` — downward/upward closure
  through the enhanced hierarchy (isa / below / above conditions);
* ``leq(x, y)`` — the enhanced partial order lifted to strings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..errors import UnknownTermError
from ..guard import ResourceGuard
from ..obs.metrics import REGISTRY as METRICS
from ..obs.trace import current_tracer
from ..ontology.constraints import InteroperationConstraint
from ..ontology.fusion import FusionResult, canonical_fusion
from ..ontology.hierarchy import Hierarchy
from ..parallel import BuildOptions
from .incremental import EpsilonGraphCache
from .measures import StringSimilarityMeasure
from .sea import (
    EnhancedNode,
    NodeDistance,
    SeaStats,
    SimilarityEnhancement,
    extend_enhancement,
    sea,
)

if TYPE_CHECKING:  # import cycle: cache.py deserialises through this module
    from .cache import SimilarityGraphCache


@dataclass
class SeoBuildStats:
    """Timings and cache outcome of one :meth:`SimilarityEnhancedOntology.build`."""

    cache_hit: bool = False
    #: Content key of this build's inputs; None when uncacheable or no
    #: cache was supplied.
    cache_key: Optional[str] = None
    fusion_seconds: float = 0.0
    sea_seconds: float = 0.0
    total_seconds: float = 0.0
    #: Similarity-graph counters (None on a cache hit — nothing was built).
    sea: Optional[SeaStats] = None
    #: True when the similarity graph was delta-maintained from a previous
    #: build instead of recomputed (see repro.similarity.incremental).
    incremental: bool = False
    #: True when the fused hierarchy was extended from the previous
    #: build's fusion instead of recondensed.
    fusion_incremental: bool = False
    #: True when the previous *enhancement* was patched in place — SEA
    #: never ran; only the order-context buckets the new leaves landed in
    #: were reprocessed (see :func:`~repro.similarity.sea
    #: .extend_enhancement`).
    enhancement_patched: bool = False
    #: Incremental builds applied since the last from-scratch build of
    #: this relation (0 = this SEO is a full build).
    chain_depth: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cache_hit": self.cache_hit,
            "cache_key": self.cache_key,
            "fusion_seconds": self.fusion_seconds,
            "sea_seconds": self.sea_seconds,
            "total_seconds": self.total_seconds,
            "sea": self.sea.to_dict() if self.sea is not None else None,
            "incremental": self.incremental,
            "fusion_incremental": self.fusion_incremental,
            "enhancement_patched": self.enhancement_patched,
            "chain_depth": self.chain_depth,
        }


#: Longest provenance chain a patched SEO records (:attr:`~
#: SimilarityEnhancedOntology.patch`).  The serving layer walks the chain
#: to ship enhancement patches instead of whole SEOs; the cap bounds both
#: the walk and the memory the back-references keep alive between
#: refreshes (a longer gap falls back to shipping the full SEO).
MAX_PATCH_CHAIN = 8


class SimilarityEnhancedOntology:
    """Fusion + similarity enhancement with string-level lookups."""

    def __init__(
        self,
        fusion: FusionResult,
        enhancement: SimilarityEnhancement,
    ) -> None:
        self.fusion = fusion
        self.enhancement = enhancement
        #: :class:`SeoBuildStats` when constructed via :meth:`build`.
        self.build_stats: Optional[SeoBuildStats] = None
        #: Provenance of a patched build: ``(previous, removed, added)``
        #: — the SEO this one was patched from and the enhanced cliques
        #: the patch dropped/created.  None for full builds and restored
        #: SEOs.  :meth:`SystemSnapshot.delta` walks these references to
        #: ship compact enhancement patches to live workers.
        self.patch: Optional[
            Tuple[
                "SimilarityEnhancedOntology",
                Tuple[EnhancedNode, ...],
                Tuple[EnhancedNode, ...],
            ]
        ] = None
        #: Patched builds since the last full build (caps the chain).
        self.patch_depth: int = 0
        #: string -> enhanced nodes whose string set contains it
        self._nodes_by_string: Dict[str, Set[EnhancedNode]] = {}
        for node in enhancement.hierarchy.terms:
            for string in node.strings:
                self._nodes_by_string.setdefault(string, set()).add(node)
        # The SEO is immutable after construction, so term expansions are
        # memoised: `below`-style conditions evaluate once per embedding
        # candidate and would otherwise recompute the closure every time.
        self._expansion_cache: Dict[Tuple[str, str], FrozenSet[str]] = {}
        #: Verdicts for the unknown-term ``similar`` fallback, memoised
        #: the same way (the raw-measure comparison is the one similarity
        #: probe the precomputed index cannot answer).
        self._similar_cache: Dict[Tuple[str, str], bool] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        hierarchies: Mapping[Hashable, Hierarchy],
        measure: StringSimilarityMeasure,
        epsilon: float,
        constraints: Iterable[InteroperationConstraint] = (),
        mode: str = "strict",
        guard: Optional[ResourceGuard] = None,
        options: Optional[BuildOptions] = None,
        cache: "Optional[SimilarityGraphCache]" = None,
        fusion: Optional[FusionResult] = None,
        graph_cache: "Optional[EpsilonGraphCache]" = None,
        previous: "Optional[SimilarityEnhancedOntology]" = None,
    ) -> "SimilarityEnhancedOntology":
        """Fuse ``hierarchies`` under ``constraints``, then enhance with SEA.

        ``guard`` bounds both phases (fusion and SEA) with a deadline /
        step budget — see :class:`~repro.guard.ResourceGuard`.  ``options``
        tunes the similarity-graph phase (candidate filter, workers); with
        a :class:`~repro.similarity.cache.SimilarityGraphCache` in
        ``cache``, a build whose inputs hash to a stored entry skips both
        phases and restores the SEO from disk, and a cold build stores its
        result for next time.  Either way :attr:`build_stats` records what
        happened.

        The incremental-maintenance path (``TossSystem.build`` after a
        mutation) passes ``fusion`` — a :class:`FusionResult` already
        extended from the previous build via
        :func:`~repro.ontology.fusion.extend_fusion`, skipping the
        condensation entirely — and ``graph_cache``, the rep-level
        verdict cache SEA replays (see :func:`~repro.similarity.sea.sea`).
        A full build may also pass ``graph_cache`` just to seed it for
        future deltas.  With ``previous`` (the SEO the extended fusion
        grew out of) also given, the build first attempts the cheapest
        path of all — :func:`~repro.similarity.sea.extend_enhancement`
        patches the previous enhancement and string index in delta time,
        and SEA never runs; any failed precondition falls back silently.
        """
        stats = SeoBuildStats()
        stats.fusion_incremental = fusion is not None
        tracer = current_tracer()
        started = time.perf_counter()
        if cache is not None:
            with tracer.span("seo.cache_lookup"):
                stats.cache_key = cache.key(
                    hierarchies, measure, epsilon, constraints, mode
                )
                cached = (
                    cache.load(stats.cache_key)
                    if stats.cache_key is not None
                    else None
                )
                tracer.annotate(hit=cached is not None)
            if cached is not None:
                METRICS.counter("seo.cache.hits").inc()
                stats.cache_hit = True
                stats.total_seconds = time.perf_counter() - started
                cached.build_stats = stats
                return cached
            METRICS.counter("seo.cache.misses").inc()

        if fusion is None:
            with tracer.span("seo.fusion", hierarchies=len(hierarchies)):
                fusion = canonical_fusion(hierarchies, constraints, guard=guard)
        stats.fusion_seconds = time.perf_counter() - started
        patch = None
        if previous is not None and stats.fusion_incremental:
            with tracer.span("seo.sea_patch", mode=mode):
                patch = extend_enhancement(
                    previous.enhancement,
                    previous.fusion.hierarchy,
                    fusion.hierarchy,
                    epsilon,
                    mode=mode,
                    guard=guard,
                    options=options,
                    reuse=graph_cache,
                )
                tracer.annotate(patched=patch is not None)
        if patch is not None:
            enhancement, removed_cliques, added_cliques = patch
            stats.enhancement_patched = True
        else:
            with tracer.span("seo.sea", mode=mode):
                enhancement = sea(
                    fusion.hierarchy, measure, epsilon, mode=mode, guard=guard,
                    options=options, reuse=graph_cache,
                )
        stats.sea = enhancement.stats
        stats.incremental = stats.enhancement_patched or (
            enhancement.stats is not None and enhancement.stats.incremental
        )
        stats.sea_seconds = (
            time.perf_counter() - started - stats.fusion_seconds
        )
        if patch is not None:
            seo = cls._patched(
                fusion, enhancement, previous, removed_cliques, added_cliques
            )
        else:
            seo = cls(fusion, enhancement)
        if cache is not None and stats.cache_key is not None:
            with tracer.span("seo.cache_store"):
                cache.store(
                    stats.cache_key,
                    seo,
                    meta={
                        "fusion_seconds": stats.fusion_seconds,
                        "sea_seconds": stats.sea_seconds,
                    },
                )
        stats.total_seconds = time.perf_counter() - started
        METRICS.histogram("seo.fusion_seconds").observe(stats.fusion_seconds)
        METRICS.histogram("seo.sea_seconds").observe(stats.sea_seconds)
        METRICS.histogram("seo.build_seconds").observe(stats.total_seconds)
        seo.build_stats = stats
        return seo

    @classmethod
    def _patched(
        cls,
        fusion: FusionResult,
        enhancement: SimilarityEnhancement,
        previous: "SimilarityEnhancedOntology",
        removed: Iterable[EnhancedNode],
        added: Iterable[EnhancedNode],
    ) -> "SimilarityEnhancedOntology":
        """Construct from an enhancement patch without re-indexing.

        ``__init__`` walks every enhanced node to build the
        string-to-nodes index — an O(ontology) pass that would dominate a
        delta build.  The patch names exactly which enhanced nodes came
        and went, so the previous SEO's index is copied and only the
        affected strings' entries are replaced (fresh sets — the shared
        unaffected sets are never mutated after construction).  The memo
        caches start empty: expansions may legitimately change.
        """
        seo = cls.__new__(cls)
        seo.fusion = fusion
        seo.enhancement = enhancement
        seo.build_stats = None
        removed = list(removed)
        added = list(added)
        if previous.patch_depth < MAX_PATCH_CHAIN:
            seo.patch = (previous, tuple(removed), tuple(added))
            seo.patch_depth = previous.patch_depth + 1
        else:
            seo.patch = None
            seo.patch_depth = 0
        index: Dict[str, Set[EnhancedNode]] = dict(previous._nodes_by_string)
        affected: Set[str] = set()
        for node in removed:
            affected.update(node.strings)
        for node in added:
            affected.update(node.strings)
        for string in affected:
            shared = index.get(string)
            index[string] = set(shared) if shared else set()
        for node in removed:
            for string in node.strings:
                index[string].discard(node)
        for node in added:
            for string in node.strings:
                index[string].add(node)
        for string in affected:
            if not index[string]:
                del index[string]
        seo._nodes_by_string = index
        seo._expansion_cache = {}
        seo._similar_cache = {}
        return seo

    @classmethod
    def for_hierarchy(
        cls,
        hierarchy: Hierarchy,
        measure: StringSimilarityMeasure,
        epsilon: float,
        mode: str = "strict",
    ) -> "SimilarityEnhancedOntology":
        """SEO over a single already-merged hierarchy (no constraints)."""
        return cls.build({1: hierarchy}, measure, epsilon, mode=mode)

    # -- properties -----------------------------------------------------------

    @property
    def epsilon(self) -> float:
        return self.enhancement.epsilon

    @property
    def measure(self) -> StringSimilarityMeasure:
        return self.enhancement.distance.measure

    @property
    def hierarchy(self) -> Hierarchy:
        """The enhanced hierarchy H' (nodes are :class:`EnhancedNode`)."""
        return self.enhancement.hierarchy

    def strings(self) -> FrozenSet[str]:
        """Every term string known to the ontology."""
        return frozenset(self._nodes_by_string)

    def term_count(self) -> int:
        """Number of distinct term strings (the paper's "ontology size")."""
        return len(self._nodes_by_string)

    def __contains__(self, term: str) -> bool:
        return term in self._nodes_by_string

    # -- string-level queries ---------------------------------------------------

    def nodes_of(self, term: str) -> FrozenSet[EnhancedNode]:
        """Enhanced nodes whose string set contains ``term`` (may be empty)."""
        return frozenset(self._nodes_by_string.get(term, frozenset()))

    def similar(self, x: str, y: str) -> bool:
        """The ``~`` operator: x and y share an enhanced node.

        For strings absent from the ontology, falls back to comparing the
        raw measure against epsilon, so ad-hoc query constants still work.
        """
        if x == y:
            return True
        nodes_x = self._nodes_by_string.get(x)
        nodes_y = self._nodes_by_string.get(y)
        if nodes_x and nodes_y:
            return bool(nodes_x & nodes_y)
        cache = self._similar_cache
        key = (x, y)
        verdict = cache.get(key)
        if verdict is None:
            verdict = (
                self.measure.bounded_distance(x, y, self.epsilon) <= self.epsilon
            )
            cache[key] = verdict
        return verdict

    def expand_similar(self, term: str) -> FrozenSet[str]:
        """All strings similar to ``term`` (including ``term`` itself).

        Known terms expand through the SEO index (precomputed, as Section 6
        describes); unknown terms are compared against every known string
        with the raw measure — the "(i) compare all nodes" fallback the
        paper contrasts the SEO against.
        """
        cached = self._expansion_cache.get(("similar", term))
        if cached is not None:
            return cached
        nodes = self._nodes_by_string.get(term)
        if nodes:
            result: Set[str] = set()
            for node in nodes:
                result.update(node.strings)
            result.add(term)
            expansion = frozenset(result)
        else:
            matches = {
                known
                for known in self._nodes_by_string
                if self.measure.bounded_distance(term, known, self.epsilon)
                <= self.epsilon
            }
            matches.add(term)
            expansion = frozenset(matches)
        self._expansion_cache[("similar", term)] = expansion
        return expansion

    def _closure(self, term: str, downward: bool) -> FrozenSet[str]:
        key = ("below" if downward else "above", term)
        cached = self._expansion_cache.get(key)
        if cached is not None:
            return cached
        nodes = self._nodes_by_string.get(term)
        if not nodes:
            expansion = frozenset({term})
        else:
            result: Set[str] = set()
            for node in nodes:
                reach = (
                    self.hierarchy.below(node)
                    if downward
                    else self.hierarchy.above(node)
                )
                for reached in reach:
                    result.update(reached.strings)
            result.add(term)
            expansion = frozenset(result)
        self._expansion_cache[key] = expansion
        return expansion

    def expand_below(self, term: str) -> FrozenSet[str]:
        """Strings of every enhanced node <= a node containing ``term``.

        This implements isa/below expansion: querying for "Company" should
        match "web search company", "Google", etc.  Includes the similarity
        expansion of ``term`` itself (nodes containing the term).
        """
        return self._closure(term, downward=True)

    def expand_above(self, term: str) -> FrozenSet[str]:
        """Strings of every enhanced node >= a node containing ``term``."""
        return self._closure(term, downward=False)

    def leq(self, lower: str, upper: str) -> bool:
        """The enhanced order lifted to strings.

        True iff some enhanced node containing ``lower`` is <= some node
        containing ``upper``.  Raises :class:`UnknownTermError` when either
        string is absent (order queries need ontology membership).
        """
        nodes_lower = self._nodes_by_string.get(lower)
        nodes_upper = self._nodes_by_string.get(upper)
        if not nodes_lower or not nodes_upper:
            missing = lower if not nodes_lower else upper
            raise UnknownTermError(f"term {missing!r} is not in the ontology")
        return any(
            self.hierarchy.leq(a, b)
            for a in nodes_lower
            for b in nodes_upper
        )

    def __repr__(self) -> str:
        return (
            f"SimilarityEnhancedOntology({self.term_count()} terms, "
            f"{len(self.hierarchy)} enhanced nodes, epsilon={self.epsilon})"
        )
