"""Durable file-writing primitives shared by every persistence layer.

A crash (power loss, ``kill -9``, full disk) in the middle of a bare
``open()/write()`` leaves a truncated file behind with no way to tell it
apart from a complete one.  Every writer in this code base therefore goes
through :func:`atomic_write_text`: the data is written to a temporary file
in the *same directory*, flushed and fsynced, then atomically renamed over
the destination with :func:`os.replace` — readers observe either the old
complete content or the new complete content, never a torn write.  The
containing directory is fsynced afterwards so the rename itself survives
a crash (best effort on platforms without directory fds).
"""

from __future__ import annotations

import hashlib
import os
import tempfile


def sha256_text(text: str) -> str:
    """Hex SHA-256 of ``text`` encoded as UTF-8."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fsync_directory(path: str) -> None:
    """Flush a directory's metadata (renames) to disk, best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> None:
    """Durably replace the file at ``path`` with ``text``.

    Write-to-temp + fsync + :func:`os.replace`, with the temporary file
    created in the destination directory so the rename never crosses a
    filesystem boundary.  On any failure the temporary file is removed
    and the destination is left untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)
