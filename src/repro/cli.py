"""Command-line interface for the TOSS system.

Subcommands:

``repro-toss query``
    Load XML documents into collections, build the SEO and run a query
    written in the textual query language (see :mod:`repro.core.parser`)::

        python -m repro.cli query --source dblp=dblp.xml \\
            --epsilon 3 'inproceedings(author ~ "J. Ullman")'

``repro-toss experiment``
    Regenerate one of the paper's figures on synthetic data::

        python -m repro.cli experiment fig15a

``repro-toss seo``
    Build and persist (or inspect) a similarity enhanced ontology::

        python -m repro.cli seo --source dblp=dblp.xml --out seo.json

``repro-toss db``
    Build, inspect, integrity-check or repair a saved store::

        python -m repro.cli db build --source dblp=dblp.xml \\
            --workers 4 --cache-dir ./seo-cache ./store
        python -m repro.cli db stats ./store
        python -m repro.cli db verify ./store
        python -m repro.cli db recover ./store
        python -m repro.cli db index build ./store

Exit status is 0 on success, 1 when ``db verify`` finds damage, 2 on
usage errors (argparse convention).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core.system import TossSystem
from .xmldb.serializer import serialize


def _parse_sources(specs: Sequence[str]) -> List[tuple]:
    sources = []
    for spec in specs:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise SystemExit(f"--source must look like name=path, got {spec!r}")
        sources.append((name, path))
    return sources


def _build_system(args: argparse.Namespace) -> TossSystem:
    system = TossSystem(
        measure=args.measure,
        epsilon=args.epsilon,
        workers=getattr(args, "workers", None),
        cache_dir=getattr(args, "cache_dir", None),
    )
    for name, path in _parse_sources(args.source):
        with open(path, "r", encoding="utf-8") as handle:
            system.add_instance(name, handle.read())
    for constraint in args.constraint or ():
        system.add_constraint(constraint)
    system.build(use_cache=not getattr(args, "no_cache", False))
    return system


def _cmd_query(args: argparse.Namespace) -> int:
    if args.load:
        from .core.persistence import load_system

        system = load_system(args.load)
        names = system.database.collection_names()
    else:
        if not args.source:
            raise SystemExit("query needs --source name=path or --load DIR")
        system = _build_system(args)
        names = [name for name, _ in _parse_sources(args.source)]
    collection = args.collection or names[0]
    right = names[1] if len(names) > 1 else None
    report = system.query(collection, args.query, right_collection=right)
    print(
        f"# {len(report.results)} results "
        f"(rewrite {report.rewrite_seconds:.4f}s, "
        f"xpath {report.xpath_seconds:.4f}s, "
        f"convert {report.convert_seconds:.4f}s)"
    )
    for tree in report.results:
        print(serialize(tree, indent=2).rstrip())
    return 0


def _cmd_seo(args: argparse.Namespace) -> int:
    from .similarity.persistence import dump_seo, save_seo

    system = _build_system(args)
    print(
        f"# SEO built in {system.build_seconds:.2f}s: "
        f"{system.ontology_size()} terms, "
        f"{len(system.seo.hierarchy)} enhanced nodes, "
        f"epsilon={system.epsilon}"
    )
    if args.out:
        save_seo(system.seo, args.out)
        print(f"# written to {args.out}")
    else:
        print(dump_seo(system.seo, indent=2))
    return 0


def _cmd_save(args: argparse.Namespace) -> int:
    from .core.persistence import save_system

    system = _build_system(args)
    save_system(system, args.out)
    print(
        f"# saved {len(system.instances)} instances, "
        f"{system.ontology_size()}-term SEO to {args.out}"
    )
    return 0


def _db_root(root: str) -> str:
    """Accept either a database directory or a saved-system directory."""
    import os

    from .xmldb.storage import MANIFEST_NAME

    if not os.path.exists(os.path.join(root, MANIFEST_NAME)):
        nested = os.path.join(root, "database")
        if os.path.exists(os.path.join(nested, MANIFEST_NAME)):
            return nested
    return root


def _cmd_db_verify(args: argparse.Namespace) -> int:
    from .errors import XmlDbError
    from .xmldb.storage import verify_database

    try:
        report = verify_database(_db_root(args.root))
    except XmlDbError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_db_recover(args: argparse.Namespace) -> int:
    from .errors import XmlDbError
    from .xmldb.storage import QUARANTINE_DIR, recover_database, save_database

    root = _db_root(args.root)
    try:
        report = recover_database(root)
    except XmlDbError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    if not report.ok:
        assert report.database is not None
        # Rewrite the store from the salvaged documents so the manifest no
        # longer references quarantined files and verify passes afterwards.
        save_database(report.database, root)
        print(f"# store rewritten; damaged files kept under {root}/{QUARANTINE_DIR}")
    return 0


def _cmd_db_build(args: argparse.Namespace) -> int:
    from .core.persistence import save_system

    system = _build_system(args)
    save_system(system, args.root)
    assert system.build_report is not None
    print(system.build_report.summary())
    if system.seo_cache is not None:
        cache = system.seo_cache.stats()
        print(
            f"# seo cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['stores']} stored ({system.seo_cache.directory})"
        )
    print(f"# saved {len(system.instances)} instances to {args.root}")
    return 0


def _cmd_db_stats(args: argparse.Namespace) -> int:
    from .core.persistence import load_build_report, load_system

    system = load_system(args.root)
    database = system.database
    print(f"# system at {args.root}")
    print(
        f"collections: {len(database.collection_names())}, "
        f"documents: {sum(len(database.get_collection(n)) for n in database.collection_names())}, "
        f"bytes: {database.total_bytes()}"
    )
    stats = database.statistics
    print(
        f"xpath query cache: size {database.query_cache_size}, "
        f"hits {stats.cache_hits}, misses {stats.cache_misses}"
    )
    _print_index_status(_db_root(args.root))
    report = load_build_report(args.root)
    if report is None:
        print("build report: none persisted")
    else:
        print(report.summary())
        print(
            f"seo cache outcome: {report.cache_hits} hits, "
            f"{report.cache_misses} misses; "
            f"pairs pruned {report.pairs_pruned} of {report.total_pairs}"
        )
    return 0


def _print_index_status(root: str) -> bool:
    """Print per-collection search-index health; True when all are ok."""
    from .xmldb.index import index_status

    try:
        statuses = index_status(root)
    except (OSError, ValueError) as exc:
        print(f"search indexes: unreadable store manifest ({exc})")
        return False
    if not statuses:
        print("search indexes: no collections")
        return True
    all_ok = True
    for name in sorted(statuses):
        entry = statuses[name]
        status = entry["status"]
        line = f"search index [{name}]: {status}"
        stats = entry.get("stats")
        if stats:
            line += (
                f" ({stats['documents']} documents, {stats['terms']} terms, "
                f"{stats['postings']} postings, {stats['paths']} tag paths)"
            )
        print(line)
        if status != "ok":
            all_ok = False
    return all_ok


def _cmd_db_index(args: argparse.Namespace) -> int:
    from .errors import XmlDbError
    from .xmldb.storage import build_indexes

    root = _db_root(args.root)
    action = args.index_command
    if action == "build":
        try:
            stats = build_indexes(root)
        except XmlDbError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for name in sorted(stats):
            entry = stats[name]
            print(
                f"built index [{name}]: {entry['documents']} documents, "
                f"{entry['terms']} terms, {entry['postings']} postings, "
                f"{entry['paths']} tag paths"
            )
        return 0
    # verify and stats both report health; verify also sets the exit code
    # so a stale or corrupt index fails CI the same way db verify does.
    all_ok = _print_index_status(root)
    if action == "verify":
        return 0 if all_ok else 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        epsilon_sweep,
        join_scalability,
        run_precision_recall_experiment,
        selection_scalability,
    )
    from .experiments.reporting import (
        epsilon_table,
        fig15a_summary,
        fig15a_table,
        fig15b_series,
        fig15c_series,
        scalability_table,
    )

    name = args.figure
    quick = args.quick
    if name in ("fig15a", "fig15b", "fig15c"):
        results = run_precision_recall_experiment(
            n_datasets=1 if quick else args.datasets,
            papers_per_dataset=min(50, args.papers) if quick else args.papers,
            seed=args.seed,
        )
        if name == "fig15a":
            print(fig15a_table(results))
            print()
            print(fig15a_summary(results))
        elif name == "fig15b":
            print(fig15b_series(results))
        else:
            print(fig15c_series(results))
        return 0
    if name == "fig16a":
        points = selection_scalability(
            paper_counts=(50, 100) if quick else (250, 500, 1000, 2000),
            ontology_caps=(None,) if quick else (50, 200, None),
            repeats=1 if quick else 3,
            seed=args.seed,
        )
        print(scalability_table(points, "Figure 16(a): selection scalability"))
        return 0
    if name == "fig16b":
        points = join_scalability(
            paper_counts=(40, 80) if quick else (100, 200, 400, 800),
            ontology_caps=(None,) if quick else (50, None),
            repeats=1 if quick else 2,
            seed=args.seed,
        )
        print(scalability_table(points, "Figure 16(b): join scalability"))
        return 0
    if name == "fig16c":
        points = epsilon_sweep(
            epsilons=(0.0, 2.0) if quick else (0.0, 1.0, 2.0, 3.0, 4.0, 5.0),
            papers=60 if quick else 500,
            join_papers=40 if quick else 200,
            repeats=1 if quick else 2,
            seed=args.seed,
        )
        print(epsilon_table(points))
        return 0
    raise SystemExit(f"unknown experiment {name!r}")


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-toss",
        description="TOSS: ontology- and similarity-extended XML querying",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_system_options(
        sub: argparse.ArgumentParser, source_required: bool = True
    ) -> None:
        sub.add_argument(
            "--source",
            action="append",
            required=source_required,
            metavar="NAME=PATH",
            help="an XML source to load (repeatable)",
        )
        sub.add_argument(
            "--constraint",
            action="append",
            metavar="'x:src1 = y:src2'",
            help="a DBA interoperation constraint (repeatable)",
        )
        sub.add_argument("--measure", default="levenshtein",
                         help="similarity measure name (default: levenshtein)")
        sub.add_argument("--epsilon", type=float, default=3.0,
                         help="similarity threshold (default: 3.0)")
        sub.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker processes for the SEO build (default: 1)")
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent similarity-graph cache directory")
        sub.add_argument("--no-cache", action="store_true",
                         help="bypass the similarity-graph cache for this build")

    query = subparsers.add_parser("query", help="run a TOSS query")
    add_system_options(query, source_required=False)
    query.add_argument("--load", help="load a saved system directory instead of --source")
    query.add_argument("--collection", help="collection to query (default: first source)")
    query.add_argument("query", help="query text, e.g. 'paper(author ~ \"X\")'")
    query.set_defaults(handler=_cmd_query)

    seo = subparsers.add_parser("seo", help="build and persist the SEO")
    add_system_options(seo)
    seo.add_argument("--out", help="write the SEO JSON here (default: stdout)")
    seo.set_defaults(handler=_cmd_seo)

    save = subparsers.add_parser(
        "save", help="build a system and persist it (database + SEOs + config)"
    )
    add_system_options(save)
    save.add_argument("--out", required=True, help="directory to write the system to")
    save.set_defaults(handler=_cmd_save)

    db = subparsers.add_parser(
        "db", help="build, inspect, integrity-check or repair a saved system"
    )
    db_sub = db.add_subparsers(dest="db_command", required=True)
    db_build = db_sub.add_parser(
        "build",
        help="build a system from sources and persist it with its build report",
    )
    add_system_options(db_build)
    db_build.add_argument("root", help="directory to write the system to")
    db_build.set_defaults(handler=_cmd_db_build)
    db_stats = db_sub.add_parser(
        "stats",
        help="show collection sizes, query-cache counters and the build report",
    )
    db_stats.add_argument("root", help="saved system directory")
    db_stats.set_defaults(handler=_cmd_db_stats)
    db_verify = db_sub.add_parser(
        "verify", help="re-check every document and checksum (read-only)"
    )
    db_verify.add_argument("root", help="database directory to verify")
    db_verify.set_defaults(handler=_cmd_db_verify)
    db_recover = db_sub.add_parser(
        "recover", help="quarantine damaged files and rewrite a clean manifest"
    )
    db_recover.add_argument("root", help="database directory to recover")
    db_recover.set_defaults(handler=_cmd_db_recover)
    db_index = db_sub.add_parser(
        "index", help="build, verify or inspect the persistent search indexes"
    )
    index_sub = db_index.add_subparsers(dest="index_command", required=True)
    for action, help_text in (
        ("build", "(re)build and persist an index for every collection"),
        ("verify", "check each index against the store checksums (exit 1 on damage)"),
        ("stats", "show per-collection index health and sizes"),
    ):
        index_action = index_sub.add_parser(action, help=help_text)
        index_action.add_argument("root", help="saved database or system directory")
        index_action.set_defaults(handler=_cmd_db_index)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument(
        "figure",
        choices=["fig15a", "fig15b", "fig15c", "fig16a", "fig16b", "fig16c"],
    )
    experiment.add_argument("--datasets", type=int, default=3)
    experiment.add_argument("--papers", type=int, default=100)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--quick",
        action="store_true",
        help="tiny parameter grid (seconds instead of minutes)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_argument_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
