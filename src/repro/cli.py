"""Command-line interface for the TOSS system.

Subcommands:

``repro-toss query``
    Load XML documents into collections, build the SEO and run a query
    written in the textual query language (see :mod:`repro.core.parser`)::

        python -m repro.cli query --source dblp=dblp.xml \\
            --epsilon 3 'inproceedings(author ~ "J. Ullman")'

``repro-toss experiment``
    Regenerate one of the paper's figures on synthetic data::

        python -m repro.cli experiment fig15a

``repro-toss seo``
    Build and persist (or inspect) a similarity enhanced ontology::

        python -m repro.cli seo --source dblp=dblp.xml --out seo.json

``repro-toss explain``
    Show the query plan — rewrite, compiled XPath, index probes —
    without executing it::

        python -m repro.cli explain --load ./store 'paper(author ~ "X")'

``repro-toss db``
    Build, inspect, integrity-check or repair a saved store::

        python -m repro.cli db build --source dblp=dblp.xml \\
            --workers 4 --cache-dir ./seo-cache ./store
        python -m repro.cli db stats ./store
        python -m repro.cli db verify ./store
        python -m repro.cli db recover ./store
        python -m repro.cli db index build ./store

    plus the observability surface (see ``docs/OBSERVABILITY.md``)::

        python -m repro.cli db trace ./store 'paper(author ~ "X")'
        python -m repro.cli db obs metrics ./store
        python -m repro.cli db obs slow ./store --limit 10

Exit status is 0 on success, 1 when ``db verify`` finds damage, 2 on
usage errors (argparse convention).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .core.system import TossSystem
from .xmldb.serializer import serialize


def _parse_sources(specs: Sequence[str]) -> List[tuple]:
    sources = []
    for spec in specs:
        name, _, path = spec.partition("=")
        if not name or not path:
            raise SystemExit(f"--source must look like name=path, got {spec!r}")
        sources.append((name, path))
    return sources


def _build_system(args: argparse.Namespace) -> TossSystem:
    system = TossSystem(
        measure=args.measure,
        epsilon=args.epsilon,
        workers=getattr(args, "workers", None),
        cache_dir=getattr(args, "cache_dir", None),
    )
    for name, path in _parse_sources(args.source):
        with open(path, "r", encoding="utf-8") as handle:
            system.add_instance(name, handle.read())
    for constraint in args.constraint or ():
        system.add_constraint(constraint)
    system.build(use_cache=not getattr(args, "no_cache", False))
    return system


def _load_query_system(args: argparse.Namespace) -> tuple:
    """(system, collection names) for query-shaped commands.

    A ``--load`` system gets the store's observability attached (sinks
    under ``<root>/obs``) unless ``--no-obs``, so events, slow queries
    and metrics accumulate next to the data they describe.
    """
    if args.load:
        from .core.persistence import load_system
        from .obs import for_root

        system = load_system(args.load)
        if not getattr(args, "no_obs", False):
            system.set_observability(for_root(args.load))
        names = system.database.collection_names()
    else:
        if not args.source:
            raise SystemExit(
                f"{args.command} needs --source name=path or --load DIR"
            )
        system = _build_system(args)
        names = [name for name, _ in _parse_sources(args.source)]
    return system, names


def _report_summary_line(report) -> str:
    line = (
        f"# {len(report.results)} results in {report.total_seconds:.4f}s "
        f"(rewrite {report.rewrite_seconds:.4f}s, "
        f"plan {report.planner_seconds:.4f}s, "
        f"xpath {report.xpath_seconds:.4f}s, "
        f"convert {report.convert_seconds:.4f}s; "
        f"scanned {report.docs_scanned}/{report.docs_total} docs, "
        f"index {'on' if report.index_used else 'off'}"
    )
    if report.plan_cache_hit:
        line += ", plan cache hit"
    if report.failed_partitions:
        line += (
            f"; DEGRADED: {len(report.failed_partitions)} partition(s) failed"
        )
    elif report.degraded:
        line += "; DEGRADED to exact matching"
    return line + ")"


def _cmd_query(args: argparse.Namespace) -> int:
    from .obs.context import RequestContext, activate

    system, names = _load_query_system(args)
    collection = args.collection or names[0]
    right = names[1] if len(names) > 1 else None
    jobs = getattr(args, "jobs", 1) or 1
    context = RequestContext.mint()
    if jobs > 1:
        from .serving import QueryRequest, QueryServer

        with QueryServer(
            system, workers=jobs, default_collection=collection
        ) as server:
            report = server.execute(
                QueryRequest(
                    query=args.query,
                    collection=collection,
                    right_collection=right,
                    jobs=jobs,
                    request_id=context.request_id,
                )
            )
    else:
        with activate(context):
            report = system.query(collection, args.query, right_collection=right)
    system.observability.flush_metrics()
    if args.json:
        print(json.dumps(report.to_dict(include_results=True), indent=2))
        return 0
    print(f"# request {report.request_id or context.request_id}", file=sys.stderr)
    print(_report_summary_line(report))
    for tree in report.results:
        print(serialize(tree, indent=2).rstrip())
    return 0


def _read_query_lines(source: Optional[str]) -> List[str]:
    """Query texts from a file (or stdin for ``-``/None), one per line;
    blank lines and ``#`` comments are skipped."""
    if source and source != "-":
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    else:
        lines = sys.stdin.read().splitlines()
    return [
        line.strip()
        for line in lines
        if line.strip() and not line.strip().startswith("#")
    ]


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import GuardSpec, QueryRequest, QueryServer, RetryPolicy

    system, names = _load_query_system(args)
    collection = args.collection or names[0]
    right = names[1] if len(names) > 1 else None
    texts = _read_query_lines(args.queries)
    if not texts:
        print("# no queries to serve", file=sys.stderr)
        return 0
    spec = GuardSpec(
        deadline_seconds=args.deadline,
        max_steps=args.max_steps,
        max_results=args.max_results,
    )
    policy_kwargs = {"max_retries": args.retries}
    if args.max_crash_rate is not None:
        policy_kwargs["max_crash_rate"] = args.max_crash_rate
    outcomes = []
    stats_stop = None
    stats_thread = None
    if args.stats:
        import threading

        from .obs.export import format_status_line
        from .obs.window import WINDOWS

        stats_stop = threading.Event()
        live = sys.stderr.isatty()

        def _stats_loop() -> None:
            while not stats_stop.wait(1.0):
                line = format_status_line(WINDOWS.multi_stats(), window=10)
                if not line:
                    continue
                if live:
                    # Redraw in place on a real terminal; plain lines
                    # otherwise so redirected stderr stays greppable.
                    print(f"\r\x1b[2K{line}", end="", file=sys.stderr, flush=True)
                else:
                    print(line, file=sys.stderr, flush=True)

        stats_thread = threading.Thread(
            target=_stats_loop, name="serve-stats", daemon=True
        )
        stats_thread.start()
    try:
        with QueryServer(
            system,
            workers=args.pool_workers,
            max_pending=args.max_pending,
            default_guard=None if spec.unlimited else spec,
            default_collection=collection,
            policy=RetryPolicy(**policy_kwargs),
            degrade_partial=args.degrade_partial,
        ) as server:
            requests = [
                QueryRequest(
                    query=text, collection=collection, right_collection=right
                )
                for text in texts
            ]
            # Slice the stream into admission-sized batches: the bounded
            # queue is back-pressure for concurrent clients, not a cap on
            # how much one well-behaved stream may submit overall.
            for start in range(0, len(requests), args.max_pending):
                outcomes.extend(
                    server.execute_many(
                        requests[start : start + args.max_pending]
                    )
                )
    except KeyboardInterrupt:
        # The `with` block already shut the pool down (bounded join, then
        # terminate); report the interruption without a traceback.
        print(
            f"# interrupted after {len(outcomes)} of {len(texts)} queries; "
            "worker pool shut down",
            file=sys.stderr,
        )
        return 130
    finally:
        if stats_stop is not None:
            stats_stop.set()
            stats_thread.join(timeout=2.0)
            final = format_status_line(WINDOWS.multi_stats(), window=10)
            if final:
                print(f"\r\x1b[2K{final}" if sys.stderr.isatty() else final,
                      file=sys.stderr, flush=True)
    system.observability.flush_metrics()
    errors = sum(1 for outcome in outcomes if not outcome.ok)
    if args.json:
        payload = []
        for outcome in outcomes:
            entry = {
                "query": outcome.request.query,
                "ok": outcome.ok,
                "seconds": outcome.seconds,
            }
            if outcome.ok:
                entry["report"] = outcome.report.to_dict(
                    include_results=args.results
                )
            else:
                entry["error"] = {
                    "type": type(outcome.error).__name__,
                    "message": str(outcome.error),
                }
            payload.append(entry)
        print(json.dumps(payload, indent=2))
    else:
        for index, outcome in enumerate(outcomes):
            if outcome.ok:
                print(f"[{index}] {outcome.request.query}")
                print(_report_summary_line(outcome.report))
                if args.results:
                    for tree in outcome.report.results:
                        print(serialize(tree, indent=2).rstrip())
            else:
                print(
                    f"[{index}] {outcome.request.query}\n"
                    f"# ERROR {type(outcome.error).__name__}: {outcome.error}"
                )
        print(
            f"# served {len(outcomes)} queries with {args.pool_workers} "
            f"workers, {errors} errors"
        )
    return 1 if errors else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .core.parser import parse_query

    system, _ = _load_query_system(args)
    executor, _degraded = system._query_executor()
    plan = executor.explain(parse_query(args.query).pattern)
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2))
    else:
        print(plan)
    return 0


def _cmd_seo(args: argparse.Namespace) -> int:
    from .similarity.persistence import dump_seo, save_seo

    system = _build_system(args)
    print(
        f"# SEO built in {system.build_seconds:.2f}s: "
        f"{system.ontology_size()} terms, "
        f"{len(system.seo.hierarchy)} enhanced nodes, "
        f"epsilon={system.epsilon}"
    )
    if args.out:
        save_seo(system.seo, args.out)
        print(f"# written to {args.out}")
    else:
        print(dump_seo(system.seo, indent=2))
    return 0


def _cmd_save(args: argparse.Namespace) -> int:
    from .core.persistence import save_system

    system = _build_system(args)
    save_system(system, args.out)
    print(
        f"# saved {len(system.instances)} instances, "
        f"{system.ontology_size()}-term SEO to {args.out}"
    )
    return 0


def _db_root(root: str) -> str:
    """Accept either a database directory or a saved-system directory."""
    import os

    from .xmldb.storage import MANIFEST_NAME

    if not os.path.exists(os.path.join(root, MANIFEST_NAME)):
        nested = os.path.join(root, "database")
        if os.path.exists(os.path.join(nested, MANIFEST_NAME)):
            return nested
    return root


def _cmd_db_verify(args: argparse.Namespace) -> int:
    from .errors import XmlDbError
    from .xmldb.storage import verify_database

    try:
        report = verify_database(_db_root(args.root))
    except XmlDbError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_db_recover(args: argparse.Namespace) -> int:
    from .errors import XmlDbError
    from .xmldb.storage import QUARANTINE_DIR, recover_database, save_database

    root = _db_root(args.root)
    try:
        report = recover_database(root)
    except XmlDbError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.summary())
    if not report.ok:
        assert report.database is not None
        # Rewrite the store from the salvaged documents so the manifest no
        # longer references quarantined files and verify passes afterwards.
        save_database(report.database, root)
        print(f"# store rewritten; damaged files kept under {root}/{QUARANTINE_DIR}")
    return 0


def _cmd_db_build(args: argparse.Namespace) -> int:
    from .core.persistence import save_system

    system = _build_system(args)
    save_system(system, args.root)
    assert system.build_report is not None
    print(system.build_report.summary())
    if system.seo_cache is not None:
        cache = system.seo_cache.stats()
        print(
            f"# seo cache: {cache['hits']} hits, {cache['misses']} misses, "
            f"{cache['stores']} stored ({system.seo_cache.directory})"
        )
    print(f"# saved {len(system.instances)} instances to {args.root}")
    return 0


def _cmd_db_stats(args: argparse.Namespace) -> int:
    from .core.persistence import load_build_report, load_system

    system = load_system(args.root)
    database = system.database
    print(f"# system at {args.root}")
    print(
        f"collections: {len(database.collection_names())}, "
        f"documents: {sum(len(database.get_collection(n)) for n in database.collection_names())}, "
        f"bytes: {database.total_bytes()}"
    )
    stats = database.statistics
    print(
        f"xpath query cache: size {database.query_cache_size}, "
        f"hits {stats.cache_hits}, misses {stats.cache_misses}"
    )
    signature = database.generation_signature()
    print(
        "generation signature: "
        + (", ".join(f"{name}={gen}" for name, gen in signature) or "(empty)")
    )
    generations = system.collection_generations()
    for name in sorted(generations):
        print(f"collection [{name}]: generation {generations[name]}")
    depths = system.seo_chain_depths
    for relation in sorted(depths):
        depth = depths[relation]
        suffix = "full build" if depth == 0 else f"{depth} delta build(s) deep"
        print(f"seo [{relation}]: delta chain depth {depth} ({suffix})")
    _print_index_status(_db_root(args.root))
    report = load_build_report(args.root)
    if report is None:
        print("build report: none persisted")
    else:
        print(report.summary())
        print(
            f"seo cache outcome: {report.cache_hits} hits, "
            f"{report.cache_misses} misses; "
            f"pairs pruned {report.pairs_pruned} of {report.total_pairs}"
        )
    return 0


def _print_index_status(root: str) -> bool:
    """Print per-collection search-index health; True when all are ok."""
    from .xmldb.index import index_status

    try:
        statuses = index_status(root)
    except (OSError, ValueError) as exc:
        print(f"search indexes: unreadable store manifest ({exc})")
        return False
    if not statuses:
        print("search indexes: no collections")
        return True
    all_ok = True
    for name in sorted(statuses):
        entry = statuses[name]
        status = entry["status"]
        line = f"search index [{name}]: {status}"
        stats = entry.get("stats")
        if stats:
            line += (
                f" ({stats['documents']} documents, {stats['terms']} terms, "
                f"{stats['postings']} postings, {stats['paths']} tag paths)"
            )
        print(line)
        if status != "ok":
            all_ok = False
    return all_ok


def _cmd_db_index(args: argparse.Namespace) -> int:
    from .errors import XmlDbError
    from .xmldb.storage import build_indexes

    root = _db_root(args.root)
    action = args.index_command
    if action == "build":
        try:
            stats = build_indexes(root)
        except XmlDbError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for name in sorted(stats):
            entry = stats[name]
            print(
                f"built index [{name}]: {entry['documents']} documents, "
                f"{entry['terms']} terms, {entry['postings']} postings, "
                f"{entry['paths']} tag paths"
            )
        return 0
    # verify and stats both report health; verify also sets the exit code
    # so a stale or corrupt index fails CI the same way db verify does.
    all_ok = _print_index_status(root)
    if action == "verify":
        return 0 if all_ok else 1
    return 0


def _request_timeline_entries(root: str, request_id: str) -> List[dict]:
    """Every event-log and slow-query-log entry carrying ``request_id``,
    in wall-clock order (file order for entries predating timestamps)."""
    from .obs import (
        EVENTS_FILENAME,
        SLOW_QUERIES_FILENAME,
        JsonLinesSink,
        obs_directory,
    )

    directory = obs_directory(root)
    if not directory.is_dir():
        directory = obs_directory(_db_root(root))
    entries: List[dict] = []
    seen_slow = set()
    for filename in (EVENTS_FILENAME, SLOW_QUERIES_FILENAME):
        for entry in JsonLinesSink(directory / filename).read():
            if entry.get("request_id") != request_id:
                continue
            if filename == SLOW_QUERIES_FILENAME:
                # A slow entry duplicates its event-log line, with the
                # trace attached; merge the trace into the event entry
                # instead of showing the step twice.
                key = (entry.get("event"), entry.get("ts"))
                seen_slow.add(key)
                for existing in entries:
                    if (existing.get("event"), existing.get("ts")) == key:
                        existing.setdefault("trace", entry.get("trace"))
                        break
                else:
                    entries.append(entry)
            else:
                entries.append(entry)
    entries.sort(key=lambda e: e.get("ts") or 0.0)
    return entries


def _render_request_timeline(args: argparse.Namespace) -> int:
    """``db trace --request <id>``: reconstruct one request's
    cross-process timeline from the store's telemetry sinks."""
    from .obs import render_span_dict

    entries = _request_timeline_entries(args.root, args.request)
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0 if entries else 1
    if not entries:
        print(
            f"# no telemetry recorded for request {args.request} "
            "(is the store's obs/ directory populated?)",
            file=sys.stderr,
        )
        return 1
    base_ts = next((e["ts"] for e in entries if e.get("ts")), None)
    print(f"# request {args.request}: {len(entries)} recorded step(s)")
    for entry in entries:
        offset = (
            f"+{entry['ts'] - base_ts:8.3f}s"
            if base_ts is not None and entry.get("ts")
            else "      ?  "
        )
        detail = " ".join(
            f"{key}={entry[key]}"
            for key in (
                "query", "tenant", "worker", "pid", "task", "attempt",
                "attempts", "exitcode", "reason", "delay", "ok",
                "worker_pid", "total_seconds", "results", "partitions",
            )
            if entry.get(key) is not None
        )
        print(f"{offset}  {entry.get('event', '?'):<22} {detail}")
        if entry.get("trace"):
            for line in render_span_dict(entry["trace"], indent=1):
                print(line)
    return 0


def _cmd_db_trace(args: argparse.Namespace) -> int:
    from .core.persistence import load_system
    from .obs import DEFAULT_SLOW_QUERY_SECONDS, for_root, render_span_dict
    from .obs.context import RequestContext, activate

    if args.request:
        return _render_request_timeline(args)
    if not args.query:
        print("error: db trace needs a query (or --request ID)", file=sys.stderr)
        return 2
    threshold = (
        args.slow_threshold
        if args.slow_threshold is not None
        else DEFAULT_SLOW_QUERY_SECONDS
    )
    system = load_system(args.root)
    system.set_observability(for_root(args.root, slow_query_seconds=threshold))
    names = system.database.collection_names()
    collection = args.collection or names[0]
    right = names[1] if len(names) > 1 else None
    profiler = None
    if args.profile_hz:
        from .obs.profile import SamplingProfiler

        profiler = SamplingProfiler(hz=args.profile_hz).start()
        system.observability.profiler = profiler
    context = RequestContext.mint()
    try:
        with activate(context):
            report = system.query(collection, args.query, right_collection=right)
    finally:
        if profiler is not None:
            profiler.stop()
    system.observability.flush_metrics()
    if args.json:
        payload = report.to_dict()
        if profiler is not None:
            payload["profile"] = profiler.take_exemplar()
        print(json.dumps(payload, indent=2))
        return 0
    print(f"# request {context.request_id}")
    print(_report_summary_line(report))
    if report.trace is None:
        print("# no trace captured", file=sys.stderr)
        return 1
    for line in render_span_dict(report.trace):
        print(line)
    stage_seconds = sum(
        float(child.get("seconds", 0.0))
        for child in report.trace.get("children", ())
    )
    wall = float(report.trace.get("seconds", 0.0))
    print(
        f"# stages account for {stage_seconds:.4f}s of {wall:.4f}s wall "
        f"({stage_seconds / wall * 100.0 if wall > 0 else 100.0:.1f}%)"
    )
    dropped = report.trace.get("attributes", {}).get("dropped_spans")
    if dropped:
        print(
            f"# {dropped} span(s) dropped at the tree bound "
            "(see the trace.spans_dropped counter; raise max_spans/"
            "max_depth to keep them)"
        )
    if profiler is not None:
        exemplar = profiler.take_exemplar()
        print(
            f"# profile: {exemplar['samples']} samples at "
            f"{exemplar['hz']:g} Hz"
        )
        for phase, seconds in exemplar["phase_seconds"].items():
            print(f"#   {phase}: {seconds:.4f}s")
    return 0


def _cmd_db_obs(args: argparse.Namespace) -> int:
    from .obs import (
        METRICS_FILENAME,
        SLOW_QUERIES_FILENAME,
        JsonLinesSink,
        obs_directory,
        read_metrics_snapshot,
        render_snapshot_text,
        render_span_dict,
    )

    # Sinks anchor at the system root (where query --load / db trace put
    # them); fall back to the nested database directory for bare stores.
    directory = obs_directory(args.root)
    if not directory.is_dir():
        directory = obs_directory(_db_root(args.root))
    if args.obs_command == "metrics":
        snapshot = read_metrics_snapshot(directory / METRICS_FILENAME)
        if args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
        else:
            print(render_snapshot_text(snapshot))
        return 0
    if args.obs_command == "export":
        from .obs.export import render_json, render_prometheus
        from .obs.window import WINDOWS

        snapshot = read_metrics_snapshot(directory / METRICS_FILENAME)
        # Rolling windows are process-local: they carry data here only
        # when something ran queries in this process (e.g. tests driving
        # main() in-process); a bare CLI export ships the persisted
        # cumulative metrics.
        window_stats = WINDOWS.multi_stats() if WINDOWS.enabled else None
        if args.format == "prometheus":
            text = render_prometheus(snapshot, window_stats)
        else:
            text = render_json(snapshot, window_stats)
        if args.out:
            Path(args.out).write_text(text, encoding="utf-8")
            print(f"wrote {args.format} export to {args.out}")
        else:
            print(text, end="" if text.endswith("\n") else "\n")
        return 0
    # slow: the recorded slow-query entries, oldest first
    entries = JsonLinesSink(directory / SLOW_QUERIES_FILENAME).read(
        limit=args.limit
    )
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    if not entries:
        print("(no slow queries recorded)")
        return 0
    for entry in entries:
        line = (
            f"{entry.get('event', '?')}  "
            f"{float(entry.get('total_seconds', 0.0)):.4f}s"
        )
        if entry.get("query"):
            line += f"  {entry['query']}"
        print(line)
        for plan_line in entry.get("plan", ()):
            print(f"  plan: {plan_line}")
        if args.trace and entry.get("trace"):
            for span_line in render_span_dict(entry["trace"], indent=1):
                print(span_line)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        epsilon_sweep,
        join_scalability,
        run_precision_recall_experiment,
        selection_scalability,
    )
    from .experiments.reporting import (
        epsilon_table,
        fig15a_summary,
        fig15a_table,
        fig15b_series,
        fig15c_series,
        scalability_table,
    )

    name = args.figure
    quick = args.quick
    if name in ("fig15a", "fig15b", "fig15c"):
        results = run_precision_recall_experiment(
            n_datasets=1 if quick else args.datasets,
            papers_per_dataset=min(50, args.papers) if quick else args.papers,
            seed=args.seed,
        )
        if name == "fig15a":
            print(fig15a_table(results))
            print()
            print(fig15a_summary(results))
        elif name == "fig15b":
            print(fig15b_series(results))
        else:
            print(fig15c_series(results))
        return 0
    if name == "fig16a":
        points = selection_scalability(
            paper_counts=(50, 100) if quick else (250, 500, 1000, 2000),
            ontology_caps=(None,) if quick else (50, 200, None),
            repeats=1 if quick else 3,
            seed=args.seed,
        )
        print(scalability_table(points, "Figure 16(a): selection scalability"))
        return 0
    if name == "fig16b":
        points = join_scalability(
            paper_counts=(40, 80) if quick else (100, 200, 400, 800),
            ontology_caps=(None,) if quick else (50, None),
            repeats=1 if quick else 2,
            seed=args.seed,
        )
        print(scalability_table(points, "Figure 16(b): join scalability"))
        return 0
    if name == "fig16c":
        points = epsilon_sweep(
            epsilons=(0.0, 2.0) if quick else (0.0, 1.0, 2.0, 3.0, 4.0, 5.0),
            papers=60 if quick else 500,
            join_papers=40 if quick else 200,
            repeats=1 if quick else 2,
            seed=args.seed,
        )
        print(epsilon_table(points))
        return 0
    raise SystemExit(f"unknown experiment {name!r}")


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-toss",
        description="TOSS: ontology- and similarity-extended XML querying",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_system_options(
        sub: argparse.ArgumentParser, source_required: bool = True
    ) -> None:
        sub.add_argument(
            "--source",
            action="append",
            required=source_required,
            metavar="NAME=PATH",
            help="an XML source to load (repeatable)",
        )
        sub.add_argument(
            "--constraint",
            action="append",
            metavar="'x:src1 = y:src2'",
            help="a DBA interoperation constraint (repeatable)",
        )
        sub.add_argument("--measure", default="levenshtein",
                         help="similarity measure name (default: levenshtein)")
        sub.add_argument("--epsilon", type=float, default=3.0,
                         help="similarity threshold (default: 3.0)")
        sub.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker processes for the SEO build (default: 1)")
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent similarity-graph cache directory")
        sub.add_argument("--no-cache", action="store_true",
                         help="bypass the similarity-graph cache for this build")

    query = subparsers.add_parser("query", help="run a TOSS query")
    add_system_options(query, source_required=False)
    query.add_argument("--load", help="load a saved system directory instead of --source")
    query.add_argument("--collection", help="collection to query (default: first source)")
    query.add_argument("--json", action="store_true",
                       help="print the full execution report as JSON")
    query.add_argument("--no-obs", action="store_true",
                       help="with --load: do not write to the store's obs/ sinks")
    query.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="partition the candidate scan across N worker processes "
             "(default: 1, no intra-query parallelism)",
    )
    query.add_argument("query", help="query text, e.g. 'paper(author ~ \"X\")'")
    query.set_defaults(handler=_cmd_query)

    serve = subparsers.add_parser(
        "serve",
        help="execute a batch of queries over a persistent worker pool",
    )
    add_system_options(serve, source_required=False)
    serve.add_argument("--load", help="load a saved system directory instead of --source")
    serve.add_argument("--collection", help="collection to query (default: first source)")
    serve.add_argument("--no-obs", action="store_true",
                       help="with --load: do not write to the store's obs/ sinks")
    serve.add_argument(
        "--queries", metavar="FILE", default=None,
        help="file of query texts, one per line ('-' or omitted: stdin); "
             "blank lines and # comments are skipped",
    )
    serve.add_argument(
        "--pool", dest="pool_workers", type=int, default=2, metavar="N",
        help="worker processes in the serving pool (default: 2; distinct "
             "from --workers, which parallelises the SEO build)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=128, metavar="N",
        help="admission bound: largest batch dispatched at once (default: 128)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-query wall-clock budget (default: unlimited)",
    )
    serve.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="per-query evaluation-step budget (default: unlimited)",
    )
    serve.add_argument(
        "--max-results", type=int, default=None, metavar="N",
        help="per-query result cap (default: unlimited)",
    )
    serve.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-dispatches per query after a worker crash or hang "
             "(default: 2; 0 fails a query on its first crash)",
    )
    serve.add_argument(
        "--max-crash-rate", type=float, default=None, metavar="FRACTION",
        help="circuit-breaker threshold: shed load when the recent worker "
             "crash rate exceeds this fraction (default: 0.8; 1.0 in "
             "effect disables the breaker)",
    )
    serve.add_argument(
        "--degrade-partial", action="store_true",
        help="partitioned queries: return surviving chunks (report marked "
             "degraded, failed chunks listed) instead of failing the query "
             "when a chunk fails permanently",
    )
    serve.add_argument("--json", action="store_true",
                       help="print every outcome as one JSON array")
    serve.add_argument("--results", action="store_true",
                       help="also print each query's result trees")
    serve.add_argument(
        "--stats", action="store_true",
        help="render a once-a-second rolling-window status line (QPS, "
             "p50/p95/p99, error rate, SLO burn) on stderr while serving",
    )
    serve.set_defaults(handler=_cmd_serve)

    explain = subparsers.add_parser(
        "explain", help="show a query's plan (rewrite, XPath, index probes)"
    )
    add_system_options(explain, source_required=False)
    explain.add_argument("--load", help="load a saved system directory instead of --source")
    explain.add_argument("--json", action="store_true",
                         help="print the plan as JSON")
    explain.add_argument("--no-obs", action="store_true",
                         help="with --load: do not write to the store's obs/ sinks")
    explain.add_argument("query", help="query text to plan without executing")
    explain.set_defaults(handler=_cmd_explain)

    seo = subparsers.add_parser("seo", help="build and persist the SEO")
    add_system_options(seo)
    seo.add_argument("--out", help="write the SEO JSON here (default: stdout)")
    seo.set_defaults(handler=_cmd_seo)

    save = subparsers.add_parser(
        "save", help="build a system and persist it (database + SEOs + config)"
    )
    add_system_options(save)
    save.add_argument("--out", required=True, help="directory to write the system to")
    save.set_defaults(handler=_cmd_save)

    db = subparsers.add_parser(
        "db", help="build, inspect, integrity-check or repair a saved system"
    )
    db_sub = db.add_subparsers(dest="db_command", required=True)
    db_build = db_sub.add_parser(
        "build",
        help="build a system from sources and persist it with its build report",
    )
    add_system_options(db_build)
    db_build.add_argument("root", help="directory to write the system to")
    db_build.set_defaults(handler=_cmd_db_build)
    db_stats = db_sub.add_parser(
        "stats",
        help="show collection sizes, query-cache counters and the build report",
    )
    db_stats.add_argument("root", help="saved system directory")
    db_stats.set_defaults(handler=_cmd_db_stats)
    db_verify = db_sub.add_parser(
        "verify", help="re-check every document and checksum (read-only)"
    )
    db_verify.add_argument("root", help="database directory to verify")
    db_verify.set_defaults(handler=_cmd_db_verify)
    db_recover = db_sub.add_parser(
        "recover", help="quarantine damaged files and rewrite a clean manifest"
    )
    db_recover.add_argument("root", help="database directory to recover")
    db_recover.set_defaults(handler=_cmd_db_recover)
    db_index = db_sub.add_parser(
        "index", help="build, verify or inspect the persistent search indexes"
    )
    index_sub = db_index.add_subparsers(dest="index_command", required=True)
    for action, help_text in (
        ("build", "(re)build and persist an index for every collection"),
        ("verify", "check each index against the store checksums (exit 1 on damage)"),
        ("stats", "show per-collection index health and sizes"),
    ):
        index_action = index_sub.add_parser(action, help=help_text)
        index_action.add_argument("root", help="saved database or system directory")
        index_action.set_defaults(handler=_cmd_db_index)
    db_trace = db_sub.add_parser(
        "trace",
        help="run one query with tracing on and print its span tree, or "
             "reconstruct a recorded request's timeline with --request",
    )
    db_trace.add_argument("root", help="saved system directory")
    db_trace.add_argument(
        "query", nargs="?", default=None,
        help="query text, e.g. 'paper(author ~ \"X\")' "
             "(omit when using --request)",
    )
    db_trace.add_argument("--collection",
                          help="collection to query (default: first collection)")
    db_trace.add_argument("--json", action="store_true",
                          help="print the execution report (with trace) as JSON")
    db_trace.add_argument(
        "--slow-threshold", type=float, default=None, metavar="SECONDS",
        help="slow-query log threshold for this run (default: 0.5)",
    )
    db_trace.add_argument(
        "--request", metavar="ID",
        help="reconstruct the recorded cross-process timeline for one "
             "request id from the store's telemetry logs (no query is run)",
    )
    db_trace.add_argument(
        "--profile-hz", type=float, default=None, metavar="HZ",
        help="sample the executor at HZ while the query runs and print "
             "the per-phase wall-time attribution",
    )
    db_trace.set_defaults(handler=_cmd_db_trace)
    db_obs = db_sub.add_parser(
        "obs", help="inspect the store's metrics and slow-query log"
    )
    obs_sub = db_obs.add_subparsers(dest="obs_command", required=True)
    obs_metrics = obs_sub.add_parser(
        "metrics", help="show the accumulated metrics snapshot"
    )
    obs_metrics.add_argument("root", help="saved database or system directory")
    obs_metrics.add_argument("--json", action="store_true",
                             help="print the raw snapshot as JSON")
    obs_metrics.set_defaults(handler=_cmd_db_obs)
    obs_slow = obs_sub.add_parser(
        "slow", help="show recorded slow queries (oldest first)"
    )
    obs_slow.add_argument("root", help="saved database or system directory")
    obs_slow.add_argument("--limit", type=int, default=20, metavar="N",
                          help="show at most the newest N entries (default: 20)")
    obs_slow.add_argument("--json", action="store_true",
                          help="print the entries as JSON")
    obs_slow.add_argument("--trace", action="store_true",
                          help="also render each entry's span tree")
    obs_slow.set_defaults(handler=_cmd_db_obs)
    obs_export = obs_sub.add_parser(
        "export",
        help="export the store's metrics for scraping or dashboards",
    )
    obs_export.add_argument("root", help="saved database or system directory")
    obs_export.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="Prometheus text exposition or one JSON document "
             "(default: prometheus)",
    )
    obs_export.add_argument("--out", metavar="PATH",
                            help="write the export here instead of stdout")
    obs_export.set_defaults(handler=_cmd_db_obs)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures"
    )
    experiment.add_argument(
        "figure",
        choices=["fig15a", "fig15b", "fig15c", "fig16a", "fig16b", "fig16c"],
    )
    experiment.add_argument("--datasets", type=int, default=3)
    experiment.add_argument("--papers", type=int, default=100)
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--quick",
        action="store_true",
        help="tiny parameter grid (seconds instead of minutes)",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_argument_parser()
    args, extras = parser.parse_known_args(argv)
    if extras:
        # argparse cannot allocate an *optional* positional that trails
        # intervening options (``db trace ROOT --slow-threshold 0
        # QUERY``): re-home the stray query token, and keep argparse's
        # usual unrecognized-arguments failure for everything else.
        if (
            getattr(args, "handler", None) is _cmd_db_trace
            and getattr(args, "query", None) is None
            and len(extras) == 1
            and not extras[0].startswith("-")
        ):
            args.query = extras[0]
        else:
            parser.error("unrecognized arguments: " + " ".join(extras))
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        # Ctrl-C anywhere a handler does not deal with it itself: exit
        # with the conventional 128+SIGINT status, no traceback.
        print("# interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Reading commands piped into `head` etc.: exit quietly instead
        # of dumping a traceback when the reader closes early.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
