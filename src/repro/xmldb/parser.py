"""XML text -> :class:`XmlNode` trees.

Parsing uses the stdlib expat bindings (the one C-accelerated XML tokenizer
guaranteed to be present) and converts directly into our node model,
stripping ignorable whitespace.  Everything above tokenisation — the tree
model, numbering, queries — is this package's own.
"""

from __future__ import annotations

import sys
import xml.parsers.expat
from typing import List, Optional

from ..errors import XmlParseError
from .model import XmlNode


class _TreeBuilder:
    """Expat handler assembling an :class:`XmlNode` tree."""

    def __init__(self) -> None:
        self.root: Optional[XmlNode] = None
        self._stack: List[XmlNode] = []
        self._text_parts: List[str] = []

    def start_element(self, name: str, attributes) -> None:
        self._flush_text()
        # Intern tags and attribute names: a DBLP-scale corpus repeats a
        # tiny vocabulary millions of times, and interning turns the
        # equality probes in the scan/verify hot paths into pointer
        # comparisons (and deduplicates the strings across documents).
        node = XmlNode(
            sys.intern(name),
            attributes={sys.intern(key): value for key, value in attributes.items()},
        )
        if self._stack:
            self._stack[-1].append(node)
        elif self.root is None:
            self.root = node
        else:  # pragma: no cover - expat already rejects two roots
            raise XmlParseError("multiple root elements")
        self._stack.append(node)

    def end_element(self, name: str) -> None:
        self._flush_text()
        self._stack.pop()

    def character_data(self, data: str) -> None:
        self._text_parts.append(data)

    def _flush_text(self) -> None:
        if not self._text_parts:
            return
        text = "".join(self._text_parts).strip()
        self._text_parts.clear()
        if text and self._stack:
            node = self._stack[-1]
            merged = f"{node.text} {text}".strip() if node.text else text
            # Content values repeat heavily too (years, venues, names).
            node.text = sys.intern(merged)


def parse_document(xml_text: "str | bytes") -> XmlNode:
    """Parse a complete XML document into a renumbered tree.

    Raises :class:`~repro.errors.XmlParseError` with the expat diagnostic
    (line/column) on malformed input.

    >>> parse_document("<a><b>hi</b></a>").children[0].text
    'hi'
    """
    builder = _TreeBuilder()
    parser = xml.parsers.expat.ParserCreate()
    parser.buffer_text = True
    parser.StartElementHandler = builder.start_element
    parser.EndElementHandler = builder.end_element
    parser.CharacterDataHandler = builder.character_data
    try:
        if isinstance(xml_text, bytes):
            parser.Parse(xml_text, True)
        else:
            parser.Parse(xml_text.encode("utf-8"), True)
    except xml.parsers.expat.ExpatError as exc:
        raise XmlParseError(f"malformed XML: {exc}") from exc
    if builder.root is None:
        raise XmlParseError("document contains no root element")
    return builder.root.renumber()


def parse_fragment(xml_text: str) -> XmlNode:
    """Parse an XML fragment (may omit a single enclosing root).

    Multiple top-level elements are wrapped under a synthetic ``fragment``
    root so test fixtures can be written tersely.
    """
    try:
        return parse_document(xml_text)
    except XmlParseError:
        wrapped = f"<fragment>{xml_text}</fragment>"
        return parse_document(wrapped)


def parse_file(path: str) -> XmlNode:
    """Parse an XML file from disk."""
    with open(path, "rb") as handle:
        return parse_document(handle.read())
