"""Persistent, incrementally-maintained search indexes over a collection.

Two content-addressed structures back index-driven candidate pruning in
the query executor (see :mod:`repro.core.planner`):

* an **inverted term index** mapping text and attribute values to
  ``(document, node-path)`` postings, and
* a **structural tag-path index** mapping root-to-leaf tag paths to the
  documents containing them (with derived tag / parent-child /
  ancestor-descendant occurrence maps).

:class:`CollectionSearchIndex` combines both for one collection;
:mod:`repro.xmldb.index.store` persists it next to the saved store,
checksummed and keyed by the collection's document content so a stale or
corrupt index file can only cause a rebuild, never a wrong answer.
"""

from .postings import CollectionSearchIndex
from .store import (
    INDEX_DIR,
    index_content_key,
    index_status,
    load_collection_index,
    save_collection_index,
)

__all__ = [
    "CollectionSearchIndex",
    "INDEX_DIR",
    "index_content_key",
    "index_status",
    "load_collection_index",
    "save_collection_index",
]
