"""Checksummed, content-keyed persistence for collection search indexes.

An index file can always be thrown away — it is derived data.  The
danger is *trusting* one that no longer matches the documents (stale) or
whose bytes were damaged (corrupt): either would silently prune the
wrong candidates.  So, following the SEO cache design, every file
records

* a **content key**: SHA-256 over the collection name and the per-
  document checksums already kept in the store manifest — any document
  added, removed or changed produces a different key, and
* a **checksum** over the canonical JSON of the index payload itself.

:func:`load_collection_index` verifies format, collection name, content
key and checksum *before* restoring anything; on any mismatch or parse
failure it returns None and the caller rebuilds from the documents.
Files are written with the crash-safe atomic writer, before the store
manifest, so a crash mid-save leaves either the old consistent
(index, manifest) pair or the new one.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Mapping, Optional

from ...ioutils import atomic_write_text, sha256_text
from .postings import CollectionSearchIndex

#: Directory under the database root holding one index file per collection.
INDEX_DIR = ".indexes"

#: Format of the on-disk envelope (distinct from the payload format).
STORE_FORMAT = 1


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def index_content_key(collection_name: str, documents: Mapping[str, str]) -> str:
    """Content key binding an index to exact document content.

    ``documents`` maps document key to the SHA-256 of its serialised
    text — the same checksums the store manifest records, so the key can
    be recomputed from the manifest alone without re-reading documents.
    """
    return sha256_text(
        _canonical(
            {
                "format": STORE_FORMAT,
                "collection": collection_name,
                "documents": dict(sorted(documents.items())),
            }
        )
    )


def index_path(root_dir: str, dirname: str) -> str:
    """Where the index file for a collection directory lives."""
    return os.path.join(root_dir, INDEX_DIR, f"{dirname}.json")


def save_collection_index(
    root_dir: str,
    dirname: str,
    collection_name: str,
    index: CollectionSearchIndex,
    content_key: str,
) -> str:
    """Atomically write one collection's index file; returns its path."""
    payload = index.to_dict()
    entry = {
        "format": STORE_FORMAT,
        "collection": collection_name,
        "content_key": content_key,
        "checksum": sha256_text(_canonical(payload)),
        "index": payload,
    }
    path = index_path(root_dir, dirname)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    atomic_write_text(path, json.dumps(entry, sort_keys=True))
    return path


def load_collection_index(
    root_dir: str,
    dirname: str,
    collection_name: str,
    expected_key: str,
) -> Optional[CollectionSearchIndex]:
    """Restore a collection's index, or None if it cannot be trusted.

    Every check happens before the payload is handed to
    :meth:`CollectionSearchIndex.from_dict`; any failure — missing file,
    bad JSON, wrong collection, stale content key, checksum mismatch,
    unsupported format — degrades to a rebuild, never a wrong answer.
    """
    path = index_path(root_dir, dirname)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        if not isinstance(entry, dict):
            return None
        if entry.get("format") != STORE_FORMAT:
            return None
        if entry.get("collection") != collection_name:
            return None
        if entry.get("content_key") != expected_key:
            return None
        payload = entry.get("index")
        if sha256_text(_canonical(payload)) != entry.get("checksum"):
            return None
        return CollectionSearchIndex.from_dict(payload)
    except Exception:
        return None


def _manifest_checksums(root_dir: str) -> Dict[str, Dict[str, object]]:
    """Per-collection {dirname, documents:{key: sha}} from the store manifest."""
    manifest_path = os.path.join(root_dir, "manifest.json")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    result: Dict[str, Dict[str, object]] = {}
    collections = manifest.get("collections", {})
    if not isinstance(collections, dict):
        return result
    for name, info in collections.items():
        if not isinstance(info, dict) or "directory" not in info:
            continue
        documents: Dict[str, str] = {}
        entries = info.get("documents", {})
        if isinstance(entries, dict):
            for key, value in entries.items():
                if isinstance(value, dict) and value.get("sha256"):
                    documents[key] = str(value["sha256"])
                else:
                    # format-1 entry (no checksum): the content key cannot
                    # be derived, so indexes for this store are unusable.
                    documents[key] = ""
        result[name] = {"directory": str(info["directory"]), "documents": documents}
    return result


def index_status(root_dir: str) -> Dict[str, Dict[str, object]]:
    """Per-collection index health for ``db index verify`` / ``db stats``.

    Returns ``{collection: {"status": ..., "path": ..., "stats": ...}}``
    with status one of ``"ok"``, ``"missing"``, ``"stale"`` or
    ``"corrupt: <reason>"``.  A stale or corrupt file is reported, never
    loaded — exactly mirroring what the query path would do.
    """
    statuses: Dict[str, Dict[str, object]] = {}
    for name, info in _manifest_checksums(root_dir).items():
        dirname = str(info["directory"])
        documents: Mapping[str, str] = info["documents"]  # type: ignore[assignment]
        path = index_path(root_dir, dirname)
        entry_status: Dict[str, object] = {"path": path}
        if not os.path.exists(path):
            entry_status["status"] = "missing"
            statuses[name] = entry_status
            continue
        expected_key = index_content_key(name, documents)
        index = load_collection_index(root_dir, dirname, name, expected_key)
        if index is not None:
            entry_status["status"] = "ok"
            entry_status["stats"] = index.stats()
            statuses[name] = entry_status
            continue
        # Distinguish a stale-but-well-formed file from a damaged one.
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if (
                isinstance(entry, dict)
                and entry.get("format") == STORE_FORMAT
                and entry.get("collection") == name
                and entry.get("content_key") != expected_key
                and sha256_text(_canonical(entry.get("index"))) == entry.get("checksum")
            ):
                entry_status["status"] = "stale"
            else:
                entry_status["status"] = "corrupt: integrity check failed"
        except Exception as exc:
            entry_status["status"] = f"corrupt: {exc}"
        statuses[name] = entry_status
    return statuses
