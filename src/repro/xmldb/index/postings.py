"""The in-memory search index structures: term postings + tag paths.

Values are indexed **verbatim** (including the empty string): the
verification phase compares ``node.text`` with raw string equality, so
any normalisation here would let the planner prune a document the
verifier would have accepted.  Ingest-time whitespace stripping (the
parser stores stripped character data) is the only normalisation.

Node paths are root-to-node tag sequences joined with ``/``; attribute
postings append ``/@name``.  The last path segment is the carrying
node's tag, which is what the planner's tag-restricted probes filter on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..model import XmlNode

#: Serialisation format of :meth:`CollectionSearchIndex.to_dict`.
INDEX_FORMAT = 1

PathSet = Set[str]
Postings = Dict[str, Dict[str, Tuple[str, ...]]]


def _node_tag(path: str) -> str:
    """The carrying node's tag — the last segment of a node path."""
    path = path.rsplit("/@", 1)[0]
    return path.rsplit("/", 1)[-1]


class CollectionSearchIndex:
    """Inverted term postings + structural tag-path index for one collection.

    Maintained incrementally: :meth:`add_document` and
    :meth:`remove_document` keep every map exact as documents come and
    go, so an index built incrementally equals one rebuilt from scratch
    (asserted by the test suite).  ``remove_document`` must be handed the
    same tree that was added — contributions are recomputed from it.
    """

    def __init__(self) -> None:
        #: text value -> {doc key -> sorted node paths of carrying nodes}
        self._terms: Postings = {}
        #: attribute value -> {doc key -> sorted "path/@name" postings}
        self._attributes: Postings = {}
        #: root-to-leaf tag path -> doc keys containing it
        self._paths: Dict[str, Set[str]] = {}
        self._documents: Set[str] = set()
        # Derived occurrence maps (rebuilt from ``_paths`` on restore):
        self._tag_docs: Dict[str, Set[str]] = {}
        self._pc_docs: Dict[Tuple[str, str], Set[str]] = {}
        self._ad_docs: Dict[Tuple[str, str], Set[str]] = {}
        # Memo for repeated probes (the plan-cache workload re-runs the
        # same lookups every query); any document mutation clears it.
        # Cached values are shared with callers and must stay read-only.
        self._probe_cache: Dict[Tuple, object] = {}

    # -- maintenance ---------------------------------------------------------

    @staticmethod
    def _contributions(
        root: XmlNode,
    ) -> Tuple[Dict[str, PathSet], Dict[str, PathSet], Set[str]]:
        """(term -> paths, attribute value -> paths, root-to-leaf paths)."""
        term_paths: Dict[str, PathSet] = {}
        attr_paths: Dict[str, PathSet] = {}
        leaf_paths: Set[str] = set()
        for node, path in root.iter_with_paths():
            joined = "/".join(path)
            term_paths.setdefault(node.text, set()).add(joined)
            for name, value in node.attributes.items():
                attr_paths.setdefault(value, set()).add(f"{joined}/@{name}")
            if not node.children:
                leaf_paths.add(joined)
        return term_paths, attr_paths, leaf_paths

    def _derived_entries(self, path: str) -> Tuple[List[str], List[Tuple[str, str]], List[Tuple[str, str]]]:
        tags = path.split("/")
        pc = [(tags[i], tags[i + 1]) for i in range(len(tags) - 1)]
        ad = [
            (tags[i], tags[j])
            for i in range(len(tags))
            for j in range(i + 1, len(tags))
        ]
        return tags, pc, ad

    def add_document(self, key: str, root: XmlNode) -> None:
        if key in self._documents:
            self.remove_document_by_key(key)
        term_paths, attr_paths, leaf_paths = self._contributions(root)
        for value, paths in term_paths.items():
            self._terms.setdefault(value, {})[key] = tuple(sorted(paths))
        for value, paths in attr_paths.items():
            self._attributes.setdefault(value, {})[key] = tuple(sorted(paths))
        for path in leaf_paths:
            self._paths.setdefault(path, set()).add(key)
            tags, pc, ad = self._derived_entries(path)
            for tag in tags:
                self._tag_docs.setdefault(tag, set()).add(key)
            for pair in pc:
                self._pc_docs.setdefault(pair, set()).add(key)
            for pair in ad:
                self._ad_docs.setdefault(pair, set()).add(key)
        self._documents.add(key)
        self._probe_cache.clear()

    def remove_document(self, key: str, root: XmlNode) -> None:
        """Remove ``key``'s contributions, recomputed from its stored tree."""
        if key not in self._documents:
            return
        term_paths, attr_paths, leaf_paths = self._contributions(root)
        for value in term_paths:
            self._drop_posting(self._terms, value, key)
        for value in attr_paths:
            self._drop_posting(self._attributes, value, key)
        for path in leaf_paths:
            self._discard(self._paths, path, key)
            tags, pc, ad = self._derived_entries(path)
            for tag in tags:
                self._discard(self._tag_docs, tag, key)
            for pair in pc:
                self._discard(self._pc_docs, pair, key)
            for pair in ad:
                self._discard(self._ad_docs, pair, key)
        self._documents.discard(key)
        self._probe_cache.clear()

    def remove_document_by_key(self, key: str) -> None:
        """Remove ``key`` everywhere (full sweep; used on re-add only)."""
        for postings in (self._terms, self._attributes):
            for value in [v for v, entry in postings.items() if key in entry]:
                self._drop_posting(postings, value, key)
        for mapping in (self._paths, self._tag_docs, self._pc_docs, self._ad_docs):
            for entry_key in [k for k, docs in mapping.items() if key in docs]:
                self._discard(mapping, entry_key, key)
        self._documents.discard(key)
        self._probe_cache.clear()

    @staticmethod
    def _drop_posting(postings: Postings, value: str, key: str) -> None:
        entry = postings.get(value)
        if entry is None:
            return
        entry.pop(key, None)
        if not entry:
            del postings[value]

    @staticmethod
    def _discard(mapping: Dict, entry_key, doc_key: str) -> None:
        docs = mapping.get(entry_key)
        if docs is None:
            return
        docs.discard(doc_key)
        if not docs:
            del mapping[entry_key]

    # -- probes --------------------------------------------------------------

    @property
    def documents(self) -> FrozenSet[str]:
        return frozenset(self._documents)

    def term_postings(self, value: str) -> Mapping[str, Tuple[str, ...]]:
        """``{doc key -> node paths}`` for an exact text value (may be empty)."""
        return self._terms.get(value, {})

    def attribute_postings(self, value: str) -> Mapping[str, Tuple[str, ...]]:
        return self._attributes.get(value, {})

    #: Probe-memo entries beyond this are dropped (workloads with more
    #: distinct probes than this gain little from memoisation anyway).
    _PROBE_CACHE_LIMIT = 1024

    def _memo(self, key: Tuple, result):
        if len(self._probe_cache) < self._PROBE_CACHE_LIMIT:
            self._probe_cache[key] = result
        return result

    def docs_with_term(
        self, value: str, tags: Optional[FrozenSet[str]] = None
    ) -> FrozenSet[str]:
        """Documents containing a node with exactly this text (tag-filtered).

        The returned set is memoised and shared — treat it as read-only.
        """
        key = ("term", value, tags)
        cached = self._probe_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        entry = self._terms.get(value)
        if not entry:
            result: FrozenSet[str] = frozenset()
        elif tags is None:
            result = frozenset(entry)
        else:
            result = frozenset(
                doc
                for doc, paths in entry.items()
                if any(_node_tag(path) in tags for path in paths)
            )
        return self._memo(key, result)

    def docs_with_any_tag(self, tags: Iterable[str]) -> FrozenSet[str]:
        return self._union_probe("tag", self._tag_docs, frozenset(tags))

    def docs_with_pc_pair(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> FrozenSet[str]:
        return self._union_probe("pc", self._pc_docs, frozenset(pairs))

    def docs_with_ad_pair(
        self, pairs: Iterable[Tuple[str, str]]
    ) -> FrozenSet[str]:
        return self._union_probe("ad", self._ad_docs, frozenset(pairs))

    def _union_probe(self, kind: str, mapping: Dict, entries: FrozenSet):
        key = (kind, entries)
        cached = self._probe_cache.get(key)
        if cached is not None:
            return cached
        docs: Set[str] = set()
        for entry in entries:
            docs |= mapping.get(entry, set())
        return self._memo(key, frozenset(docs))

    def terms_with_tags(
        self, tags: Optional[FrozenSet[str]] = None
    ) -> Dict[str, FrozenSet[str]]:
        """Every distinct text value (tag-filtered) with its document set.

        The planner walks this for probes that cannot be answered by
        exact lookup: the off-ontology tail of a ``~`` atom and
        cross-side similarity/equality pre-joins.  The returned mapping
        is memoised and shared — treat it as read-only.
        """
        key = ("terms", tags)
        cached = self._probe_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        result: Dict[str, FrozenSet[str]] = {}
        for value, entry in self._terms.items():
            if tags is None:
                result[value] = frozenset(entry)
                continue
            docs = frozenset(
                doc
                for doc, paths in entry.items()
                if any(_node_tag(path) in tags for path in paths)
            )
            if docs:
                result[value] = docs
        return self._memo(key, result)

    # -- statistics ----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "documents": len(self._documents),
            "terms": len(self._terms),
            "attribute_terms": len(self._attributes),
            "postings": sum(len(entry) for entry in self._terms.values())
            + sum(len(entry) for entry in self._attributes.values()),
            "paths": len(self._paths),
        }

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """A deterministic, JSON-serialisable rendering of the index."""
        return {
            "format": INDEX_FORMAT,
            "documents": sorted(self._documents),
            "terms": {
                value: {doc: list(paths) for doc, paths in sorted(entry.items())}
                for value, entry in sorted(self._terms.items())
            },
            "attributes": {
                value: {doc: list(paths) for doc, paths in sorted(entry.items())}
                for value, entry in sorted(self._attributes.items())
            },
            "paths": {
                path: sorted(docs) for path, docs in sorted(self._paths.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CollectionSearchIndex":
        if payload.get("format") != INDEX_FORMAT:
            raise ValueError(f"unsupported index format {payload.get('format')!r}")
        index = cls()
        index._documents = set(payload.get("documents", ()))  # type: ignore[arg-type]
        for attr, field in (("_terms", "terms"), ("_attributes", "attributes")):
            postings: Postings = {}
            for value, entry in dict(payload.get(field, {})).items():  # type: ignore[arg-type]
                postings[str(value)] = {
                    str(doc): tuple(str(p) for p in paths)
                    for doc, paths in dict(entry).items()
                }
            setattr(index, attr, postings)
        for path, docs in dict(payload.get("paths", {})).items():  # type: ignore[arg-type]
            doc_set = {str(doc) for doc in docs}
            index._paths[str(path)] = doc_set
            tags, pc, ad = index._derived_entries(str(path))
            for doc in doc_set:
                for tag in tags:
                    index._tag_docs.setdefault(tag, set()).add(doc)
                for pair in pc:
                    index._pc_docs.setdefault(pair, set()).add(doc)
                for pair in ad:
                    index._ad_docs.setdefault(pair, set()).add(doc)
        return index

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"CollectionSearchIndex({stats['documents']} documents, "
            f"{stats['terms']} terms, {stats['paths']} paths)"
        )
