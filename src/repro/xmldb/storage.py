"""On-disk persistence for the XML database, crash-safe.

Xindice stores collections in a filesystem-backed repository; this module
gives the in-memory substitute the same capability — ``save_database``
writes one directory per collection with one ``.xml`` file per document
plus a manifest, ``load_database`` reconstructs the database from it.
The layout is human-readable on purpose (documents stay plain XML):

    root/
      manifest.json            {"format": 2, "collections": {...}, ...}
      <collection>/
        <document-key>.xml
      .quarantine/             corrupted files moved aside during recovery
        <collection>/<file>.xml

Durability (format 2, see ``docs/PERSISTENCE.md``):

* every file is written via write-to-temp + fsync + atomic ``os.replace``
  (:mod:`repro.ioutils`), the manifest last — a crash mid-save leaves
  either the previous consistent state or the new one, never a torn file;
* the manifest records a SHA-256 checksum and byte count per document, so
  silent corruption is detected at load time;
* :func:`load_database` with ``on_corruption="quarantine"`` never dies on
  a damaged store: bad files are moved under ``root/.quarantine/`` and a
  structured :class:`RecoveryReport` lists what was lost.

Format 1 directories (no checksums, plain ``{key: filename}`` document
maps) written by earlier versions still load.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import StorageCorruptionError, XmlDbError
from ..ioutils import atomic_write_text, fsync_directory, sha256_text
from ..obs.metrics import REGISTRY as METRICS
from ..obs.trace import current_tracer
from .collection import Collection
from .database import Database
from .index import (
    index_content_key,
    load_collection_index,
    save_collection_index,
)
from .serializer import serialize

MANIFEST_NAME = "manifest.json"
QUARANTINE_DIR = ".quarantine"
FORMAT_VERSION = 2
_SAFE_COMPONENT = re.compile(r"[^A-Za-z0-9._-]")


def _filename_for(key: str) -> str:
    """A filesystem-safe file name for a document key."""
    return _SAFE_COMPONENT.sub("_", key) + ".xml"


def _unique_filename(key: str, used: Set[str]) -> str:
    """A file name for ``key`` not already in ``used``.

    Sanitisation can collapse distinct keys onto one name, and a numeric
    prefix alone is not enough (a key literally named ``1-a_b`` collides
    with the disambiguated form of ``a b``), so probe counters until the
    name is free.
    """
    filename = _filename_for(key)
    if filename not in used:
        return filename
    stem = filename[: -len(".xml")]
    counter = 1
    while True:
        candidate = f"{counter}-{stem}.xml"
        if candidate not in used:
            return candidate
        counter += 1


def _check_component(part: str) -> str:
    """Validate one manifest-supplied path component (no traversal)."""
    if (
        not part
        or part in (".", "..")
        or part != os.path.basename(part)
        or "/" in part
        or "\\" in part
    ):
        raise XmlDbError(
            f"manifest names unsafe path component {part!r}; refusing to "
            f"read outside the database root"
        )
    return part


def _resolve_inside(root_dir: str, *parts: str) -> str:
    """Join ``parts`` under ``root_dir``, rejecting any escape attempt."""
    path = os.path.join(root_dir, *(_check_component(part) for part in parts))
    base = os.path.realpath(root_dir)
    resolved = os.path.realpath(path)
    if resolved != base and not resolved.startswith(base + os.sep):
        raise XmlDbError(
            f"manifest path {path!r} escapes the database root {root_dir!r}"
        )
    return path


# ---------------------------------------------------------------------------
# Saving
# ---------------------------------------------------------------------------


def save_database(
    database: Database,
    root_dir: str,
    write_indexes: Optional[bool] = None,
) -> None:
    """Write every collection and document under ``root_dir``, atomically.

    The directory is created if missing; existing contents for the same
    collections are overwritten, foreign files are left alone.  Document
    files are written first (each atomically), then any search-index
    files, the manifest last — so the store always has a manifest
    describing fully-written files, no matter where a crash lands.

    ``write_indexes`` controls search-index persistence: ``None``
    (default) persists whatever indexes are already built in memory,
    ``True`` builds and persists an index for every collection, ``False``
    writes none.  Each index file is content-keyed to the exact document
    checksums in the manifest, so a load against changed documents
    discards it.
    """
    started = time.perf_counter()
    documents_written = 0
    os.makedirs(root_dir, exist_ok=True)
    manifest: Dict[str, object] = {
        "format": FORMAT_VERSION,
        "max_document_bytes": database.max_document_bytes,
        "collections": {},
    }
    for collection in database.collections():
        dirname = _SAFE_COMPONENT.sub("_", collection.name)
        directory = os.path.join(root_dir, dirname)
        os.makedirs(directory, exist_ok=True)
        documents: Dict[str, Dict[str, object]] = {}
        used: Set[str] = set()
        for key, tree in collection.documents():
            filename = _unique_filename(key, used)
            used.add(filename)
            text = serialize(tree, indent=2)
            atomic_write_text(os.path.join(directory, filename), text)
            documents[key] = {
                "file": filename,
                "sha256": sha256_text(text),
                "bytes": len(text.encode("utf-8")),
            }
            documents_written += 1
        manifest["collections"][collection.name] = {  # type: ignore[index]
            "directory": dirname,
            "documents": documents,
            "max_document_bytes": collection.max_document_bytes,
        }
        if write_indexes is False:
            continue
        index = collection.search_index(build=bool(write_indexes))
        if index is not None:
            checksums = {
                key: str(entry["sha256"]) for key, entry in documents.items()
            }
            save_collection_index(
                root_dir,
                dirname,
                collection.name,
                index,
                index_content_key(collection.name, checksums),
            )
    atomic_write_text(
        os.path.join(root_dir, MANIFEST_NAME),
        json.dumps(manifest, indent=2, sort_keys=True),
    )
    seconds = time.perf_counter() - started
    METRICS.counter("storage.saves").inc()
    METRICS.counter("storage.documents_written").inc(documents_written)
    METRICS.histogram("storage.save_seconds").observe(seconds)
    current_tracer().record_span(
        "storage.save", seconds, attributes={"documents": documents_written}
    )


def build_indexes(root_dir: str) -> Dict[str, Dict[str, int]]:
    """Build (or rebuild) persisted search indexes for a saved database.

    Loads the store, builds a fresh index per collection and writes each
    one keyed to the manifest's document checksums.  Returns per-
    collection index statistics.  Raises on a damaged store — indexes
    for unverifiable documents would be untrustworthy.
    """
    database = load_database(root_dir)
    with open(os.path.join(root_dir, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    stats: Dict[str, Dict[str, int]] = {}
    collections = manifest.get("collections", {})
    for collection in database.collections():
        info = collections.get(collection.name, {})
        dirname = str(info.get("directory", _SAFE_COMPONENT.sub("_", collection.name)))
        checksums = {
            key: str(entry.get("sha256", ""))
            for key, entry in info.get("documents", {}).items()
        }
        index = collection.search_index(build=True)
        assert index is not None
        save_collection_index(
            root_dir,
            dirname,
            collection.name,
            index,
            index_content_key(collection.name, checksums),
        )
        stats[collection.name] = index.stats()
    return stats


# ---------------------------------------------------------------------------
# Recovery reporting
# ---------------------------------------------------------------------------


@dataclass
class QuarantinedDocument:
    """One document (or the manifest) that failed integrity checks."""

    collection: str
    key: str
    filename: Optional[str]
    reason: str
    #: Where the damaged file was moved, or None when it was missing
    #: entirely (nothing to move) or the load ran in verify-only mode.
    quarantined_to: Optional[str] = None

    def __str__(self) -> str:
        where = f" -> {self.quarantined_to}" if self.quarantined_to else ""
        return f"{self.collection}/{self.key} ({self.reason}){where}"


@dataclass
class RecoveryReport:
    """What :func:`load_database` found (and salvaged) in a directory."""

    root_dir: str
    format: Optional[int] = None
    manifest_ok: bool = True
    loaded_documents: int = 0
    quarantined: List[QuarantinedDocument] = field(default_factory=list)
    #: The salvaged database (populated by load/recover, None for verify).
    database: Optional[Database] = None

    @property
    def ok(self) -> bool:
        """True when every file loaded clean."""
        return self.manifest_ok and not self.quarantined

    def summary(self) -> str:
        lines = [
            f"database at {self.root_dir}: format {self.format}, "
            f"{self.loaded_documents} documents ok, "
            f"{len(self.quarantined)} quarantined"
        ]
        if not self.manifest_ok:
            lines.append("manifest: CORRUPT (documents recoverable by directory scan)")
        for item in self.quarantined:
            lines.append(f"  - {item}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Loading / verification
# ---------------------------------------------------------------------------

_RAISE = "raise"
_QUARANTINE = "quarantine"
_VERIFY = "verify"


def load_database(root_dir: str, on_corruption: str = _RAISE) -> Database:
    """Rebuild a database from :func:`save_database` output.

    ``on_corruption`` selects the failure policy for truncated, missing,
    unparseable or checksum-mismatched files:

    ``"raise"`` (default)
        Raise :class:`~repro.errors.StorageCorruptionError` on the first
        damaged file (the historical behaviour, suitable for callers that
        treat any damage as fatal).

    ``"quarantine"``
        Never die: damaged files are moved under ``root/.quarantine/``,
        the surviving documents are loaded, and the returned database
        carries a :class:`RecoveryReport` as ``database.recovery_report``
        listing every quarantined document.
    """
    if on_corruption not in (_RAISE, _QUARANTINE):
        raise ValueError(
            f"on_corruption must be 'raise' or 'quarantine', got {on_corruption!r}"
        )
    started = time.perf_counter()
    report = _load(root_dir, on_corruption)
    assert report.database is not None
    report.database.recovery_report = report
    seconds = time.perf_counter() - started
    METRICS.counter("storage.loads").inc()
    METRICS.histogram("storage.load_seconds").observe(seconds)
    if report.quarantined:
        METRICS.counter("storage.documents_quarantined").inc(
            len(report.quarantined)
        )
    current_tracer().record_span(
        "storage.load",
        seconds,
        attributes={"quarantined": len(report.quarantined)},
    )
    return report.database


def recover_database(root_dir: str) -> RecoveryReport:
    """Quarantine-load ``root_dir``; the report carries the salvaged database."""
    report = _load(root_dir, _QUARANTINE)
    assert report.database is not None
    report.database.recovery_report = report
    return report


def verify_database(root_dir: str) -> RecoveryReport:
    """Integrity-check a saved database without modifying anything.

    Reads the manifest, re-parses every document and re-computes every
    checksum; records failures in the report but moves no files and
    builds no database (``report.database`` is None).
    """
    return _load(root_dir, _VERIFY)


def _quarantine_file(root_dir: str, collection_dir: str, path: str) -> Optional[str]:
    """Move a damaged file under ``root/.quarantine/``; returns the new path."""
    if not os.path.exists(path):
        return None
    target_dir = os.path.join(root_dir, QUARANTINE_DIR, collection_dir)
    os.makedirs(target_dir, exist_ok=True)
    base = os.path.basename(path)
    target = os.path.join(target_dir, base)
    counter = 1
    while os.path.exists(target):
        target = os.path.join(target_dir, f"{counter}-{base}")
        counter += 1
    os.replace(path, target)
    fsync_directory(target_dir)
    return target


def _document_entries(
    info: Dict[str, object], version: int
) -> List[Tuple[str, str, Optional[str]]]:
    """Normalise a manifest collection entry to (key, filename, sha256)."""
    entries: List[Tuple[str, str, Optional[str]]] = []
    documents = info.get("documents", {})
    if not isinstance(documents, dict):
        raise StorageCorruptionError("manifest 'documents' is not an object")
    for key, value in documents.items():
        if version == 1:
            if not isinstance(value, str):
                raise StorageCorruptionError(
                    f"format-1 manifest entry for {key!r} is not a file name"
                )
            entries.append((key, value, None))
        else:
            if not isinstance(value, dict) or "file" not in value:
                raise StorageCorruptionError(
                    f"manifest entry for {key!r} lacks a 'file' field"
                )
            sha = value.get("sha256")
            entries.append((key, str(value["file"]), str(sha) if sha else None))
    return entries


def _salvage_without_manifest(root_dir: str, report: RecoveryReport) -> Database:
    """Rebuild a database by scanning collection directories directly.

    Last-resort recovery for a destroyed manifest: every subdirectory
    (except the quarantine area) becomes a collection, every parseable
    ``.xml`` file inside becomes a document keyed by its file stem.
    Unparseable files are quarantined.  Original document keys that were
    sanitised at save time cannot be reconstructed — the stem is the best
    available approximation, and the data itself is preserved.
    """
    database = Database()
    for entry in sorted(os.listdir(root_dir)):
        if entry == QUARANTINE_DIR or entry.startswith("."):
            continue
        directory = os.path.join(root_dir, entry)
        if not os.path.isdir(directory):
            continue
        collection = database.create_collection(entry)
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".xml"):
                continue
            path = os.path.join(directory, filename)
            key = filename[: -len(".xml")]
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                collection.add_document(key, text)
            except (OSError, UnicodeDecodeError, XmlDbError) as exc:
                moved = _quarantine_file(root_dir, entry, path)
                report.quarantined.append(
                    QuarantinedDocument(entry, key, filename, f"unsalvageable: {exc}", moved)
                )
                continue
            report.loaded_documents += 1
    return database


def _load(root_dir: str, policy: str) -> RecoveryReport:
    report = RecoveryReport(root_dir=root_dir)
    manifest_path = os.path.join(root_dir, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict):
            raise StorageCorruptionError("database manifest is not a JSON object")
    except FileNotFoundError:
        raise XmlDbError(f"no database manifest at {manifest_path}") from None
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        if policy == _RAISE:
            raise StorageCorruptionError(
                f"corrupt database manifest: {exc}"
            ) from exc
        report.manifest_ok = False
        report.quarantined.append(
            QuarantinedDocument(
                collection="",
                key=MANIFEST_NAME,
                filename=MANIFEST_NAME,
                reason=f"corrupt manifest: {exc}",
                quarantined_to=(
                    _quarantine_file(root_dir, "", manifest_path)
                    if policy == _QUARANTINE
                    else None
                ),
            )
        )
        if policy == _QUARANTINE:
            report.database = _salvage_without_manifest(root_dir, report)
            # rewrite a clean manifest over the salvage, otherwise the next
            # load would find no manifest at all and refuse the directory
            save_database(report.database, root_dir)
        return report

    version = manifest.get("format")
    if version not in (1, FORMAT_VERSION):
        raise XmlDbError(f"unsupported database format {version!r}")
    report.format = version

    database = Database(int(manifest.get("max_document_bytes", 5 * 1024 * 1024)))

    def fail(
        collection_name: str,
        collection_dir: str,
        key: str,
        filename: Optional[str],
        reason: str,
        path: Optional[str] = None,
    ) -> None:
        if policy == _RAISE:
            raise StorageCorruptionError(
                f"document {key!r} in collection {collection_name!r}: {reason}"
            )
        moved = None
        if policy == _QUARANTINE and path is not None:
            moved = _quarantine_file(root_dir, collection_dir, path)
        report.quarantined.append(
            QuarantinedDocument(collection_name, key, filename, reason, moved)
        )

    collections = manifest.get("collections", {})
    if not isinstance(collections, dict):
        raise XmlDbError("database manifest 'collections' is not an object")
    for name, info in collections.items():
        if not isinstance(info, dict) or "directory" not in info:
            fail(name, "", "", None, "manifest collection entry is malformed")
            continue
        collection = database.create_collection(name)
        collection.max_document_bytes = int(
            info.get("max_document_bytes", database.max_document_bytes)
        )
        # Path-traversal hardening happens before any policy applies: a
        # manifest pointing outside the root is an attack, not damage.
        collection_dir = str(info["directory"])
        directory = _resolve_inside(root_dir, collection_dir)
        try:
            entries = _document_entries(info, version)
        except StorageCorruptionError as exc:
            fail(name, collection_dir, "", None, str(exc))
            continue
        quarantined_before = len(report.quarantined)
        loaded_shas: Dict[str, str] = {}
        for key, filename, expected_sha in entries:
            path = _resolve_inside(root_dir, collection_dir, filename)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except FileNotFoundError:
                fail(name, collection_dir, key, filename, "file missing")
                continue
            except (OSError, UnicodeDecodeError) as exc:
                fail(name, collection_dir, key, filename, f"unreadable: {exc}", path)
                continue
            if expected_sha is not None and sha256_text(text) != expected_sha:
                fail(
                    name,
                    collection_dir,
                    key,
                    filename,
                    "checksum mismatch (truncated or corrupted)",
                    path,
                )
                continue
            try:
                collection.add_document(key, text)
            except XmlDbError as exc:
                fail(name, collection_dir, key, filename, f"invalid document: {exc}", path)
                continue
            if expected_sha is not None:
                loaded_shas[key] = expected_sha
            report.loaded_documents += 1
        # Adopt a persisted search index only when every document of the
        # collection loaded clean with a checksum: the content key then
        # proves the index describes exactly these documents.  Anything
        # else (quarantined files, format-1 entries, stale or damaged
        # index) falls back to a lazy in-memory rebuild.
        if (
            policy != _VERIFY
            and len(report.quarantined) == quarantined_before
            and len(loaded_shas) == len(entries)
        ):
            index = load_collection_index(
                root_dir,
                collection_dir,
                name,
                index_content_key(name, loaded_shas),
            )
            if index is not None:
                collection.attach_search_index(index)

    if policy != _VERIFY:
        report.database = database
    return report
