"""On-disk persistence for the XML database.

Xindice stores collections in a filesystem-backed repository; this module
gives the in-memory substitute the same capability — ``save_database``
writes one directory per collection with one ``.xml`` file per document
plus a manifest, ``load_database`` reconstructs the database from it.
The layout is human-readable on purpose (documents stay plain XML):

    root/
      manifest.json            {"collections": {...}, "max_document_bytes": N}
      <collection>/
        <document-key>.xml
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List

from ..errors import XmlDbError
from .collection import Collection
from .database import Database
from .serializer import serialize

MANIFEST_NAME = "manifest.json"
_SAFE_COMPONENT = re.compile(r"[^A-Za-z0-9._-]")


def _filename_for(key: str) -> str:
    """A filesystem-safe file name for a document key."""
    return _SAFE_COMPONENT.sub("_", key) + ".xml"


def save_database(database: Database, root_dir: str) -> None:
    """Write every collection and document under ``root_dir``.

    The directory is created if missing; existing contents for the same
    collections are overwritten, foreign files are left alone.
    """
    os.makedirs(root_dir, exist_ok=True)
    manifest: Dict[str, object] = {
        "format": 1,
        "max_document_bytes": database.max_document_bytes,
        "collections": {},
    }
    for collection in database.collections():
        directory = os.path.join(root_dir, _SAFE_COMPONENT.sub("_", collection.name))
        os.makedirs(directory, exist_ok=True)
        documents: Dict[str, str] = {}
        for key, tree in collection.documents():
            filename = _filename_for(key)
            if filename in documents.values():
                # Two keys collapsing to one file name: disambiguate.
                filename = f"{len(documents)}-{filename}"
            documents[key] = filename
            with open(os.path.join(directory, filename), "w", encoding="utf-8") as out:
                out.write(serialize(tree, indent=2))
        manifest["collections"][collection.name] = {  # type: ignore[index]
            "directory": os.path.basename(directory),
            "documents": documents,
            "max_document_bytes": collection.max_document_bytes,
        }
    with open(os.path.join(root_dir, MANIFEST_NAME), "w", encoding="utf-8") as out:
        json.dump(manifest, out, indent=2, sort_keys=True)


def load_database(root_dir: str) -> Database:
    """Rebuild a database from :func:`save_database` output."""
    manifest_path = os.path.join(root_dir, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError:
        raise XmlDbError(f"no database manifest at {manifest_path}") from None
    except json.JSONDecodeError as exc:
        raise XmlDbError(f"corrupt database manifest: {exc}") from exc
    if manifest.get("format") != 1:
        raise XmlDbError(f"unsupported database format {manifest.get('format')!r}")

    database = Database(int(manifest.get("max_document_bytes", 5 * 1024 * 1024)))
    for name, info in manifest.get("collections", {}).items():
        collection = database.create_collection(name)
        collection.max_document_bytes = int(
            info.get("max_document_bytes", database.max_document_bytes)
        )
        directory = os.path.join(root_dir, info["directory"])
        for key, filename in info.get("documents", {}).items():
            path = os.path.join(directory, filename)
            with open(path, "r", encoding="utf-8") as handle:
                collection.add_document(key, handle.read())
    return database
