"""Ordered labelled trees — the semistructured instances of Definition 1.

A semistructured instance is a set of rooted, directed, *ordered* trees
whose objects carry a ``tag`` (the label of the edge to the parent) and a
``content`` (text).  :class:`XmlNode` realises one object; a document is
the tree under a root node.

Nodes carry preorder/postorder numbers (assigned by :meth:`XmlNode.renumber`
on the root) so that ancestor/descendant tests and document-order
comparisons — which the TAX embedding machinery performs constantly — are
O(1): ``u`` is an ancestor of ``v`` iff ``u.pre < v.pre and u.post > v.post``.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

_object_ids = itertools.count(1)


class XmlNode:
    """One object of a semistructured instance.

    Attributes
    ----------
    tag:
        The element name (``o.tag`` in Definition 1).
    text:
        The node's own character data, stripped (``o.content``).
    attributes:
        XML attributes, preserved for fidelity to the source documents
        (the SIGMOD record files use ``position`` attributes).
    children:
        Ordered list of child nodes.
    parent:
        Backlink, None for roots.
    pre, post, depth:
        Pre-/post-order numbers and depth; valid after :meth:`renumber`
        has been called on the root.
    object_id:
        A process-unique identity for the node (the member of the object
        set O); survives renumbering.
    """

    __slots__ = (
        "tag",
        "text",
        "attributes",
        "children",
        "parent",
        "pre",
        "post",
        "depth",
        "object_id",
    )

    def __init__(
        self,
        tag: str,
        text: str = "",
        attributes: Optional[Dict[str, str]] = None,
        children: Optional[List["XmlNode"]] = None,
    ) -> None:
        self.tag = tag
        self.text = text
        self.attributes: Dict[str, str] = dict(attributes) if attributes else {}
        self.children: List[XmlNode] = []
        self.parent: Optional[XmlNode] = None
        self.pre = -1
        self.post = -1
        self.depth = 0
        self.object_id = next(_object_ids)
        for child in children or []:
            self.append(child)

    # -- construction -------------------------------------------------------

    def append(self, child: "XmlNode") -> "XmlNode":
        """Attach ``child`` as the last child; returns the child."""
        child.parent = self
        self.children.append(child)
        return child

    def element(self, tag: str, text: str = "", **attributes: str) -> "XmlNode":
        """Create-and-append a child element; returns the new child."""
        return self.append(XmlNode(tag, text, attributes))

    def detach(self) -> "XmlNode":
        """Remove this node from its parent (if any); returns self."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    def renumber(self) -> "XmlNode":
        """(Re)assign pre/post/depth over the subtree rooted here.

        Must be called on a root after structural edits before any
        order-dependent operation; returns self for chaining.
        """
        pre_counter = itertools.count()
        post_counter = itertools.count()

        def visit(node: "XmlNode", depth: int) -> None:
            node.pre = next(pre_counter)
            node.depth = depth
            for child in node.children:
                visit(child, depth + 1)
            node.post = next(post_counter)

        visit(self, 0)
        return self

    # -- content ------------------------------------------------------------

    @property
    def content(self) -> str:
        """The object's content attribute — its own text."""
        return self.text

    def string_value(self) -> str:
        """Concatenated text of the whole subtree (XPath string-value)."""
        parts: List[str] = []
        for node in self.iter():
            if node.text:
                parts.append(node.text)
        return " ".join(parts)

    # -- traversal -------------------------------------------------------------

    def iter(self) -> Iterator["XmlNode"]:
        """Preorder traversal of the subtree including self."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_with_paths(self) -> Iterator[Tuple["XmlNode", Tuple[str, ...]]]:
        """Preorder traversal yielding each node with its root-to-node tag path.

        The path starts at this node's own tag, so iterating a document
        root yields the paths the structural tag-path index is keyed by.
        """
        stack: List[Tuple[XmlNode, Tuple[str, ...]]] = [(self, (self.tag,))]
        while stack:
            node, path = stack.pop()
            yield node, path
            for child in reversed(node.children):
                stack.append((child, path + (child.tag,)))

    def descendants(self) -> Iterator["XmlNode"]:
        """Preorder traversal of strict descendants."""
        nodes = self.iter()
        next(nodes)  # drop self
        return nodes

    def ancestors(self) -> Iterator["XmlNode"]:
        """Walk from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def root(self) -> "XmlNode":
        """The root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def find_all(self, tag: str) -> List["XmlNode"]:
        """All descendants-or-self with the given tag, in document order."""
        return [node for node in self.iter() if node.tag == tag]

    def find_first(self, tag: str) -> Optional["XmlNode"]:
        """First descendant-or-self with the given tag, or None."""
        for node in self.iter():
            if node.tag == tag:
                return node
        return None

    def child_by_tag(self, tag: str) -> Optional["XmlNode"]:
        """First direct child with the given tag, or None."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def leaves(self) -> Iterator["XmlNode"]:
        """All leaf nodes of the subtree, in document order."""
        for node in self.iter():
            if not node.children:
                yield node

    # -- structure queries ------------------------------------------------------

    def size(self) -> int:
        """Number of nodes in the subtree including self."""
        return sum(1 for _ in self.iter())

    def is_leaf(self) -> bool:
        return not self.children

    def sibling_index(self) -> int:
        """Zero-based position among the parent's children (0 for roots)."""
        if self.parent is None:
            return 0
        return self.parent.children.index(self)

    def path_tags(self) -> Tuple[str, ...]:
        """Tags from the root down to this node."""
        tags = [self.tag]
        for ancestor in self.ancestors():
            tags.append(ancestor.tag)
        return tuple(reversed(tags))

    # -- copying -------------------------------------------------------------

    def copy(self) -> "XmlNode":
        """Deep structural copy; new object identities, numbering unset."""
        clone = XmlNode(self.tag, self.text, self.attributes)
        for child in self.children:
            clone.append(child.copy())
        return clone

    def copy_numbered(
        self,
        pre_counter: "itertools.count",
        post_counter: "itertools.count",
        depth: int = 0,
    ) -> "XmlNode":
        """Deep copy that assigns pre/post/depth in the same pass.

        Single-traversal equivalent of ``copy()`` + ``renumber()``; the
        shared counters let a caller number a synthetic root and several
        copied subtrees as one tree (the product operator's hot loop).
        Slots are written directly — this is the innermost loop of the
        naive join strategy and the constructor call is measurable there.
        """
        clone: XmlNode = XmlNode.__new__(XmlNode)
        clone.tag = self.tag
        clone.text = self.text
        attributes = self.attributes
        clone.attributes = dict(attributes) if attributes else {}
        clone.children = attach = []
        clone.parent = None
        clone.pre = next(pre_counter)
        clone.post = -1
        clone.depth = depth
        clone.object_id = next(_object_ids)
        for child in self.children:
            sub = child.copy_numbered(pre_counter, post_counter, depth + 1)
            sub.parent = clone
            attach.append(sub)
        clone.post = next(post_counter)
        return clone

    def map_copy(self) -> Tuple["XmlNode", Dict[int, "XmlNode"]]:
        """Deep copy plus a mapping from original object_id to the clone."""
        mapping: Dict[int, XmlNode] = {}

        def clone_node(node: "XmlNode") -> "XmlNode":
            clone = XmlNode(node.tag, node.text, node.attributes)
            mapping[node.object_id] = clone
            for child in node.children:
                clone.append(clone_node(child))
            return clone

        return clone_node(self), mapping

    # -- comparison ----------------------------------------------------------

    def structurally_equal(self, other: "XmlNode") -> bool:
        """Ordered tree equality on (tag, text, attributes) — Section 5.1.2.

        Matches the paper's tree-equality used by the set operators: an
        order- and edge-preserving isomorphism under which the value atoms
        agree is exactly positional equality of tag/text/attributes.
        """
        if (
            self.tag != other.tag
            or self.text != other.text
            or self.attributes != other.attributes
            or len(self.children) != len(other.children)
        ):
            return False
        return all(
            mine.structurally_equal(theirs)
            for mine, theirs in zip(self.children, other.children)
        )

    def canonical_key(self) -> Tuple:
        """A hashable key equal for structurally equal trees."""
        return (
            self.tag,
            self.text,
            tuple(sorted(self.attributes.items())),
            tuple(child.canonical_key() for child in self.children),
        )

    def __repr__(self) -> str:
        summary = f" {self.text[:30]!r}" if self.text else ""
        return f"<{self.tag}{summary} children={len(self.children)}>"


def ancestor_of(candidate: XmlNode, node: XmlNode) -> bool:
    """O(1) strict-ancestor test using pre/post numbering.

    Both nodes must belong to the same renumbered tree; falls back to a
    parent-pointer walk if numbering is absent.
    """
    if candidate.pre >= 0 and node.pre >= 0 and candidate.root() is node.root():
        return candidate.pre < node.pre and candidate.post > node.post
    return any(ancestor is candidate for ancestor in node.ancestors())


def document_order(nodes: Iterable[XmlNode]) -> List[XmlNode]:
    """Sort nodes of one tree by preorder position."""
    return sorted(nodes, key=lambda node: node.pre)


def build(tag: str, *children: "XmlNode | str", **attributes: str) -> XmlNode:
    """Declarative tree construction helper.

    Strings become the node's text; nodes become children:

    >>> tree = build("inproceedings", build("author", "J. Ullman"))
    >>> tree.children[0].text
    'J. Ullman'
    """
    node = XmlNode(tag, attributes=attributes)
    texts: List[str] = []
    for child in children:
        if isinstance(child, str):
            texts.append(child)
        else:
            node.append(child)
    node.text = " ".join(texts)
    return node
