"""Named collections of XML documents, Xindice style.

A collection stores documents under string keys, enforces a per-document
size cap (Xindice's "5MB maximum data size limitation" shapes the paper's
Section 6 experiments — we default to the same 5 MB and make it
configurable), and runs XPath queries over all or one of its documents.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import CollectionError, DocumentTooLargeError
from ..guard import ResourceGuard
from .indexes import CollectionIndex, DocumentIndex
from .model import XmlNode
from .parser import parse_document
from .serializer import document_bytes
from .xpath import XPathQuery
from .xpath.engine import ResultNode

#: Apache Xindice's practical per-document limit, bytes.
XINDICE_DOCUMENT_LIMIT = 5 * 1024 * 1024


class Collection:
    """An ordered mapping of document keys to XML trees."""

    def __init__(
        self,
        name: str,
        max_document_bytes: int = XINDICE_DOCUMENT_LIMIT,
    ) -> None:
        if not name:
            raise CollectionError("collection name must be non-empty")
        self.name = name
        self.max_document_bytes = max_document_bytes
        self._documents: Dict[str, XmlNode] = {}
        self._index = CollectionIndex()

    # -- document management ---------------------------------------------------

    def add_document(self, key: str, document: "XmlNode | str") -> XmlNode:
        """Store a document under ``key``.

        Accepts a parsed tree or raw XML text.  Raises
        :class:`DocumentTooLargeError` if the serialised document exceeds
        the configured cap and :class:`CollectionError` on duplicate keys.
        """
        if key in self._documents:
            raise CollectionError(
                f"collection {self.name!r} already has a document {key!r}"
            )
        if isinstance(document, str):
            root = parse_document(document)
        else:
            root = document.renumber()
        size = document_bytes(root)
        if size > self.max_document_bytes:
            raise DocumentTooLargeError(size, self.max_document_bytes)
        self._documents[key] = root
        return root

    def replace_document(self, key: str, document: "XmlNode | str") -> XmlNode:
        """Overwrite (or create) the document under ``key``."""
        if key in self._documents:
            self._index.invalidate(self._documents[key])
            del self._documents[key]
        return self.add_document(key, document)

    def remove_document(self, key: str) -> None:
        try:
            root = self._documents.pop(key)
        except KeyError:
            raise CollectionError(
                f"collection {self.name!r} has no document {key!r}"
            ) from None
        self._index.invalidate(root)

    def get_document(self, key: str) -> XmlNode:
        try:
            return self._documents[key]
        except KeyError:
            raise CollectionError(
                f"collection {self.name!r} has no document {key!r}"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def keys(self) -> Iterator[str]:
        return iter(self._documents)

    def documents(self) -> Iterator[Tuple[str, XmlNode]]:
        return iter(self._documents.items())

    def roots(self) -> List[XmlNode]:
        return list(self._documents.values())

    # -- statistics ----------------------------------------------------------

    def total_bytes(self) -> int:
        """Sum of compact-serialised document sizes (paper's data size)."""
        return sum(document_bytes(root) for root in self._documents.values())

    def total_nodes(self) -> int:
        return sum(root.size() for root in self._documents.values())

    # -- querying ----------------------------------------------------------------

    def index_for(self, root: XmlNode) -> DocumentIndex:
        """Per-document tag/value index (built lazily, cached)."""
        return self._index.index_for(root)

    def xpath(
        self,
        query: "str | XPathQuery",
        guard: Optional[ResourceGuard] = None,
    ) -> List[ResultNode]:
        """Run an XPath query over every document, concatenating results.

        A :class:`~repro.guard.ResourceGuard` bounds the evaluation: its
        deadline and step budget apply inside the XPath engine, and its
        result cap is checked as results accumulate across documents.
        """
        compiled = query if isinstance(query, XPathQuery) else XPathQuery(query)
        results: List[ResultNode] = []
        for root in self._documents.values():
            results.extend(compiled.select(root, guard=guard))
            if guard is not None:
                guard.check_results(len(results), f"query over {self.name!r}")
        return results

    def xpath_document(
        self,
        key: str,
        query: "str | XPathQuery",
        guard: Optional[ResourceGuard] = None,
    ) -> List[ResultNode]:
        """Run an XPath query over a single document."""
        compiled = query if isinstance(query, XPathQuery) else XPathQuery(query)
        return compiled.select(self.get_document(key), guard=guard)

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, {len(self)} documents)"
