"""Named collections of XML documents, Xindice style.

A collection stores documents under string keys, enforces a per-document
size cap (Xindice's "5MB maximum data size limitation" shapes the paper's
Section 6 experiments — we default to the same 5 MB and make it
configurable), and runs XPath queries over all or one of its documents.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import CollectionError, DocumentTooLargeError
from ..guard import ResourceGuard
from .columnar import DocumentColumns
from .index import CollectionSearchIndex
from .indexes import CollectionIndex, DocumentIndex
from .model import XmlNode
from .parser import parse_document
from .serializer import document_bytes
from .xpath import XPathQuery
from .xpath.engine import ResultNode

#: Apache Xindice's practical per-document limit, bytes.
XINDICE_DOCUMENT_LIMIT = 5 * 1024 * 1024

#: Mutations the changelog ring retains.  Deltas older than this force a
#: full snapshot refresh; sized for "live traffic" write rates (hundreds
#: of writes between two refreshes), not bulk loads.
CHANGELOG_CAPACITY = 512


class Collection:
    """An ordered mapping of document keys to XML trees."""

    def __init__(
        self,
        name: str,
        max_document_bytes: int = XINDICE_DOCUMENT_LIMIT,
    ) -> None:
        if not name:
            raise CollectionError("collection name must be non-empty")
        self.name = name
        self.max_document_bytes = max_document_bytes
        self._documents: Dict[str, XmlNode] = {}
        self._index = CollectionIndex()
        #: Run unguarded XPath scans through compiled columnar matchers
        #: when the query supports them (ablatable; results identical).
        self.use_columnar = True
        #: Lazily built per-document columnar arrays, keyed by document
        #: key; each entry remembers the root it was built from so a
        #: replaced document can never serve stale columns.
        self._columns: Dict[str, Tuple[XmlNode, DocumentColumns]] = {}
        #: ``(generation, {id(root): key})`` — lazy reverse lookup from a
        #: document root object to its key, rebuilt when the generation
        #: moves (see :meth:`columns_for_root`).
        self._root_keys: Optional[Tuple[int, Dict[int, str]]] = None
        #: Collection-wide term/path search index (see repro.xmldb.index),
        #: built lazily on first use or attached from a persisted file;
        #: maintained incrementally once present.
        self._search_index: Optional[CollectionSearchIndex] = None
        #: Monotonic change counter, bumped on every document mutation.
        #: Snapshot consumers (the serving layer's worker pools) compare
        #: generations to detect that a snapshot went stale.
        self.generation = 0
        #: Ring of recent mutations: ``(generation, op, key, removed_id,
        #: added_id)`` with ``op`` one of add/replace/remove and the ids
        #: the ``id()`` of the outgoing/incoming root (None when absent).
        #: :meth:`changes_since` replays it so snapshot refreshes ship
        #: deltas instead of the whole collection, and
        #: :meth:`columns_for_root` patches its reverse map instead of
        #: rebuilding it per mutation.
        self._changelog: Deque[Tuple[int, str, str, Optional[int], Optional[int]]] = (
            deque(maxlen=CHANGELOG_CAPACITY)
        )

    # -- document management ---------------------------------------------------

    def add_document(self, key: str, document: "XmlNode | str") -> XmlNode:
        """Store a document under ``key``.

        Accepts a parsed tree or raw XML text.  Raises
        :class:`DocumentTooLargeError` if the serialised document exceeds
        the configured cap and :class:`CollectionError` on duplicate keys.
        """
        if key in self._documents:
            raise CollectionError(
                f"collection {self.name!r} already has a document {key!r}"
            )
        return self._store(key, document, "add", None)

    def _store(
        self,
        key: str,
        document: "XmlNode | str",
        op: str,
        removed_id: Optional[int],
    ) -> XmlNode:
        if isinstance(document, str):
            root = parse_document(document)
        else:
            root = document.renumber()
        size = document_bytes(root)
        if size > self.max_document_bytes:
            raise DocumentTooLargeError(size, self.max_document_bytes)
        self._documents[key] = root
        self.generation += 1
        self._changelog.append((self.generation, op, key, removed_id, id(root)))
        if self._search_index is not None:
            self._search_index.add_document(key, root)
        return root

    def replace_document(self, key: str, document: "XmlNode | str") -> XmlNode:
        """Overwrite (or create) the document under ``key``."""
        if key in self._documents:
            root = self._documents[key]
            self._index.invalidate(root)
            self._columns.pop(key, None)
            if self._search_index is not None:
                self._search_index.remove_document(key, root)
            del self._documents[key]
            return self._store(key, document, "replace", id(root))
        return self.add_document(key, document)

    def remove_document(self, key: str) -> None:
        try:
            root = self._documents.pop(key)
        except KeyError:
            raise CollectionError(
                f"collection {self.name!r} has no document {key!r}"
            ) from None
        self.generation += 1
        self._changelog.append((self.generation, "remove", key, id(root), None))
        self._index.invalidate(root)
        self._columns.pop(key, None)
        if self._search_index is not None:
            self._search_index.remove_document(key, root)

    def changes_since(self, generation: int) -> Optional[List[Tuple[str, str]]]:
        """Mutations after ``generation``, oldest first, or None.

        Returns ``(op, key)`` pairs — ``op`` one of ``add``, ``replace``,
        ``remove`` — covering every generation in ``(generation, current]``.
        Returns None when the ring no longer reaches back that far (or the
        asked-for generation is from another collection's history); the
        caller must then fall back to a full refresh.  Every mutation bumps
        the generation exactly once, so coverage is a simple count check.
        """
        if generation == self.generation:
            return []
        if generation > self.generation:
            return None
        changes = [
            (op, key)
            for gen, op, key, _removed, _added in self._changelog
            if gen > generation
        ]
        if len(changes) != self.generation - generation:
            return None  # ring truncated: some mutations have been forgotten
        return changes

    def get_document(self, key: str) -> XmlNode:
        try:
            return self._documents[key]
        except KeyError:
            raise CollectionError(
                f"collection {self.name!r} has no document {key!r}"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def keys(self) -> Iterator[str]:
        return iter(self._documents)

    def documents(self) -> Iterator[Tuple[str, XmlNode]]:
        return iter(self._documents.items())

    def roots(self) -> List[XmlNode]:
        return list(self._documents.values())

    # -- statistics ----------------------------------------------------------

    def total_bytes(self) -> int:
        """Sum of compact-serialised document sizes (paper's data size)."""
        return sum(document_bytes(root) for root in self._documents.values())

    def total_nodes(self) -> int:
        return sum(root.size() for root in self._documents.values())

    # -- querying ----------------------------------------------------------------

    def index_for(self, root: XmlNode) -> DocumentIndex:
        """Per-document tag/value index (built lazily, cached)."""
        return self._index.index_for(root)

    def columns_for(self, key: str, root: XmlNode) -> DocumentColumns:
        """Columnar arrays for a stored document (built lazily, cached)."""
        entry = self._columns.get(key)
        if entry is not None and entry[0] is root:
            return entry[1]
        columns = DocumentColumns(root)
        self._columns[key] = (root, columns)
        return columns

    def columns_for_root(self, root: XmlNode) -> Optional[DocumentColumns]:
        """Columnar arrays for the stored document rooted at ``root``.

        ``root`` must be the *identical object* a current document is
        stored under — anything else (a copy, a replaced document, a
        foreign tree) returns None and the caller falls back to
        tree-walking verification.  The reverse id->key map is maintained
        copy-on-write: when the generation moves, the changelog entries
        since the map's generation are replayed onto it (cost proportional
        to the delta); only a truncated ring forces a full rebuild.
        """
        cached = self._root_keys
        if cached is not None and cached[0] != self.generation:
            mapping = cached[1]
            behind = cached[0]
            patched = False
            if self.generation - behind <= len(self._changelog):
                entries = [e for e in self._changelog if e[0] > behind]
                if len(entries) == self.generation - behind:
                    for _gen, _op, key, removed_id, added_id in entries:
                        if removed_id is not None:
                            mapping.pop(removed_id, None)
                        if added_id is not None:
                            mapping[added_id] = key
                    self._root_keys = cached = (self.generation, mapping)
                    patched = True
            if not patched:
                cached = None
        if cached is None:
            mapping = {id(node): key for key, node in self._documents.items()}
            self._root_keys = cached = (self.generation, mapping)
        key = cached[1].get(id(root))
        if key is None or self._documents.get(key) is not root:
            return None
        return self.columns_for(key, root)

    def search_index(self, build: bool = True) -> Optional[CollectionSearchIndex]:
        """The collection-wide search index, built on first request.

        With ``build=False``, returns whatever is already in memory
        (possibly None) without paying for construction.
        """
        if self._search_index is None and build:
            index = CollectionSearchIndex()
            for key, root in self._documents.items():
                index.add_document(key, root)
            self._search_index = index
        return self._search_index

    def attach_search_index(self, index: CollectionSearchIndex) -> None:
        """Adopt a prebuilt (e.g. loaded-from-disk) search index.

        The caller is responsible for having verified that the index
        matches the current documents — storage only attaches indexes
        whose content key matches the manifest checksums.
        """
        self._search_index = index

    def xpath(
        self,
        query: "str | XPathQuery",
        guard: Optional[ResourceGuard] = None,
        document_keys: Optional["Iterable[str]"] = None,
    ) -> List[ResultNode]:
        """Run an XPath query over every document, concatenating results.

        ``document_keys`` restricts evaluation to a subset of documents
        (unknown keys are ignored); iteration stays in collection
        insertion order so a restricted run returns results in the same
        order as a full scan filtered to those documents.

        A :class:`~repro.guard.ResourceGuard` bounds the evaluation: its
        deadline and step budget apply inside the XPath engine, and its
        result cap is checked as results accumulate across documents.
        """
        compiled = query if isinstance(query, XPathQuery) else XPathQuery(query)
        wanted = None if document_keys is None else set(document_keys)
        # The columnar fast path never ticks a guard, so a guarded scan
        # always runs the (tick-accurate) AST engine.
        matcher = (
            compiled.columnar_matcher()
            if guard is None and self.use_columnar
            else None
        )
        results: List[ResultNode] = []
        for key, root in self._documents.items():
            if wanted is not None and key not in wanted:
                continue
            if matcher is not None:
                results.extend(matcher(self.columns_for(key, root)))
            else:
                results.extend(compiled.select(root, guard=guard))
            if guard is not None:
                guard.check_results(len(results), f"query over {self.name!r}")
        return results

    def xpath_rows(
        self,
        query: "str | XPathQuery",
        document_keys: Optional["Iterable[str]"] = None,
    ) -> Optional[List[Tuple[DocumentColumns, int]]]:
        """Columnar ``(columns, row)`` results of an unguarded query, or None.

        Returns None when the query falls outside the columnar subset or
        :attr:`use_columnar` is off — the caller must then run
        :meth:`xpath` and resolve nodes itself.  When supported, the
        returned pairs cover exactly the node sequence :meth:`xpath`
        yields (same documents, same order): ``columns.nodes[row]`` is
        that node.  Never ticks a guard, hence unguarded-only (mirrors
        the columnar-matcher rule in :meth:`xpath`).
        """
        if not self.use_columnar:
            return None
        compiled = query if isinstance(query, XPathQuery) else XPathQuery(query)
        rows_fn = compiled.columnar_rows()
        if rows_fn is None:
            return None
        wanted = None if document_keys is None else set(document_keys)
        pairs: List[Tuple[DocumentColumns, int]] = []
        append = pairs.append
        column_cache = self._columns
        for key, root in self._documents.items():
            if wanted is not None and key not in wanted:
                continue
            entry = column_cache.get(key)
            if entry is not None and entry[0] is root:
                cols = entry[1]
            else:
                cols = self.columns_for(key, root)
            rows = rows_fn(cols)
            if rows:
                if len(rows) == 1:
                    append((cols, rows[0]))
                else:
                    pairs.extend((cols, row) for row in rows)
        return pairs

    def xpath_document(
        self,
        key: str,
        query: "str | XPathQuery",
        guard: Optional[ResourceGuard] = None,
    ) -> List[ResultNode]:
        """Run an XPath query over a single document."""
        compiled = query if isinstance(query, XPathQuery) else XPathQuery(query)
        root = self.get_document(key)
        if guard is None and self.use_columnar:
            matcher = compiled.columnar_matcher()
            if matcher is not None:
                return list(matcher(self.columns_for(key, root)))
        return compiled.select(root, guard=guard)

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, {len(self)} documents)"
