"""An in-memory, collection-oriented XML database — the Xindice substitute.

The paper's prototype runs on Apache Xindice: documents live in named
collections and are queried with XPath.  This package reproduces that
substrate in Python: an ordered labelled tree model with preorder/postorder
numbering (:mod:`model`), an XML reader/writer (:mod:`parser`,
:mod:`serializer`), named collections with Xindice's per-document size cap
(:mod:`collection`), tag/value indexes (:mod:`indexes`), an XPath-subset
engine (:mod:`xpath`), and the :class:`Database` facade tying them together.
"""

from .collection import Collection
from .database import Database
from .model import XmlNode, ancestor_of, document_order
from .parser import parse_document, parse_fragment
from .serializer import serialize
from .xpath import XPathQuery, evaluate_xpath

__all__ = [
    "Collection",
    "Database",
    "XPathQuery",
    "XmlNode",
    "ancestor_of",
    "document_order",
    "evaluate_xpath",
    "parse_document",
    "parse_fragment",
    "serialize",
]
