"""Tokenizer for the XPath subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ...errors import XPathSyntaxError

#: Token kinds.
SLASH = "SLASH"  # /
DOUBLE_SLASH = "DOUBLE_SLASH"  # //
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
AT = "AT"
DOT = "DOT"
DOTDOT = "DOTDOT"
COMMA = "COMMA"
PIPE = "PIPE"
STAR = "STAR"
PLUS = "PLUS"
MINUS = "MINUS"
EQ = "EQ"
NEQ = "NEQ"
LT = "LT"
LE = "LE"
GT = "GT"
GE = "GE"
NAME = "NAME"
LITERAL = "LITERAL"
NUMBER = "NUMBER"
COLONCOLON = "COLONCOLON"
EOF = "EOF"

_SINGLE_CHAR = {
    "[": LBRACKET,
    "]": RBRACKET,
    "(": LPAREN,
    ")": RPAREN,
    "@": AT,
    ",": COMMA,
    "|": PIPE,
    "*": STAR,
    "+": PLUS,
    "-": MINUS,
    "=": EQ,
}


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in "_"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_-."


def tokenize(query: str) -> List[Token]:
    """Split an XPath string into tokens.

    Raises :class:`XPathSyntaxError` on characters outside the grammar.
    """
    tokens: List[Token] = []
    index = 0
    length = len(query)
    while index < length:
        char = query[index]
        if char.isspace():
            index += 1
            continue
        if char == "/":
            if index + 1 < length and query[index + 1] == "/":
                tokens.append(Token(DOUBLE_SLASH, "//", index))
                index += 2
            else:
                tokens.append(Token(SLASH, "/", index))
                index += 1
            continue
        if char == "!":
            if index + 1 < length and query[index + 1] == "=":
                tokens.append(Token(NEQ, "!=", index))
                index += 2
                continue
            raise XPathSyntaxError("unexpected '!'", index)
        if char == ":":
            if index + 1 < length and query[index + 1] == ":":
                tokens.append(Token(COLONCOLON, "::", index))
                index += 2
                continue
            raise XPathSyntaxError("unexpected ':' (namespaces unsupported)", index)
        if char == "<":
            if index + 1 < length and query[index + 1] == "=":
                tokens.append(Token(LE, "<=", index))
                index += 2
            else:
                tokens.append(Token(LT, "<", index))
                index += 1
            continue
        if char == ">":
            if index + 1 < length and query[index + 1] == "=":
                tokens.append(Token(GE, ">=", index))
                index += 2
            else:
                tokens.append(Token(GT, ">", index))
                index += 1
            continue
        if char == ".":
            if index + 1 < length and query[index + 1] == ".":
                tokens.append(Token(DOTDOT, "..", index))
                index += 2
                continue
            if index + 1 < length and query[index + 1].isdigit():
                index = _read_number(query, index, tokens)
                continue
            tokens.append(Token(DOT, ".", index))
            index += 1
            continue
        if char in _SINGLE_CHAR:
            tokens.append(Token(_SINGLE_CHAR[char], char, index))
            index += 1
            continue
        if char in "'\"":
            end = query.find(char, index + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", index)
            tokens.append(Token(LITERAL, query[index + 1 : end], index))
            index = end + 1
            continue
        if char.isdigit():
            index = _read_number(query, index, tokens)
            continue
        if _is_name_start(char):
            start = index
            index += 1
            while index < length and _is_name_char(query[index]):
                index += 1
            tokens.append(Token(NAME, query[start:index], start))
            continue
        raise XPathSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token(EOF, "", length))
    return tokens


def _read_number(query: str, index: int, tokens: List[Token]) -> int:
    start = index
    length = len(query)
    while index < length and query[index].isdigit():
        index += 1
    if index < length and query[index] == ".":
        index += 1
        while index < length and query[index].isdigit():
            index += 1
    tokens.append(Token(NUMBER, query[start:index], start))
    return index
