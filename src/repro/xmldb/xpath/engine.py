"""Evaluator for the XPath subset.

Follows the XPath 1.0 data model: an expression yields a node-set, a
string, a number or a boolean.  Node-sets are kept in document order and
may contain element nodes (:class:`~repro.xmldb.model.XmlNode`) plus the
synthetic :class:`AttributeNode` / :class:`TextNode` wrappers produced by
``@name`` and ``text()`` steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ...errors import XPathEvaluationError
from ...guard import ResourceGuard
from ..model import XmlNode
from . import ast
from .parser import parse_xpath


@dataclass(frozen=True, slots=True)
class AttributeNode:
    """A selected attribute: owner element, attribute name and value."""

    owner: XmlNode
    name: str
    value: str

    def string_value(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class TextNode:
    """The character data of an element, selected by ``text()``."""

    owner: XmlNode

    def string_value(self) -> str:
        return self.owner.text


ResultNode = Union[XmlNode, AttributeNode, TextNode]
Value = Union[List[ResultNode], str, float, bool]


class _DocumentPoint:
    """The invisible document node above a root element ('/')."""

    __slots__ = ("root",)

    def __init__(self, root: XmlNode) -> None:
        self.root = root


ContextNode = Union[XmlNode, AttributeNode, TextNode, _DocumentPoint]


def string_value(node: ResultNode) -> str:
    """XPath string-value of any result node."""
    if isinstance(node, XmlNode):
        return node.string_value()
    return node.string_value()


def _order_key(node: ResultNode) -> Tuple[int, int, int]:
    if isinstance(node, XmlNode):
        return (id(node.root()), node.pre, 0)
    owner = node.owner
    return (id(owner.root()), owner.pre, 1)


def _sorted_nodeset(nodes: Sequence[ResultNode]) -> List[ResultNode]:
    unique: Dict[int, ResultNode] = {}
    for node in nodes:
        unique.setdefault(id(node), node)
    return sorted(unique.values(), key=_order_key)


# -- type conversions (XPath 1.0 core) ---------------------------------------


def to_boolean(value: Value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0 and not math.isnan(value)
    if isinstance(value, str):
        return len(value) > 0
    return len(value) > 0  # node-set


def to_string(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value):
            return str(int(value))
        return repr(value)
    if isinstance(value, str):
        return value
    if not value:
        return ""
    return string_value(value[0])


def to_number(value: Value) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    text = to_string(value).strip()
    try:
        return float(text)
    except ValueError:
        return float("nan")


# -- comparison semantics -------------------------------------------------------


def _compare(op: str, left: Value, right: Value) -> bool:
    left_is_set = isinstance(left, list)
    right_is_set = isinstance(right, list)
    if left_is_set and right_is_set:
        left_values = [string_value(node) for node in left]
        right_values = [string_value(node) for node in right]
        return any(
            _compare_atomic(op, lv, rv) for lv in left_values for rv in right_values
        )
    if left_is_set:
        return any(_compare_atomic(op, string_value(node), right) for node in left)
    if right_is_set:
        return any(_compare_atomic(op, left, string_value(node)) for node in right)
    return _compare_atomic(op, left, right)


def _compare_atomic(op: str, left: Union[str, float, bool], right: Union[str, float, bool]) -> bool:
    if op in ("=", "!="):
        if isinstance(left, bool) or isinstance(right, bool):
            result = to_boolean(left) == to_boolean(right)
        elif isinstance(left, float) or isinstance(right, float):
            result = to_number(left) == to_number(right)
        else:
            result = to_string(left) == to_string(right)
        return result if op == "=" else not result
    left_num = to_number(left)
    right_num = to_number(right)
    if math.isnan(left_num) or math.isnan(right_num):
        return False
    if op == "<":
        return left_num < right_num
    if op == "<=":
        return left_num <= right_num
    if op == ">":
        return left_num > right_num
    if op == ">=":
        return left_num >= right_num
    raise XPathEvaluationError(f"unknown comparison operator {op!r}")


# -- the evaluator ---------------------------------------------------------------


@dataclass(slots=True)
class _Context:
    node: ContextNode
    position: int
    size: int


class _Evaluator:
    def __init__(self) -> None:
        #: Optional per-evaluation resource guard; set by XPathQuery before
        #: each evaluation (evaluation is single-threaded and non-reentrant).
        self._guard: Optional[ResourceGuard] = None
        self._functions: Dict[str, Callable[[_Context, List[Value]], Value]] = {
            "position": self._fn_position,
            "last": self._fn_last,
            "count": self._fn_count,
            "not": self._fn_not,
            "true": lambda ctx, args: True,
            "false": lambda ctx, args: False,
            "contains": self._fn_contains,
            "starts-with": self._fn_starts_with,
            "string": self._fn_string,
            "number": self._fn_number,
            "boolean": self._fn_boolean,
            "string-length": self._fn_string_length,
            "normalize-space": self._fn_normalize_space,
            "concat": self._fn_concat,
            "name": self._fn_name,
            "substring": self._fn_substring,
            "substring-before": self._fn_substring_before,
            "substring-after": self._fn_substring_after,
            "translate": self._fn_translate,
            "sum": self._fn_sum,
            "floor": lambda ctx, args: math.floor(to_number(args[0])),
            "ceiling": lambda ctx, args: math.ceil(to_number(args[0])),
            "round": self._fn_round,
        }

    # -- entry ---------------------------------------------------------------

    def evaluate(self, expression: ast.Expr, context: _Context) -> Value:
        if self._guard is not None:
            self._guard.tick(what="xpath evaluation")
        if isinstance(expression, ast.Literal):
            return expression.value
        if isinstance(expression, ast.Number):
            return expression.value
        if isinstance(expression, ast.BinaryOp):
            return self._binary(expression, context)
        if isinstance(expression, ast.UnaryMinus):
            return -to_number(self.evaluate(expression.operand, context))
        if isinstance(expression, ast.FunctionCall):
            return self._call(expression, context)
        if isinstance(expression, ast.LocationPath):
            return self._location_path(expression, context)
        if isinstance(expression, ast.Union_):
            combined: List[ResultNode] = []
            for path in expression.paths:
                value = self.evaluate(path, context)
                if not isinstance(value, list):
                    raise XPathEvaluationError("union operands must be node-sets")
                combined.extend(value)
            return _sorted_nodeset(combined)
        raise XPathEvaluationError(
            f"unsupported expression type {type(expression).__name__}"
        )  # pragma: no cover

    # -- operators -----------------------------------------------------------

    def _binary(self, expression: ast.BinaryOp, context: _Context) -> Value:
        op = expression.op
        if op == "or":
            return to_boolean(self.evaluate(expression.left, context)) or to_boolean(
                self.evaluate(expression.right, context)
            )
        if op == "and":
            return to_boolean(self.evaluate(expression.left, context)) and to_boolean(
                self.evaluate(expression.right, context)
            )
        left = self.evaluate(expression.left, context)
        right = self.evaluate(expression.right, context)
        if op in ("=", "!=", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        left_num = to_number(left)
        right_num = to_number(right)
        if op == "+":
            return left_num + right_num
        if op == "-":
            return left_num - right_num
        if op == "*":
            return left_num * right_num
        if op == "div":
            if right_num == 0:
                return math.inf if left_num > 0 else (-math.inf if left_num < 0 else math.nan)
            return left_num / right_num
        if op == "mod":
            if right_num == 0:
                return math.nan
            return math.fmod(left_num, right_num)
        raise XPathEvaluationError(f"unknown operator {op!r}")

    # -- functions ---------------------------------------------------------------

    def _call(self, expression: ast.FunctionCall, context: _Context) -> Value:
        handler = self._functions.get(expression.name)
        if handler is None:
            raise XPathEvaluationError(f"unknown function {expression.name}()")
        args = [self.evaluate(arg, context) for arg in expression.args]
        return handler(context, args)

    @staticmethod
    def _fn_position(context: _Context, args: List[Value]) -> Value:
        return float(context.position)

    @staticmethod
    def _fn_last(context: _Context, args: List[Value]) -> Value:
        return float(context.size)

    @staticmethod
    def _fn_count(context: _Context, args: List[Value]) -> Value:
        if len(args) != 1 or not isinstance(args[0], list):
            raise XPathEvaluationError("count() takes exactly one node-set")
        return float(len(args[0]))

    @staticmethod
    def _fn_not(context: _Context, args: List[Value]) -> Value:
        if len(args) != 1:
            raise XPathEvaluationError("not() takes exactly one argument")
        return not to_boolean(args[0])

    @staticmethod
    def _fn_contains(context: _Context, args: List[Value]) -> Value:
        if len(args) != 2:
            raise XPathEvaluationError("contains() takes exactly two arguments")
        return to_string(args[1]) in to_string(args[0])

    @staticmethod
    def _fn_starts_with(context: _Context, args: List[Value]) -> Value:
        if len(args) != 2:
            raise XPathEvaluationError("starts-with() takes exactly two arguments")
        return to_string(args[0]).startswith(to_string(args[1]))

    def _fn_string(self, context: _Context, args: List[Value]) -> Value:
        if not args:
            return to_string(self._context_nodeset(context))
        return to_string(args[0])

    def _fn_number(self, context: _Context, args: List[Value]) -> Value:
        if not args:
            return to_number(self._context_nodeset(context))
        return to_number(args[0])

    @staticmethod
    def _fn_boolean(context: _Context, args: List[Value]) -> Value:
        if len(args) != 1:
            raise XPathEvaluationError("boolean() takes exactly one argument")
        return to_boolean(args[0])

    def _fn_string_length(self, context: _Context, args: List[Value]) -> Value:
        text = to_string(args[0]) if args else to_string(self._context_nodeset(context))
        return float(len(text))

    def _fn_normalize_space(self, context: _Context, args: List[Value]) -> Value:
        text = to_string(args[0]) if args else to_string(self._context_nodeset(context))
        return " ".join(text.split())

    @staticmethod
    def _fn_concat(context: _Context, args: List[Value]) -> Value:
        if len(args) < 2:
            raise XPathEvaluationError("concat() takes at least two arguments")
        return "".join(to_string(arg) for arg in args)

    @staticmethod
    def _fn_name(context: _Context, args: List[Value]) -> Value:
        target: Optional[ResultNode] = None
        if args:
            nodeset = args[0]
            if not isinstance(nodeset, list):
                raise XPathEvaluationError("name() argument must be a node-set")
            target = nodeset[0] if nodeset else None
        elif isinstance(context.node, XmlNode):
            target = context.node
        if target is None:
            return ""
        if isinstance(target, XmlNode):
            return target.tag
        if isinstance(target, AttributeNode):
            return target.name
        return ""

    @staticmethod
    def _fn_substring(context: _Context, args: List[Value]) -> Value:
        """XPath 1.0 substring: 1-based start, rounded, NaN-aware."""
        if len(args) not in (2, 3):
            raise XPathEvaluationError("substring() takes two or three arguments")
        text = to_string(args[0])
        start = to_number(args[1])
        if math.isnan(start):
            return ""
        start = round(start)
        if len(args) == 3:
            length = to_number(args[2])
            if math.isnan(length):
                return ""
            end = start + round(length)
        else:
            end = math.inf
        # Positions are 1-based; clamp into Python slicing.
        begin = max(start, 1)
        finish = len(text) + 1 if end == math.inf else max(end, begin)
        return text[int(begin) - 1 : int(min(finish, len(text) + 1)) - 1]

    @staticmethod
    def _fn_substring_before(context: _Context, args: List[Value]) -> Value:
        if len(args) != 2:
            raise XPathEvaluationError("substring-before() takes two arguments")
        text, marker = to_string(args[0]), to_string(args[1])
        index = text.find(marker)
        return text[:index] if index >= 0 else ""

    @staticmethod
    def _fn_substring_after(context: _Context, args: List[Value]) -> Value:
        if len(args) != 2:
            raise XPathEvaluationError("substring-after() takes two arguments")
        text, marker = to_string(args[0]), to_string(args[1])
        index = text.find(marker)
        return text[index + len(marker) :] if index >= 0 else ""

    @staticmethod
    def _fn_translate(context: _Context, args: List[Value]) -> Value:
        if len(args) != 3:
            raise XPathEvaluationError("translate() takes three arguments")
        text = to_string(args[0])
        source = to_string(args[1])
        target = to_string(args[2])
        table = {}
        for index, char in enumerate(source):
            if char in table:
                continue  # first occurrence wins, per the spec
            table[char] = target[index] if index < len(target) else None
        out = []
        for char in text:
            if char in table:
                replacement = table[char]
                if replacement is not None:
                    out.append(replacement)
            else:
                out.append(char)
        return "".join(out)

    @staticmethod
    def _fn_sum(context: _Context, args: List[Value]) -> Value:
        if len(args) != 1 or not isinstance(args[0], list):
            raise XPathEvaluationError("sum() takes exactly one node-set")
        return float(sum(to_number(string_value(node)) for node in args[0]))

    @staticmethod
    def _fn_round(context: _Context, args: List[Value]) -> Value:
        if len(args) != 1:
            raise XPathEvaluationError("round() takes exactly one argument")
        value = to_number(args[0])
        if math.isnan(value) or math.isinf(value):
            return value
        return float(math.floor(value + 0.5))  # XPath rounds .5 towards +inf

    def _context_nodeset(self, context: _Context) -> List[ResultNode]:
        node = context.node
        if isinstance(node, _DocumentPoint):
            return [node.root]
        return [node]

    # -- location paths -------------------------------------------------------------

    def _location_path(self, path: ast.LocationPath, context: _Context) -> Value:
        if path.absolute:
            root = self._document_of(context.node)
            current: List[ContextNode] = [root]
        else:
            current = [context.node]
        if path.absolute and not path.steps:
            return [root.root]

        for step, deep in zip(path.steps, path.descendant_joins):
            next_nodes: List[ResultNode] = []
            if deep:
                expanded: List[ContextNode] = []
                for node in current:
                    expanded.extend(self._descendant_or_self(node))
                sources: List[ContextNode] = expanded
            else:
                sources = current
            for source in sources:
                next_nodes.extend(self._apply_step(step, source))
            current = _sorted_nodeset(next_nodes)  # type: ignore[assignment]
        return [node for node in current if not isinstance(node, _DocumentPoint)]

    @staticmethod
    def _document_of(node: ContextNode) -> _DocumentPoint:
        if isinstance(node, _DocumentPoint):
            return node
        owner = node if isinstance(node, XmlNode) else node.owner
        return _DocumentPoint(owner.root())

    @staticmethod
    def _descendant_or_self(node: ContextNode) -> List[ContextNode]:
        if isinstance(node, _DocumentPoint):
            return [node] + list(node.root.iter())
        if isinstance(node, XmlNode):
            return list(node.iter())
        return [node]

    def _apply_step(self, step: ast.Step, source: ContextNode) -> List[ResultNode]:
        candidates = self._axis_candidates(step.axis, step.test, source)
        if self._guard is not None:
            # Predicate-free steps never re-enter evaluate(), so account
            # for the axis traversal here (one step per candidate node).
            self._guard.tick(1 + len(candidates), what="xpath evaluation")
        for predicate in step.predicates:
            filtered: List[ResultNode] = []
            size = len(candidates)
            for position, candidate in enumerate(candidates, start=1):
                value = self.evaluate(
                    predicate, _Context(candidate, position, size)
                )
                if isinstance(value, float):
                    keep = position == int(value)
                else:
                    keep = to_boolean(value)
                if keep:
                    filtered.append(candidate)
            candidates = filtered
        return candidates

    def _axis_candidates(
        self, axis: str, test: ast.NodeTest, source: ContextNode
    ) -> List[ResultNode]:
        if axis == ast.ATTRIBUTE:
            if not isinstance(source, XmlNode):
                return []
            if isinstance(test, ast.NameTest):
                if test.name == "*":
                    return [
                        AttributeNode(source, name, value)
                        for name, value in source.attributes.items()
                    ]
                value = source.attributes.get(test.name)
                if value is None:
                    return []
                return [AttributeNode(source, test.name, value)]
            return []
        if axis == ast.SELF:
            if isinstance(source, _DocumentPoint):
                return []
            return [source] if self._matches(test, source) else []
        if axis == ast.PARENT:
            if isinstance(source, XmlNode) and source.parent is not None:
                return [source.parent]
            if isinstance(source, (AttributeNode, TextNode)):
                return [source.owner]
            return []
        if axis == ast.CHILD:
            if isinstance(test, ast.TextTest):
                # Our model stores character data on the element itself, so
                # the text children of `source` are its own text.
                if isinstance(source, XmlNode) and source.text:
                    return [TextNode(source)]
                return []
            return [
                child
                for child in self._children_of(source)
                if self._matches(test, child)
            ]
        if axis in (ast.DESCENDANT, ast.DESCENDANT_OR_SELF):
            pool: List[ResultNode] = []
            if isinstance(source, _DocumentPoint):
                pool = list(source.root.iter())
            elif isinstance(source, XmlNode):
                pool = (
                    list(source.iter())
                    if axis == ast.DESCENDANT_OR_SELF
                    else list(source.descendants())
                )
            if isinstance(test, ast.TextTest):
                return [TextNode(node) for node in pool if node.text]
            return [node for node in pool if self._matches(test, node)]
        if axis in (ast.ANCESTOR, ast.ANCESTOR_OR_SELF):
            # Reverse axis: proximity order (nearest first) for position().
            chain: List[XmlNode] = []
            if isinstance(source, XmlNode):
                if axis == ast.ANCESTOR_OR_SELF:
                    chain.append(source)
                chain.extend(source.ancestors())
            elif isinstance(source, (AttributeNode, TextNode)):
                chain.append(source.owner)
                chain.extend(source.owner.ancestors())
            return [node for node in chain if self._matches(test, node)]
        if axis in (ast.FOLLOWING_SIBLING, ast.PRECEDING_SIBLING):
            if not isinstance(source, XmlNode) or source.parent is None:
                return []
            siblings = source.parent.children
            index = siblings.index(source)
            if axis == ast.FOLLOWING_SIBLING:
                pool = siblings[index + 1 :]
            else:
                # Reverse axis: nearest sibling first.
                pool = list(reversed(siblings[:index]))
            return [node for node in pool if self._matches(test, node)]
        raise XPathEvaluationError(f"unsupported axis {axis!r}")  # pragma: no cover

    @staticmethod
    def _children_of(source: ContextNode) -> List[XmlNode]:
        if isinstance(source, _DocumentPoint):
            return [source.root]
        if isinstance(source, XmlNode):
            return source.children
        return []

    @staticmethod
    def _matches(test: ast.NodeTest, node: ResultNode) -> bool:
        if isinstance(test, ast.AnyNodeTest):
            return True
        if isinstance(test, ast.TextTest):
            return isinstance(node, TextNode)
        if not isinstance(node, XmlNode):
            return False
        return test.name == "*" or test.name == node.tag


#: Tri-state marker for XPathQuery's lazily compiled columnar matcher.
_COLUMNAR_UNTRIED = object()


class XPathQuery:
    """A parsed XPath expression, reusable across documents.

    >>> query = XPathQuery("//inproceedings[year='1999']/title")
    >>> titles = query.select(document_root)  # doctest: +SKIP
    """

    def __init__(self, query: str) -> None:
        self.source = query
        self.expression = parse_xpath(query)
        self._evaluator = _Evaluator()
        self._columnar: object = _COLUMNAR_UNTRIED
        self._columnar_rows: object = _COLUMNAR_UNTRIED

    def columnar_matcher(self):
        """A compiled columnar scan for this query, or None.

        Compiles at most once (the result, including "unsupported", is
        cached on the query).  The matcher takes a
        :class:`~repro.xmldb.columnar.DocumentColumns` and returns the
        same node list :meth:`select` would, but without walking the AST
        per node — see :mod:`repro.xmldb.columnar` for the supported
        subset.  Callers must fall back to :meth:`select` when this
        returns None, and must not use the matcher under a resource
        guard (it does not tick).
        """
        if self._columnar is _COLUMNAR_UNTRIED:
            from ..columnar import compile_columnar  # deferred: avoids a cycle

            self._columnar = compile_columnar(self.expression)
        return self._columnar

    def columnar_rows(self):
        """A compiled columnar scan returning matching *rows*, or None.

        Same subset, caching and guard caveats as
        :meth:`columnar_matcher`, but the compiled function maps a
        :class:`~repro.xmldb.columnar.DocumentColumns` to the matching
        row indexes — the executor's batched verification path consumes
        ``(columns, row)`` pairs directly and never materialises the
        intermediate node list.
        """
        if self._columnar_rows is _COLUMNAR_UNTRIED:
            from ..columnar import compile_columnar_rows  # deferred: avoids a cycle

            self._columnar_rows = compile_columnar_rows(self.expression)
        return self._columnar_rows

    def evaluate(
        self, root: XmlNode, guard: Optional[ResourceGuard] = None
    ) -> Value:
        """Evaluate against a document root; returns any XPath value.

        With ``guard``, every evaluation step ticks the guard, so a
        pathological query is interrupted mid-flight by
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.ResourceExhaustedError`.
        """
        context = _Context(_DocumentPoint(root), 1, 1)
        self._evaluator._guard = guard
        try:
            return self._evaluator.evaluate(self.expression, context)
        finally:
            self._evaluator._guard = None

    def select(
        self, root: XmlNode, guard: Optional[ResourceGuard] = None
    ) -> List[ResultNode]:
        """Evaluate and require a node-set result."""
        value = self.evaluate(root, guard=guard)
        if not isinstance(value, list):
            raise XPathEvaluationError(
                f"query {self.source!r} returned {type(value).__name__}, "
                f"expected a node-set"
            )
        return value

    def select_elements(self, root: XmlNode) -> List[XmlNode]:
        """Like :meth:`select` but keeps only element nodes."""
        return [node for node in self.select(root) if isinstance(node, XmlNode)]

    def __repr__(self) -> str:
        return f"XPathQuery({self.source!r})"


def evaluate_xpath(root: XmlNode, query: str) -> Value:
    """One-shot convenience: parse and evaluate ``query`` on ``root``."""
    return XPathQuery(query).evaluate(root)
