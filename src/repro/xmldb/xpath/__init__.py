"""An XPath 1.0 subset engine for the XML database.

Xindice's query surface is XPath; the TOSS query executor compiles pattern
trees into XPath strings and runs them here.  The subset covers what the
paper's workload needs (and a good deal more): absolute/relative location
paths, ``child``/``descendant-or-self``/``self``/``parent``/``attribute``
axes via their abbreviations, name and ``text()``/``node()`` tests,
predicates with full boolean/relational expressions, the core function
library (``contains``, ``starts-with``, ``normalize-space``, ``name``,
``string``, ``number``, ``count``, ``position``, ``last``, ``not``,
``true``, ``false``, ``concat``, ``string-length``), union ``|`` and
numeric arithmetic.

The public helpers are :func:`evaluate_xpath` (one-shot) and
:class:`XPathQuery` (parse once, run many times).
"""

from .engine import XPathQuery, evaluate_xpath
from .parser import parse_xpath

__all__ = ["XPathQuery", "evaluate_xpath", "parse_xpath"]
