"""Recursive-descent parser for the XPath subset.

Grammar (precedence low to high), a faithful slice of XPath 1.0:

    Expr        := OrExpr
    OrExpr      := AndExpr ('or' AndExpr)*
    AndExpr     := EqExpr ('and' EqExpr)*
    EqExpr      := RelExpr (('='|'!=') RelExpr)*
    RelExpr     := AddExpr (('<'|'<='|'>'|'>=') AddExpr)*
    AddExpr     := MulExpr (('+'|'-') MulExpr)*
    MulExpr     := UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
    UnaryExpr   := '-' UnaryExpr | UnionExpr
    UnionExpr   := PathExpr ('|' PathExpr)*
    PathExpr    := Literal | Number | FunctionCall | LocationPath | '(' Expr ')'
    LocationPath:= ('/' | '//')? Step (('/' | '//') Step)*
    Step        := '.' | '..' | '@'? NodeTest Predicate*
    NodeTest    := Name | '*' | 'text' '(' ')' | 'node' '(' ')'
    Predicate   := '[' Expr ']'
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ...errors import XPathSyntaxError
from . import ast
from . import lexer
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        self._index += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.current.kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise XPathSyntaxError(
                f"expected {kind}, found {self.current.kind} ({self.current.value!r})",
                self.current.position,
            )
        return self.advance()

    def peek_is_name(self, value: str) -> bool:
        return self.current.kind == lexer.NAME and self.current.value == value

    # -- expression levels -------------------------------------------------------

    def parse(self) -> ast.Expr:
        expression = self.parse_expr()
        self.expect(lexer.EOF)
        return expression

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def _parse_left_assoc(self, parse_operand, operators) -> ast.Expr:
        left = parse_operand()
        while True:
            matched = None
            for op_name, token_kind, keyword in operators:
                if token_kind is not None and self.current.kind == token_kind:
                    matched = op_name
                    self.advance()
                    break
                if keyword is not None and self.peek_is_name(keyword) and self._operator_position():
                    matched = op_name
                    self.advance()
                    break
            if matched is None:
                return left
            right = parse_operand()
            left = ast.BinaryOp(matched, left, right)

    def _operator_position(self) -> bool:
        """A NAME like 'and' is an operator only when an operand precedes.

        Since _parse_left_assoc calls this after parsing a left operand,
        the answer is always yes; kept as a named hook for clarity.
        """
        return True

    def parse_or(self) -> ast.Expr:
        return self._parse_left_assoc(self.parse_and, [("or", None, "or")])

    def parse_and(self) -> ast.Expr:
        return self._parse_left_assoc(self.parse_equality, [("and", None, "and")])

    def parse_equality(self) -> ast.Expr:
        return self._parse_left_assoc(
            self.parse_relational,
            [("=", lexer.EQ, None), ("!=", lexer.NEQ, None)],
        )

    def parse_relational(self) -> ast.Expr:
        return self._parse_left_assoc(
            self.parse_additive,
            [
                ("<=", lexer.LE, None),
                ("<", lexer.LT, None),
                (">=", lexer.GE, None),
                (">", lexer.GT, None),
            ],
        )

    def parse_additive(self) -> ast.Expr:
        return self._parse_left_assoc(
            self.parse_multiplicative,
            [("+", lexer.PLUS, None), ("-", lexer.MINUS, None)],
        )

    def parse_multiplicative(self) -> ast.Expr:
        return self._parse_left_assoc(
            self.parse_unary,
            [("*", lexer.STAR, None), ("div", None, "div"), ("mod", None, "mod")],
        )

    def parse_unary(self) -> ast.Expr:
        if self.accept(lexer.MINUS):
            return ast.UnaryMinus(self.parse_unary())
        return self.parse_union()

    def parse_union(self) -> ast.Expr:
        first = self.parse_path_expr()
        if self.current.kind != lexer.PIPE:
            return first
        paths = [first]
        while self.accept(lexer.PIPE):
            paths.append(self.parse_path_expr())
        return ast.Union_(tuple(paths))

    # -- paths and primaries ------------------------------------------------------

    def parse_path_expr(self) -> ast.Expr:
        token = self.current
        if token.kind == lexer.LITERAL:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == lexer.NUMBER:
            self.advance()
            return ast.Number(float(token.value))
        if token.kind == lexer.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(lexer.RPAREN)
            return inner
        if token.kind == lexer.NAME and self._is_function_call():
            return self.parse_function_call()
        return self.parse_location_path()

    def _is_function_call(self) -> bool:
        nxt = self._tokens[self._index + 1]
        if nxt.kind != lexer.LPAREN:
            return False
        # text() and node() are node tests, not functions, when a step is
        # expected; they are only functions... never, in this subset.
        return self.current.value not in ("text", "node")

    def parse_function_call(self) -> ast.FunctionCall:
        name = self.expect(lexer.NAME).value
        self.expect(lexer.LPAREN)
        args: List[ast.Expr] = []
        if self.current.kind != lexer.RPAREN:
            args.append(self.parse_expr())
            while self.accept(lexer.COMMA):
                args.append(self.parse_expr())
        self.expect(lexer.RPAREN)
        return ast.FunctionCall(name, tuple(args))

    def parse_location_path(self) -> ast.LocationPath:
        absolute = False
        steps: List[ast.Step] = []
        joins: List[bool] = []

        if self.current.kind == lexer.SLASH:
            self.advance()
            absolute = True
            if not self._step_starts():
                # bare "/" selects the root
                return ast.LocationPath(True, (), ())
            joins.append(False)
        elif self.current.kind == lexer.DOUBLE_SLASH:
            self.advance()
            absolute = True
            joins.append(True)
        else:
            if not self._step_starts():
                raise XPathSyntaxError(
                    f"expected a location step, found {self.current.value!r}",
                    self.current.position,
                )
            joins.append(False)

        steps.append(self.parse_step())
        while self.current.kind in (lexer.SLASH, lexer.DOUBLE_SLASH):
            joins.append(self.advance().kind == lexer.DOUBLE_SLASH)
            steps.append(self.parse_step())
        return ast.LocationPath(absolute, tuple(steps), tuple(joins))

    def _step_starts(self) -> bool:
        return self.current.kind in (
            lexer.NAME,
            lexer.STAR,
            lexer.AT,
            lexer.DOT,
            lexer.DOTDOT,
        )

    def parse_step(self) -> ast.Step:
        if self.accept(lexer.DOT):
            return ast.Step(ast.SELF, ast.AnyNodeTest(), self._parse_predicates())
        if self.accept(lexer.DOTDOT):
            return ast.Step(ast.PARENT, ast.AnyNodeTest(), self._parse_predicates())
        axis = ast.CHILD
        if self.accept(lexer.AT):
            axis = ast.ATTRIBUTE
        elif (
            self.current.kind == lexer.NAME
            and self._tokens[self._index + 1].kind == lexer.COLONCOLON
        ):
            axis_token = self.advance()
            self.advance()  # '::'
            if axis_token.value not in ast.NAMED_AXES:
                raise XPathSyntaxError(
                    f"unknown axis {axis_token.value!r}", axis_token.position
                )
            axis = axis_token.value
        test = self._parse_node_test()
        return ast.Step(axis, test, self._parse_predicates())

    def _parse_node_test(self) -> ast.NodeTest:
        if self.accept(lexer.STAR):
            return ast.NameTest("*")
        token = self.expect(lexer.NAME)
        if token.value in ("text", "node") and self.current.kind == lexer.LPAREN:
            self.advance()
            self.expect(lexer.RPAREN)
            return ast.TextTest() if token.value == "text" else ast.AnyNodeTest()
        return ast.NameTest(token.value)

    def _parse_predicates(self) -> Tuple[ast.Expr, ...]:
        predicates: List[ast.Expr] = []
        while self.accept(lexer.LBRACKET):
            predicates.append(self.parse_expr())
            self.expect(lexer.RBRACKET)
        return tuple(predicates)


def parse_xpath(query: str) -> ast.Expr:
    """Parse an XPath string into an AST.

    >>> str(parse_xpath("//inproceedings[author='J. Ullman']/title"))
    "//inproceedings[child::author = 'J. Ullman']/title" # doctest: +SKIP
    """
    if not query or not query.strip():
        raise XPathSyntaxError("empty XPath expression", 0)
    return _Parser(tokenize(query)).parse()
