"""Abstract syntax for the XPath subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

# -- axes -------------------------------------------------------------------

CHILD = "child"
DESCENDANT = "descendant"
DESCENDANT_OR_SELF = "descendant-or-self"
ANCESTOR = "ancestor"
ANCESTOR_OR_SELF = "ancestor-or-self"
FOLLOWING_SIBLING = "following-sibling"
PRECEDING_SIBLING = "preceding-sibling"
SELF = "self"
PARENT = "parent"
ATTRIBUTE = "attribute"

#: Axes nameable with the explicit ``axis::`` syntax.
NAMED_AXES = frozenset(
    {
        CHILD,
        DESCENDANT,
        DESCENDANT_OR_SELF,
        ANCESTOR,
        ANCESTOR_OR_SELF,
        FOLLOWING_SIBLING,
        PRECEDING_SIBLING,
        SELF,
        PARENT,
        ATTRIBUTE,
    }
)

# -- node tests ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class NameTest:
    """Match elements (or attributes) by name; ``*`` matches all."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class TextTest:
    """``text()`` — select the node's character data."""

    def __str__(self) -> str:
        return "text()"


@dataclass(frozen=True, slots=True)
class AnyNodeTest:
    """``node()`` — match any node."""

    def __str__(self) -> str:
        return "node()"


NodeTest = Union[NameTest, TextTest, AnyNodeTest]


# -- expressions ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Literal:
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True, slots=True)
class Number:
    value: float

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True, slots=True)
class BinaryOp:
    """``or``, ``and``, comparisons, and arithmetic."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class UnaryMinus:
    operand: "Expr"

    def __str__(self) -> str:
        return f"-({self.operand})"


@dataclass(frozen=True, slots=True)
class FunctionCall:
    name: str
    args: Tuple["Expr", ...]

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: axis, node test, zero or more predicates."""

    axis: str
    test: NodeTest
    predicates: Tuple["Expr", ...] = ()

    def __str__(self) -> str:
        prefix = "@" if self.axis == ATTRIBUTE else ""
        if self.axis == SELF and isinstance(self.test, AnyNodeTest):
            body = "."
        elif self.axis == PARENT and isinstance(self.test, AnyNodeTest):
            body = ".."
        else:
            body = f"{prefix}{self.test}"
        return body + "".join(f"[{predicate}]" for predicate in self.predicates)


@dataclass(frozen=True, slots=True)
class LocationPath:
    """A sequence of steps; ``descendant_joins[i]`` marks a ``//`` before step i."""

    absolute: bool
    steps: Tuple[Step, ...]
    descendant_joins: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.steps) != len(self.descendant_joins):
            raise ValueError("steps and descendant_joins must align")

    def __str__(self) -> str:
        parts: List[str] = []
        for index, (step, deep) in enumerate(zip(self.steps, self.descendant_joins)):
            if index == 0:
                if self.absolute:
                    parts.append("//" if deep else "/")
                elif deep:
                    parts.append("//")
            else:
                parts.append("//" if deep else "/")
            parts.append(str(step))
        return "".join(parts) or ("/" if self.absolute else ".")


@dataclass(frozen=True, slots=True)
class Union_:
    """``expr | expr`` — node-set union in document order."""

    paths: Tuple["Expr", ...]

    def __str__(self) -> str:
        return " | ".join(str(path) for path in self.paths)


Expr = Union[Literal, Number, BinaryOp, UnaryMinus, FunctionCall, LocationPath, Union_]
