""":class:`XmlNode` trees -> XML text."""

from __future__ import annotations

from typing import List

from .model import XmlNode

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}
_ATTR_ESCAPES = dict(_ESCAPES)
_ATTR_ESCAPES['"'] = "&quot;"


def escape_text(text: str) -> str:
    """Escape character data."""
    for raw, quoted in _ESCAPES.items():
        text = text.replace(raw, quoted)
    return text


def escape_attribute(text: str) -> str:
    """Escape an attribute value for double-quoted output."""
    for raw, quoted in _ATTR_ESCAPES.items():
        text = text.replace(raw, quoted)
    return text


def serialize(node: XmlNode, indent: int = 0, _depth: int = 0) -> str:
    """Render a tree as XML text.

    ``indent > 0`` pretty-prints with that many spaces per level;
    ``indent == 0`` produces compact single-line output whose byte size is
    what the collection size caps measure.
    """
    parts: List[str] = []
    _serialize_into(node, parts, indent, _depth)
    return "".join(parts)


def _serialize_into(node: XmlNode, parts: List[str], indent: int, depth: int) -> None:
    pad = " " * (indent * depth) if indent else ""
    newline = "\n" if indent else ""
    attributes = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in node.attributes.items()
    )
    if not node.children and not node.text:
        parts.append(f"{pad}<{node.tag}{attributes}/>{newline}")
        return
    parts.append(f"{pad}<{node.tag}{attributes}>")
    if node.text:
        parts.append(escape_text(node.text))
    if node.children:
        parts.append(newline)
        for child in node.children:
            _serialize_into(child, parts, indent, depth + 1)
        parts.append(pad)
    parts.append(f"</{node.tag}>{newline}")


def document_bytes(node: XmlNode) -> int:
    """Byte size of the compact serialisation (for Xindice-style caps)."""
    return len(serialize(node).encode("utf-8"))
