"""The database facade: named collections + query statistics.

Plays the role Apache Xindice plays in the paper's architecture (Figure 8):
the Query Executor hands it XPath strings and gets node-sets back.  The
:class:`QueryStatistics` counter records how many queries ran and how long
they took, which the scalability experiments report (the paper breaks its
timings into pattern-tree rewrite time, Xindice execution time and result
re-parse time — the middle term is measured here).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import CollectionError
from ..guard import ResourceGuard
from ..lru import LruCache
from ..obs.metrics import REGISTRY as METRICS
from .collection import XINDICE_DOCUMENT_LIMIT, Collection
from .xpath import XPathQuery
from .xpath.engine import ResultNode

#: Default size of the compiled-XPath LRU cache.
DEFAULT_QUERY_CACHE_SIZE = 256


@dataclass
class QueryStatistics:
    """Aggregate query counters for one database."""

    queries_run: int = 0
    total_seconds: float = 0.0
    results_returned: int = 0
    #: Compiled-XPath cache counters (see :meth:`Database.compile`).
    cache_hits: int = 0
    cache_misses: int = 0

    def record(self, seconds: float, result_count: int) -> None:
        self.queries_run += 1
        self.total_seconds += seconds
        self.results_returned += result_count

    def reset(self) -> None:
        self.queries_run = 0
        self.total_seconds = 0.0
        self.results_returned = 0
        self.cache_hits = 0
        self.cache_misses = 0


class Database:
    """A set of named collections with an XPath query service."""

    def __init__(
        self,
        max_document_bytes: int = XINDICE_DOCUMENT_LIMIT,
        query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE,
    ) -> None:
        self.max_document_bytes = max_document_bytes
        self.query_cache_size = query_cache_size
        self._collections: Dict[str, Collection] = {}
        self.statistics = QueryStatistics()
        self._query_cache = LruCache(
            query_cache_size, metric_prefix="xpath.query_cache"
        )
        #: Set by :func:`repro.xmldb.storage.load_database` when the
        #: database was salvaged from a damaged directory.
        self.recovery_report = None

    # -- collection management --------------------------------------------------

    def create_collection(self, name: str) -> Collection:
        if name in self._collections:
            raise CollectionError(f"collection {name!r} already exists")
        collection = Collection(name, self.max_document_bytes)
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionError(f"no collection named {name!r}") from None

    def get_or_create_collection(self, name: str) -> Collection:
        if name in self._collections:
            return self._collections[name]
        return self.create_collection(name)

    def drop_collection(self, name: str) -> None:
        if name not in self._collections:
            raise CollectionError(f"no collection named {name!r}")
        del self._collections[name]

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def collections(self) -> Iterator[Collection]:
        return iter(self._collections.values())

    def collection_names(self) -> List[str]:
        return list(self._collections)

    # -- query service ------------------------------------------------------------

    def compile(self, query: str) -> XPathQuery:
        """Parse an XPath query, caching compiled forms in a bounded LRU.

        The cache is a thread-safe :class:`~repro.lru.LruCache` holding
        at most :attr:`query_cache_size` entries (the least recently
        used is evicted first); it emits ``xpath.query_cache.hits`` /
        ``.misses`` / ``.evictions`` through :mod:`repro.obs.metrics`
        and mirrors hit/miss counts onto :attr:`statistics`.  A size of
        0 disables caching.
        """
        compiled = self._query_cache.get(query)
        if compiled is not None:
            self.statistics.cache_hits += 1
            return compiled
        self.statistics.cache_misses += 1
        compiled = XPathQuery(query)
        self._query_cache.put(query, compiled)
        return compiled

    def generation_signature(self) -> Tuple[Tuple[str, int], ...]:
        """A comparable fingerprint of the database's document state.

        ``((collection name, generation), ...)`` sorted by name: equal
        signatures mean no collection was created, dropped or mutated in
        between.  The serving layer uses this to invalidate worker-pool
        snapshots (see :class:`~repro.serving.snapshot.SystemSnapshot`).
        """
        return tuple(
            (name, self._collections[name].generation)
            for name in sorted(self._collections)
        )

    def xpath(
        self,
        collection_name: str,
        query: str,
        document_key: Optional[str] = None,
        guard: Optional[ResourceGuard] = None,
        document_keys: Optional[Iterable[str]] = None,
    ) -> List[ResultNode]:
        """Run an XPath query against a collection (or one document of it).

        ``document_keys`` restricts a collection-wide query to a subset
        of documents, preserving collection order — the executor's
        index-driven pruning path uses this.

        Timing and result counts are accumulated in :attr:`statistics`.
        With a :class:`~repro.guard.ResourceGuard`, evaluation honours its
        deadline/step budget and the result-count cap.
        """
        collection = self.get_collection(collection_name)
        compiled = self.compile(query)
        started = time.perf_counter()
        if document_key is None:
            results = collection.xpath(
                compiled, guard=guard, document_keys=document_keys
            )
        else:
            results = collection.xpath_document(document_key, compiled, guard=guard)
        seconds = time.perf_counter() - started
        self.statistics.record(seconds, len(results))
        METRICS.counter("xpath.queries").inc()
        METRICS.counter("xpath.results").inc(len(results))
        METRICS.histogram("xpath.seconds").observe(seconds)
        if guard is not None:
            guard.check_results(len(results), f"xpath query {query!r}")
        return results

    def xpath_rows(
        self,
        collection_name: str,
        query: str,
        document_keys: Optional[Iterable[str]] = None,
    ):
        """Columnar ``(columns, row)`` pairs for an unguarded query, or None.

        The batched-verification fast path: when the compiled query is
        inside the columnar subset (and the collection has columnar
        scans enabled), the matching candidates come back as
        ``(DocumentColumns, row)`` pairs covering the exact node
        sequence :meth:`xpath` would return.  None means the caller must
        fall back to :meth:`xpath`.  Statistics and metrics are recorded
        the same way as a node-returning query.
        """
        collection = self.get_collection(collection_name)
        compiled = self.compile(query)
        started = time.perf_counter()
        pairs = collection.xpath_rows(compiled, document_keys=document_keys)
        if pairs is None:
            return None
        seconds = time.perf_counter() - started
        self.statistics.record(seconds, len(pairs))
        METRICS.counter("xpath.queries").inc()
        METRICS.counter("xpath.results").inc(len(pairs))
        METRICS.histogram("xpath.seconds").observe(seconds)
        return pairs

    def total_bytes(self) -> int:
        return sum(c.total_bytes() for c in self._collections.values())

    def __repr__(self) -> str:
        inventory = ", ".join(
            f"{name}({len(collection)})"
            for name, collection in self._collections.items()
        )
        return f"Database({inventory})"
