"""The database facade: named collections + query statistics.

Plays the role Apache Xindice plays in the paper's architecture (Figure 8):
the Query Executor hands it XPath strings and gets node-sets back.  The
:class:`QueryStatistics` counter records how many queries ran and how long
they took, which the scalability experiments report (the paper breaks its
timings into pattern-tree rewrite time, Xindice execution time and result
re-parse time — the middle term is measured here).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..errors import CollectionError
from .collection import XINDICE_DOCUMENT_LIMIT, Collection
from .xpath import XPathQuery
from .xpath.engine import ResultNode


@dataclass
class QueryStatistics:
    """Aggregate query counters for one database."""

    queries_run: int = 0
    total_seconds: float = 0.0
    results_returned: int = 0

    def record(self, seconds: float, result_count: int) -> None:
        self.queries_run += 1
        self.total_seconds += seconds
        self.results_returned += result_count

    def reset(self) -> None:
        self.queries_run = 0
        self.total_seconds = 0.0
        self.results_returned = 0


class Database:
    """A set of named collections with an XPath query service."""

    def __init__(self, max_document_bytes: int = XINDICE_DOCUMENT_LIMIT) -> None:
        self.max_document_bytes = max_document_bytes
        self._collections: Dict[str, Collection] = {}
        self.statistics = QueryStatistics()
        self._query_cache: Dict[str, XPathQuery] = {}

    # -- collection management --------------------------------------------------

    def create_collection(self, name: str) -> Collection:
        if name in self._collections:
            raise CollectionError(f"collection {name!r} already exists")
        collection = Collection(name, self.max_document_bytes)
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionError(f"no collection named {name!r}") from None

    def get_or_create_collection(self, name: str) -> Collection:
        if name in self._collections:
            return self._collections[name]
        return self.create_collection(name)

    def drop_collection(self, name: str) -> None:
        if name not in self._collections:
            raise CollectionError(f"no collection named {name!r}")
        del self._collections[name]

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def collections(self) -> Iterator[Collection]:
        return iter(self._collections.values())

    def collection_names(self) -> List[str]:
        return list(self._collections)

    # -- query service ------------------------------------------------------------

    def compile(self, query: str) -> XPathQuery:
        """Parse an XPath query, caching compiled forms."""
        compiled = self._query_cache.get(query)
        if compiled is None:
            compiled = XPathQuery(query)
            self._query_cache[query] = compiled
        return compiled

    def xpath(
        self, collection_name: str, query: str, document_key: Optional[str] = None
    ) -> List[ResultNode]:
        """Run an XPath query against a collection (or one document of it).

        Timing and result counts are accumulated in :attr:`statistics`.
        """
        collection = self.get_collection(collection_name)
        compiled = self.compile(query)
        started = time.perf_counter()
        if document_key is None:
            results = collection.xpath(compiled)
        else:
            results = collection.xpath_document(document_key, compiled)
        self.statistics.record(time.perf_counter() - started, len(results))
        return results

    def total_bytes(self) -> int:
        return sum(c.total_bytes() for c in self._collections.values())

    def __repr__(self) -> str:
        inventory = ", ".join(
            f"{name}({len(collection)})"
            for name, collection in self._collections.items()
        )
        return f"Database({inventory})"
