"""Tag and value indexes over collections.

Xindice supports element/value indexes to accelerate XPath; the TAX
embedding engine in this reproduction uses the same idea to prune its
candidate sets: ``TagIndex`` maps an element name to every node carrying
it, ``ValueIndex`` maps ``(tag, content)`` pairs to nodes.  Both are
per-document and composed by :class:`CollectionIndex` at collection level.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Set, Tuple

from .model import XmlNode


class TagIndex:
    """tag -> nodes (document order) for one tree."""

    def __init__(self, root: XmlNode) -> None:
        self._by_tag: Dict[str, List[XmlNode]] = defaultdict(list)
        for node in root.iter():
            self._by_tag[node.tag].append(node)

    def nodes(self, tag: str) -> List[XmlNode]:
        return self._by_tag.get(tag, [])

    def tags(self) -> Iterable[str]:
        return self._by_tag.keys()

    def count(self, tag: str) -> int:
        return len(self._by_tag.get(tag, ()))


class ValueIndex:
    """(tag, content) -> nodes for one tree; also content -> nodes."""

    def __init__(self, root: XmlNode) -> None:
        self._by_pair: Dict[Tuple[str, str], List[XmlNode]] = defaultdict(list)
        self._by_content: Dict[str, List[XmlNode]] = defaultdict(list)
        for node in root.iter():
            if node.text:
                self._by_pair[(node.tag, node.text)].append(node)
                self._by_content[node.text].append(node)

    def nodes(self, tag: str, content: str) -> List[XmlNode]:
        return self._by_pair.get((tag, content), [])

    def nodes_with_content(self, content: str) -> List[XmlNode]:
        return self._by_content.get(content, [])

    def contents(self) -> Iterable[str]:
        return self._by_content.keys()


class DocumentIndex:
    """Both indexes for one document root."""

    def __init__(self, root: XmlNode) -> None:
        self.root = root
        self.tags = TagIndex(root)
        self.values = ValueIndex(root)


class CollectionIndex:
    """Lazy per-document indexes for a whole collection."""

    def __init__(self) -> None:
        self._documents: Dict[int, DocumentIndex] = {}

    def index_for(self, root: XmlNode) -> DocumentIndex:
        index = self._documents.get(root.object_id)
        if index is None or index.root is not root:
            index = DocumentIndex(root)
            self._documents[root.object_id] = index
        return index

    def invalidate(self, root: XmlNode) -> None:
        self._documents.pop(root.object_id, None)

    def clear(self) -> None:
        self._documents.clear()

    def distinct_tags(self, roots: Iterable[XmlNode]) -> Set[str]:
        """Union of element names across the given documents."""
        tags: Set[str] = set()
        for root in roots:
            tags.update(self.index_for(root).tags.tags())
        return tags

    def distinct_contents(self, roots: Iterable[XmlNode]) -> Iterator[str]:
        """All distinct content strings across the given documents."""
        seen: Set[str] = set()
        for root in roots:
            for content in self.index_for(root).values.contents():
                if content not in seen:
                    seen.add(content)
                    yield content
