"""Columnar document arrays and a compiled XPath scan over them.

The AST engine (:mod:`repro.xmldb.xpath.engine`) dispatches on node
types for every evaluation step — correct and general, but the per-node
cost dominates collection scans.  This module flattens a document into
parallel preorder arrays once (:class:`DocumentColumns`) and compiles
the *hot subset* of XPath — absolute child-axis paths with value and
existence predicates, exactly the shape
:func:`repro.core.executor.compile_pattern_to_xpath` emits — into
closures over those arrays.

Equivalence contract: for a supported expression, the matcher returns
the very same node list (same objects, same order) as
``XPathQuery.select``.  Anything outside the subset makes
:func:`compile_columnar` return None and the caller falls back to the
AST engine, so coverage gaps cost speed, never correctness.  The
matcher performs no resource-guard ticks; guarded evaluations must use
the AST engine.
"""

from __future__ import annotations

import sys
from bisect import bisect_left, bisect_right
from typing import Callable, Dict, List, Optional, Tuple

from .model import XmlNode, _object_ids
from .xpath import ast
from .xpath.engine import _compare_atomic

#: A compiled predicate: does the node at ``row`` satisfy it?
RowPredicate = Callable[["DocumentColumns", int], bool]
#: A compiled relative path: rows reachable from ``row``, ascending.
RowsFunction = Callable[["DocumentColumns", int], List[int]]
#: A compiled query: all matching nodes of a document, document order.
ColumnarMatcher = Callable[["DocumentColumns"], List[XmlNode]]
#: A compiled query returning matching *rows* instead of nodes — the
#: executor's batched verifier consumes these directly.
ColumnarRows = Callable[["DocumentColumns"], List[int]]


class DocumentColumns:
    """Flat preorder arrays for one document tree.

    ``row`` indexes are preorder positions (equal to ``node.pre`` on a
    renumbered root).  ``end[row]`` is one past the node's subtree, so
    the strict descendants of ``row`` are exactly rows
    ``row+1 .. end[row]-1`` — the classic interval encoding.  Tags and
    string-values are interned so the equality probes the compiled
    predicates run degrade to pointer comparisons in the common case.
    """

    __slots__ = (
        "root",
        "nodes",
        "tags",
        "texts",
        "attrs",
        "svalues",
        "children",
        "parents",
        "end",
        "depth",
        "tag_rows",
        "_subtree_keys",
        "_parent_rows",
    )

    def __init__(self, root: XmlNode) -> None:
        intern = sys.intern
        nodes: List[XmlNode] = list(root.iter())
        count = len(nodes)
        row_of: Dict[int, int] = {id(node): row for row, node in enumerate(nodes)}
        tags: List[str] = [intern(node.tag) for node in nodes]
        texts: List[str] = [node.text for node in nodes]
        children: List[List[int]] = [
            [row_of[id(child)] for child in node.children] for node in nodes
        ]
        end: List[int] = [0] * count
        svalues: List[str] = [""] * count
        for row in range(count - 1, -1, -1):
            child_rows = children[row]
            end[row] = end[child_rows[-1]] if child_rows else row + 1
            parts = [texts[row]] if texts[row] else []
            parts.extend(svalues[child] for child in child_rows if svalues[child])
            svalues[row] = intern(" ".join(parts))
        depth: List[int] = [0] * count
        parents: List[int] = [-1] * count
        for row in range(count):
            row_depth = depth[row] + 1
            for child in children[row]:
                depth[child] = row_depth
                parents[child] = row
        tag_rows: Dict[str, List[int]] = {}
        for row, tag in enumerate(tags):
            tag_rows.setdefault(tag, []).append(row)
        self.root = root
        self.nodes = nodes
        self.tags = tags
        self.texts = texts
        self.attrs = [node.attributes or None for node in nodes]
        self.svalues = svalues
        self.children = children
        self.parents = parents
        self.end = end
        self.depth = depth
        self.tag_rows = tag_rows
        #: Canonical subtree keys, cached per row (repeated queries over
        #: a cached column set dedupe without re-walking the sources).
        self._subtree_keys: Dict[int, Tuple] = {}
        #: Per-tag sorted parent rows (rows with >=1 child of the tag),
        #: built on first use — the batched verifier's structural prune.
        self._parent_rows: Dict[str, List[int]] = {}

    def tag_rows_in(self, tag: str, lo: int, hi: int) -> List[int]:
        """Rows with ``tag`` in the half-open row interval ``[lo, hi)``.

        Two bisects on the per-tag sorted row list — the batched
        verifier's candidate pools for tag-restricted pattern nodes.
        """
        rows = self.tag_rows.get(tag)
        if rows is None:
            return []
        start = bisect_left(rows, lo)
        stop = bisect_left(rows, hi, start)
        return rows[start:stop]

    def rows_with_child_tag(self, tag: str, lo: int, hi: int) -> List[int]:
        """Rows in ``[lo, hi)`` that have at least one ``tag`` child.

        A row with no such child cannot anchor a pc step requiring that
        tag, so it can never head a complete structural match — the
        batched verifier prunes unrestricted root pools through this
        before any backtracking starts.  Per-tag parent rows are derived
        from ``tag_rows`` once and bisected per call.
        """
        rows = self._parent_rows.get(tag)
        if rows is None:
            parents = self.parents
            seen = {parents[row] for row in self.tag_rows.get(tag, ())}
            seen.discard(-1)
            rows = sorted(seen)
            self._parent_rows[tag] = rows
        start = bisect_left(rows, lo)
        stop = bisect_left(rows, hi, start)
        return rows[start:stop]

    def subtree_key(self, row: int) -> Tuple:
        """:meth:`XmlNode.canonical_key` of the subtree at ``row``, cached.

        A copy of the subtree has the same canonical key as the source,
        so set-semantics dedupe can run on these *before* any output
        tree is materialised — and the cache makes repeated queries pay
        nothing for dedupe at all.
        """
        key = self._subtree_keys.get(row)
        if key is None:
            key = self.nodes[row].canonical_key()
            self._subtree_keys[row] = key
        return key

    def materialize(
        self,
        row: int,
        pre_base: int = 0,
        post_base: int = 0,
        depth_base: int = 0,
        parent: Optional[XmlNode] = None,
    ) -> XmlNode:
        """A fresh copy of the subtree at ``row``, numbered as it builds.

        Produces exactly what ``nodes[row].copy_numbered(...)`` would —
        same tags/texts/attributes, same pre/post/depth (the classic
        identities ``pre = row - root_row`` and ``post = pre + size - 1
        - depth`` hold on any preorder interval) — but iteratively, with
        a parent stack instead of per-node recursion.  The ``*_base``
        offsets and ``parent`` let the join path number a product root
        plus two materialised subtrees as one tree, mirroring
        ``tax_algebra._paired_copy``.
        """
        tags = self.tags
        texts = self.texts
        attrs = self.attrs
        end = self.end
        depths = self.depth
        # pre/post/depth are affine in the columns, so fold the bases
        # and the root's row/depth into three per-call constants:
        #   pre   = pre_off + x            (pre_off = pre_base - row)
        #   post  = post_off + end[x] - rel (post_off = post_base - row - 1)
        #   depth = depth_off + depths[x]  (depth_off = depth_base - depths[row])
        pre_off = pre_base - row
        post_off = post_base - row - 1
        depth_off = depth_base - depths[row]
        base_depth = depths[row]
        object_ids = _object_ids
        new = XmlNode.__new__
        stack: List[XmlNode] = []
        root_clone: Optional[XmlNode] = None
        for x in range(row, end[row]):
            clone: XmlNode = new(XmlNode)
            clone.tag = tags[x]
            clone.text = texts[x]
            attributes = attrs[x]
            clone.attributes = dict(attributes) if attributes else {}
            clone.children = []
            clone.parent = None
            rel = depths[x] - base_depth
            clone.pre = pre_off + x
            clone.post = post_off + end[x] - rel
            clone.depth = depth_off + depths[x]
            clone.object_id = next(object_ids)
            if len(stack) > rel:
                del stack[rel:]
            if stack:
                above = stack[-1]
                clone.parent = above
                above.children.append(clone)
            else:
                root_clone = clone
            stack.append(clone)
        assert root_clone is not None
        if parent is not None:
            root_clone.parent = parent
            parent.children.append(root_clone)
        return root_clone


# ---------------------------------------------------------------------------
# Step application over row sets
# ---------------------------------------------------------------------------


def _tag_rows_of(cols: DocumentColumns, name: str) -> List[int]:
    if name == "*":
        return range(len(cols.nodes))  # type: ignore[return-value]
    return cols.tag_rows.get(name, ())  # type: ignore[return-value]


def _child_rows(cols: DocumentColumns, sources: List[int], name: str) -> List[int]:
    """CHILD-axis rows of ``sources`` matching ``name`` (sorted, unique)."""
    out: List[int] = []
    tags = cols.tags
    for row in sources:
        if name == "*":
            out.extend(cols.children[row])
        else:
            out.extend(child for child in cols.children[row] if tags[child] is name or tags[child] == name)
    if len(sources) > 1:
        out = sorted(set(out))
    return out


def _descendant_child_rows(cols: DocumentColumns, sources: List[int], name: str) -> List[int]:
    """Rows matching ``name`` strictly below any source (``//`` join)."""
    out: List[int] = []
    end = cols.end
    if name == "*":
        for row in sources:
            out.extend(range(row + 1, end[row]))
    else:
        rows = cols.tag_rows.get(name)
        if rows is None:
            return []
        for row in sources:
            lo = bisect_right(rows, row)
            hi = bisect_left(rows, end[row], lo)
            out.extend(rows[lo:hi])
    if len(sources) > 1:
        out = sorted(set(out))
    return out


# ---------------------------------------------------------------------------
# Predicate compilation
# ---------------------------------------------------------------------------


def _compile_steps(
    steps: Tuple[ast.Step, ...], joins: Tuple[bool, ...], absolute: bool
) -> Optional[Callable[[DocumentColumns, List[int]], List[int]]]:
    """Compile a step sequence into rows->rows, or None if unsupported.

    For an absolute path the input rows are ignored and evaluation
    starts at the document point (so ``//tag`` covers the root too, as
    in the engine); a relative path starts from the given context rows.
    """
    compiled: List[Tuple[ast.Step, bool, Optional[str], Optional[RowPredicate]]] = []
    for step, deep in zip(steps, joins):
        if step.axis == ast.SELF and isinstance(step.test, ast.AnyNodeTest):
            name = None  # identity step ('.')
        elif step.axis == ast.CHILD and isinstance(step.test, ast.NameTest):
            name = sys.intern(step.test.name)
        else:
            return None
        predicates: List[RowPredicate] = []
        for predicate in step.predicates:
            row_predicate = _compile_predicate(predicate)
            if row_predicate is None:
                return None
            predicates.append(row_predicate)
        # Fuse the step's predicate chain into one short-circuit test —
        # same left-to-right and-semantics, one filtering pass per step
        # instead of one list rebuild per predicate.
        fused: Optional[RowPredicate]
        if not predicates:
            fused = None
        elif len(predicates) == 1:
            fused = predicates[0]
        else:
            chain = tuple(predicates)

            def fused(
                cols: DocumentColumns, row: int, _chain=chain
            ) -> bool:
                for part in _chain:
                    if not part(cols, row):
                        return False
                return True

        compiled.append((step, deep, name, fused))

    def apply(cols: DocumentColumns, rows: List[int]) -> List[int]:
        first = True
        for _step, deep, name, predicate in compiled:
            if name is None:  # self::node()
                if deep:
                    # './/.' — descendant-or-self of every row.
                    expanded: List[int] = []
                    for row in rows:
                        expanded.extend(range(row, cols.end[row]))
                    rows = sorted(set(expanded)) if len(rows) > 1 else expanded
            elif absolute and first:
                rows = (
                    list(_tag_rows_of(cols, name))
                    if deep
                    else ([0] if name == "*" or cols.tags[0] == name else [])
                )
            elif deep:
                rows = _descendant_child_rows(cols, rows, name)
            else:
                rows = _child_rows(cols, rows, name)
            first = False
            if predicate is not None:
                rows = [row for row in rows if predicate(cols, row)]
        return rows

    return apply


def _compile_relative_rows(path: ast.LocationPath) -> Optional[RowsFunction]:
    if path.absolute or not path.steps:
        return None
    apply = _compile_steps(path.steps, path.descendant_joins, absolute=False)
    if apply is None:
        return None

    def rows_from(cols: DocumentColumns, row: int) -> List[int]:
        return apply(cols, [row])

    return rows_from


def _is_self_path(expr: ast.Expr) -> bool:
    """True for the bare context-node path ``.`` (no predicates)."""
    return (
        isinstance(expr, ast.LocationPath)
        and not expr.absolute
        and len(expr.steps) == 1
        and expr.steps[0].axis == ast.SELF
        and isinstance(expr.steps[0].test, ast.AnyNodeTest)
        and not expr.steps[0].predicates
        and not expr.descendant_joins[0]
    )


#: Operand kinds for compiled comparisons.
_CONST = "const"  # a literal string or number
_ATOM = "atom"  # per-row atomic value (string or float)
_SET = "set"  # per-row node-set, materialised as its string-values


def _compile_operand(expr: ast.Expr) -> Optional[Tuple[str, object]]:
    if isinstance(expr, ast.Literal):
        return (_CONST, sys.intern(expr.value))
    if isinstance(expr, ast.Number):
        return (_CONST, expr.value)
    if isinstance(expr, ast.LocationPath):
        if _is_self_path(expr):
            return (_ATOM, lambda cols, row: cols.svalues[row])
        rows_from = _compile_relative_rows(expr)
        if rows_from is None:
            return None

        def svalues_from(cols: DocumentColumns, row: int, _rows=rows_from) -> List[str]:
            svalues = cols.svalues
            return [svalues[r] for r in _rows(cols, row)]

        return (_SET, svalues_from)
    if isinstance(expr, ast.FunctionCall):
        if expr.name == "number" and len(expr.args) <= 1:
            if not expr.args or _is_self_path(expr.args[0]):
                # number(.) == to_number(context node's string-value).
                def number_of(cols: DocumentColumns, row: int) -> float:
                    try:
                        return float(cols.svalues[row].strip())
                    except ValueError:
                        return float("nan")

                return (_ATOM, number_of)
            argument = _compile_operand(expr.args[0])
            if argument is not None and argument[0] == _SET:
                # number(node-set) converts the first node's string-value
                # (an empty set becomes NaN), per to_number(to_string(..)).
                def number_of_set(
                    cols: DocumentColumns, row: int, _get=argument[1]
                ) -> float:
                    values = _get(cols, row)
                    try:
                        return float(values[0].strip()) if values else float("nan")
                    except ValueError:
                        return float("nan")

                return (_ATOM, number_of_set)
            return None
        if expr.name == "string" and (not expr.args or _is_self_path(expr.args[0])):
            return (_ATOM, lambda cols, row: cols.svalues[row])
        if expr.name == "name" and not expr.args:
            return (_ATOM, lambda cols, row: cols.tags[row])
    return None


def _flatten_or(expr: ast.Expr, leaves: List[ast.Expr]) -> None:
    if isinstance(expr, ast.BinaryOp) and expr.op == "or":
        _flatten_or(expr.left, leaves)
        _flatten_or(expr.right, leaves)
    else:
        leaves.append(expr)


def _membership_literal(leaf: ast.Expr) -> Optional[str]:
    """The literal of a ``. = 'x'`` / ``'x' = .`` leaf, else None."""
    if not (isinstance(leaf, ast.BinaryOp) and leaf.op == "="):
        return None
    left, right = leaf.left, leaf.right
    if _is_self_path(left) and isinstance(right, ast.Literal):
        return right.value
    if _is_self_path(right) and isinstance(left, ast.Literal):
        return left.value
    return None


def _compile_comparison(expr: ast.BinaryOp) -> Optional[RowPredicate]:
    left = _compile_operand(expr.left)
    right = _compile_operand(expr.right)
    if left is None or right is None:
        return None
    op = expr.op
    left_kind, left_value = left
    right_kind, right_value = right

    def side(kind: str, value: object, cols: DocumentColumns, row: int) -> object:
        if kind == _CONST:
            return value
        return value(cols, row)  # type: ignore[operator]

    if left_kind != _SET and right_kind != _SET:
        # Fast path for the dominant '. = literal' probe: base equality
        # on interned strings instead of the generic coercion ladder.
        if (
            op in ("=", "!=")
            and left_kind == _ATOM
            and right_kind == _CONST
            and isinstance(right_value, str)
        ):
            wanted = op == "="

            def equality(cols: DocumentColumns, row: int, _get=left_value) -> bool:
                return (_get(cols, row) == right_value) is wanted

            return equality

        def atomic(cols: DocumentColumns, row: int) -> bool:
            return _compare_atomic(
                op,
                side(left_kind, left_value, cols, row),
                side(right_kind, right_value, cols, row),
            )

        return atomic

    def setwise(cols: DocumentColumns, row: int) -> bool:
        lhs = side(left_kind, left_value, cols, row)
        rhs = side(right_kind, right_value, cols, row)
        if left_kind == _SET and right_kind == _SET:
            return any(_compare_atomic(op, lv, rv) for lv in lhs for rv in rhs)
        if left_kind == _SET:
            return any(_compare_atomic(op, lv, rhs) for lv in lhs)
        return any(_compare_atomic(op, lhs, rv) for rv in rhs)

    return setwise


def _compile_predicate(expr: ast.Expr) -> Optional[RowPredicate]:
    """Compile a predicate to a row test, or None if unsupported.

    Numbers are rejected on purpose: a numeric predicate is positional
    in XPath and the row pipeline has no position context.
    """
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "or":
            leaves: List[ast.Expr] = []
            _flatten_or(expr, leaves)
            literals = [_membership_literal(leaf) for leaf in leaves]
            if all(literal is not None for literal in literals) and len(literals) > 1:
                # '(. = 'a' or . = 'b' or ...)' — the shape SEO expansion
                # emits, sometimes dozens wide: one hash probe instead of
                # a short-circuit chain.
                wanted = frozenset(literals)  # type: ignore[arg-type]

                def membership(cols: DocumentColumns, row: int) -> bool:
                    return cols.svalues[row] in wanted

                return membership
            left = _compile_predicate(expr.left)
            right = _compile_predicate(expr.right)
            if left is None or right is None:
                return None
            return lambda cols, row: left(cols, row) or right(cols, row)
        if expr.op == "and":
            left = _compile_predicate(expr.left)
            right = _compile_predicate(expr.right)
            if left is None or right is None:
                return None
            return lambda cols, row: left(cols, row) and right(cols, row)
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return _compile_comparison(expr)
        return None
    if isinstance(expr, ast.LocationPath):
        if (
            not expr.absolute
            and len(expr.steps) == 1
            and expr.steps[0].axis == ast.CHILD
            and isinstance(expr.steps[0].test, ast.NameTest)
            and not expr.steps[0].predicates
            and not expr.descendant_joins[0]
        ):
            # '[tag]' — the existence probes the pattern compiler emits
            # for every pattern child.  A direct any() over the child
            # rows skips the generic rows-pipeline allocation.
            name = sys.intern(expr.steps[0].test.name)
            if name == "*":
                return lambda cols, row: bool(cols.children[row])

            def has_child(cols: DocumentColumns, row: int) -> bool:
                tags = cols.tags
                for child in cols.children[row]:
                    if tags[child] is name or tags[child] == name:
                        return True
                return False

            return has_child
        rows_from = _compile_relative_rows(expr)
        if rows_from is None:
            return None
        return lambda cols, row: bool(rows_from(cols, row))
    if isinstance(expr, ast.FunctionCall):
        if expr.name == "not" and len(expr.args) == 1:
            inner = _compile_predicate(expr.args[0])
            if inner is None:
                return None
            return lambda cols, row: not inner(cols, row)
        if expr.name == "true" and not expr.args:
            return lambda cols, row: True
        if expr.name == "false" and not expr.args:
            return lambda cols, row: False
    return None


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def compile_columnar_rows(expression: ast.Expr) -> Optional[ColumnarRows]:
    """Compile an XPath AST into a row-returning columnar scan, or None.

    Same supported subset as :func:`compile_columnar`, but the result is
    the matching *row* list — the executor's batched verifier feeds
    ``(columns, row)`` pairs straight into set-oriented verification
    without materialising candidate node lists first.
    """
    if not isinstance(expression, ast.LocationPath):
        return None
    if not expression.absolute or not expression.steps:
        return None
    apply = _compile_steps(
        expression.steps, expression.descendant_joins, absolute=True
    )
    if apply is None:
        return None

    def rows(cols: DocumentColumns) -> List[int]:
        return apply(cols, [])

    return rows


def compile_columnar(expression: ast.Expr) -> Optional[ColumnarMatcher]:
    """Compile an XPath AST into a columnar matcher, or None.

    Supported: absolute location paths whose steps are child-axis name
    tests (with ``//`` joins) carrying value/existence predicates — the
    shape the executor's pattern-to-XPath compiler emits.  Everything
    else returns None and must run on the AST engine.
    """
    rows = compile_columnar_rows(expression)
    if rows is None:
        return None

    def matcher(cols: DocumentColumns) -> List[XmlNode]:
        nodes = cols.nodes
        return [nodes[row] for row in rows(cols)]

    return matcher
