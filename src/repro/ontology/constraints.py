"""Interoperation constraints between hierarchies (Definition 4).

When a semistructured database spans several instances, the database
administrator relates terms of the different per-instance hierarchies with
constraints of the forms ``x:i <= y:j``, ``x:i = y:j`` and ``x:i != y:j``
(Example 9: ``booktitle:1 = conference:2``).  Equality constraints are, as
the paper notes, syntactic sugar for a pair of subsumption constraints; the
fusion machinery normalises them that way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Mapping, Tuple

from ..errors import ConstraintError
from .hierarchy import Hierarchy


@dataclass(frozen=True, order=True)
class ScopedTerm:
    """A term qualified by the hierarchy it comes from — the paper's ``x:i``."""

    term: Hashable
    source: Hashable

    def __str__(self) -> str:
        return f"{self.term}:{self.source}"


class InteroperationConstraint:
    """Base class for the three constraint forms of Definition 4."""

    __slots__ = ("left", "right")

    def __init__(self, left: ScopedTerm, right: ScopedTerm) -> None:
        if left.source == right.source:
            raise ConstraintError(
                f"interoperation constraints relate *different* hierarchies; "
                f"both {left} and {right} come from source {left.source!r}"
            )
        self.left = left
        self.right = right

    def validate(self, hierarchies: Mapping[Hashable, Hierarchy]) -> None:
        """Check both scoped terms exist in their hierarchies."""
        for scoped in (self.left, self.right):
            if scoped.source not in hierarchies:
                raise ConstraintError(f"constraint references unknown source {scoped.source!r}")
            if scoped.term not in hierarchies[scoped.source]:
                raise ConstraintError(
                    f"constraint references term {scoped.term!r} missing from "
                    f"hierarchy {scoped.source!r}"
                )

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return (self.left, self.right) == (other.left, other.right)  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.left, self.right))


class SubsumptionConstraint(InteroperationConstraint):
    """``x:i <= y:j`` — the left term is below the right in the fusion."""

    def __repr__(self) -> str:
        return f"{self.left} <= {self.right}"


class EqualityConstraint(InteroperationConstraint):
    """``x:i = y:j`` — the two terms denote the same concept.

    Decomposes into two :class:`SubsumptionConstraint` instances, as the
    note under Definition 4 prescribes.
    """

    def decompose(self) -> Tuple[SubsumptionConstraint, SubsumptionConstraint]:
        return (
            SubsumptionConstraint(self.left, self.right),
            SubsumptionConstraint(self.right, self.left),
        )

    def __repr__(self) -> str:
        return f"{self.left} = {self.right}"


class InequalityConstraint(InteroperationConstraint):
    """``x:i != y:j`` — the two terms must *not* be fused together."""

    def __repr__(self) -> str:
        return f"{self.left} != {self.right}"


_CONSTRAINT_RE = re.compile(
    r"""^\s*
        (?P<lterm>[^:<>=!]+?)\s*:\s*(?P<lsrc>\w+)\s*
        (?P<op><=|!=|=)\s*
        (?P<rterm>[^:<>=!]+?)\s*:\s*(?P<rsrc>\w+)\s*$""",
    re.VERBOSE,
)

_OP_CLASSES = {
    "<=": SubsumptionConstraint,
    "=": EqualityConstraint,
    "!=": InequalityConstraint,
}


def parse_constraint(text: str) -> InteroperationConstraint:
    """Parse the paper's textual constraint notation.

    >>> parse_constraint("booktitle:1 = conference:2")
    booktitle:1 = conference:2

    Source identifiers that look like integers are converted to ``int`` so
    they compare equal to integer source ids.
    """
    match = _CONSTRAINT_RE.match(text)
    if match is None:
        raise ConstraintError(
            f"cannot parse constraint {text!r}; expected 'term:src (<=|=|!=) term:src'"
        )

    def source(raw: str) -> Hashable:
        return int(raw) if raw.isdigit() else raw

    left = ScopedTerm(match.group("lterm").strip(), source(match.group("lsrc")))
    right = ScopedTerm(match.group("rterm").strip(), source(match.group("rsrc")))
    return _OP_CLASSES[match.group("op")](left, right)


def parse_constraints(texts: Iterable[str]) -> List[InteroperationConstraint]:
    """Parse many constraints; convenience for DBA configuration files."""
    return [parse_constraint(text) for text in texts]
