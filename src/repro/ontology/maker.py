"""The Ontology Maker — component (1) of the TOSS architecture (Figure 8).

"The Ontology Maker associates an ontology with each semistructured
instance I in SDB.  It uses WordNet to automatically identify isa,
equivalent, and part-of relationships between terms in an SDB.  These can
be edited further and refined by a database administrator..."

Construction per instance:

* **part-of** — structural extraction: every parent/child tag nesting in
  the document contributes a ``child.tag part-of parent.tag`` pair (the
  hierarchies of Figure 9 are exactly this shape), plus any lexicon
  holonym pairs between tags.
* **isa** — the lexicon's hypernym chains seeded from the document's tags,
  plus, for the configured *content tags* (author, booktitle, ...), every
  content value as a term *below* its tag (values are types with singleton
  domains, Section 5's "each value of a type may also be viewed as a
  type").  This is what puts "Jeffrey D. Ullman" into the ontology so the
  SEO can later group it with "J. Ullman".
* **DBA rules** — explicit ``(relation, lower, upper)`` edge rules layered
  on top, mirroring the paper's "user-specified rules".

Self-nesting tags (a ``cite`` inside a ``cite``) would make the extracted
relation cyclic, which a partial order cannot be; such edges are dropped,
matching the Hasse-diagram reading of Definition 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import graphutils
from ..xmldb.model import XmlNode
from .hierarchy import Hierarchy, Ontology
from .lexicon import Lexicon, bibliography_lexicon

#: Tags whose content values are lifted into the isa hierarchy by default.
DEFAULT_CONTENT_TAGS = frozenset({"author", "booktitle", "conference", "editor"})

Rule = Tuple[str, str, str]  # (relation, lower_term, upper_term)


class OntologyMaker:
    """Builds an :class:`Ontology` from an XML instance.

    Parameters
    ----------
    lexicon:
        Lexical KB used for hypernym/holonym/synonym extraction; defaults
        to the embedded bibliographic lexicon.
    content_tags:
        Element names whose text content becomes ontology terms (isa their
        tag).  Pass an empty set for a pure schema-level ontology.
    rules:
        DBA rules: ``(relation, lower, upper)`` triples appended as edges.
    max_content_terms:
        Safety cap on the number of content values lifted per instance
        (the paper's ontologies have on the order of 1-2k terms).
    """

    def __init__(
        self,
        lexicon: Optional[Lexicon] = None,
        content_tags: Iterable[str] = DEFAULT_CONTENT_TAGS,
        rules: Sequence[Rule] = (),
        max_content_terms: Optional[int] = None,
    ) -> None:
        self.lexicon = lexicon if lexicon is not None else bibliography_lexicon()
        self.content_tags = frozenset(content_tags)
        self.rules = list(rules)
        self.max_content_terms = max_content_terms

    # -- public API ----------------------------------------------------------

    def make(self, root: XmlNode) -> Ontology:
        """Build the ontology of one semistructured instance."""
        isa_edges = self._isa_edges(root)
        part_of_edges = self._part_of_edges(root)
        for relation, lower, upper in self.rules:
            if relation == Ontology.ISA:
                isa_edges.append((lower, upper))
            elif relation == Ontology.PART_OF:
                part_of_edges.append((lower, upper))
            else:
                raise ValueError(f"unknown rule relation {relation!r}")
        tags = self._document_tags(root)
        return Ontology(
            {
                Ontology.ISA: _acyclic_hierarchy(isa_edges, nodes=tags),
                Ontology.PART_OF: _acyclic_hierarchy(part_of_edges, nodes=tags),
            }
        )

    def make_many(self, roots: Iterable[XmlNode]) -> List[Ontology]:
        """One ontology per instance (Figure 8 runs the maker per I in SDB)."""
        return [self.make(root) for root in roots]

    def make_combined(self, roots: Iterable[XmlNode]) -> Ontology:
        """One ontology covering several documents of the same source.

        Sources like the SIGMOD proceedings ship as many small documents
        sharing one schema; their extracted edges are unioned before the
        Hasse normalisation.
        """
        isa_edges: List[Tuple[str, str]] = []
        part_of_edges: List[Tuple[str, str]] = []
        tags: Set[str] = set()
        for root in roots:
            isa_edges.extend(self._isa_edges(root))
            part_of_edges.extend(self._part_of_edges(root))
            tags.update(self._document_tags(root))
        for relation, lower, upper in self.rules:
            if relation == Ontology.ISA:
                isa_edges.append((lower, upper))
            elif relation == Ontology.PART_OF:
                part_of_edges.append((lower, upper))
            else:
                raise ValueError(f"unknown rule relation {relation!r}")
        return Ontology(
            {
                Ontology.ISA: _acyclic_hierarchy(isa_edges, nodes=tags),
                Ontology.PART_OF: _acyclic_hierarchy(part_of_edges, nodes=tags),
            }
        )

    # -- extraction ---------------------------------------------------------------

    def _document_tags(self, root: XmlNode) -> Set[str]:
        return {node.tag for node in root.iter()}

    def _part_of_edges(self, root: XmlNode) -> List[Tuple[str, str]]:
        edges: Set[Tuple[str, str]] = set()
        for node in root.iter():
            for child in node.children:
                if child.tag != node.tag:
                    edges.add((child.tag, node.tag))
            if node.tag in self.content_tags and node.text:
                for whole in self.lexicon.holonyms(node.text):
                    edges.add((node.text, whole))
        for tag in self._document_tags(root):
            for whole in self.lexicon.holonyms(tag):
                edges.add((tag, whole))
        return sorted(edges)

    def _isa_edges(self, root: XmlNode) -> List[Tuple[str, str]]:
        edges: Set[Tuple[str, str]] = set()

        # Seed terms: the schema vocabulary plus lifted content values.
        seeds: List[str] = list(self._document_tags(root))
        lifted = 0
        for node in root.iter():
            if node.tag in self.content_tags and node.text:
                if (
                    self.max_content_terms is not None
                    and lifted >= self.max_content_terms
                ):
                    break
                if node.text != node.tag:
                    edges.add((node.text, node.tag))
                    lifted += 1
                seeds.append(node.text)

        # Hypernym chains followed transitively from every seed, so a
        # venue's category reaches "conference", "event", etc.
        frontier = list(seeds)
        seen: Set[str] = set(frontier)
        while frontier:
            term = frontier.pop()
            for hypernym in self.lexicon.hypernyms(term):
                edges.add((term, hypernym))
                if hypernym not in seen:
                    seen.add(hypernym)
                    frontier.append(hypernym)
        return sorted(edges)


def _acyclic_hierarchy(
    edges: Sequence[Tuple[str, str]], nodes: Iterable[str] = ()
) -> Hierarchy:
    """Build a hierarchy, greedily dropping edges that would close cycles."""
    adjacency: Dict[str, Set[str]] = {}
    accepted: List[Tuple[str, str]] = []
    for lower, upper in edges:
        if lower == upper:
            continue
        if graphutils.has_path(adjacency, upper, lower):
            continue  # would create a cycle — skip, keeping the earlier edges
        adjacency.setdefault(lower, set()).add(upper)
        adjacency.setdefault(upper, set())
        accepted.append((lower, upper))
    return Hierarchy(accepted, nodes=nodes)


@dataclass
class RelationDelta:
    """What one document batch contributed to one extracted relation."""

    added_edges: List[Tuple[str, str]] = field(default_factory=list)
    added_nodes: List[str] = field(default_factory=list)
    #: Terms that entered the hierarchy with this batch (edge endpoints
    #: not previously present, plus the isolated additions).
    added_terms: Set[str] = field(default_factory=set)
    #: True when the hierarchy was grown via the leaf-extension fast path
    #: (every genuinely new edge hangs a new term below the existing
    #: order) — the condition under which downstream fusion can extend
    #: incrementally too.
    leaf_only: bool = True

    @property
    def empty(self) -> bool:
        return not self.added_edges and not self.added_nodes


class CombinedExtraction:
    """Replays :meth:`OntologyMaker.make_combined` one document batch at a time.

    The greedy cycle-dropping pass of ``_acyclic_hierarchy`` consumes the
    concatenated per-document edge lists in order, so its accepted graph
    after documents ``d1..dn`` is a pure function of that prefix.  This
    state object keeps the accepted adjacency per relation and continues
    the greedy pass over each newly appended batch, producing an ontology
    **identical** to ``make_combined`` over all documents seen so far:

    * a re-extracted duplicate edge is a no-op in both paths (the
      adjacency is unchanged, and ``Hierarchy`` de-duplicates);
    * a genuinely new edge faces exactly the ``has_path`` check the full
      pass would apply, against the same adjacency.

    Only valid for makers without DBA rules: ``make_combined`` appends
    rules *after* all documents, so a continuation would replay them in
    the wrong position.  Callers check :attr:`supported` and fall back to
    the full combine.  Removals/replacements are likewise out of scope —
    the greedy state is not reversible — so callers rebuild this state
    from the surviving documents.
    """

    _RELATIONS = (Ontology.ISA, Ontology.PART_OF)

    def __init__(self, maker: OntologyMaker) -> None:
        self.maker = maker
        self._adjacency: Dict[str, Dict[str, Set[str]]] = {
            relation: {} for relation in self._RELATIONS
        }
        self._tags: Set[str] = set()
        self._hierarchies: Dict[str, Hierarchy] = {
            relation: Hierarchy() for relation in self._RELATIONS
        }

    @property
    def supported(self) -> bool:
        return not self.maker.rules

    @property
    def ontology(self) -> Ontology:
        return Ontology(dict(self._hierarchies))

    def extend(self, roots: Sequence[XmlNode]) -> Dict[str, RelationDelta]:
        """Fold a batch of documents into the combined ontology.

        Returns the per-relation delta (new accepted edges, new isolated
        terms, and whether the hierarchy took the leaf-extension fast
        path).  After the call, :attr:`ontology` equals
        ``maker.make_combined(all documents so far)``.
        """
        if not self.supported:
            raise ValueError(
                "CombinedExtraction cannot replay DBA rules; use make_combined"
            )
        batch_tags: Set[str] = set()
        for root in roots:
            batch_tags.update(self.maker._document_tags(root))
        new_tags = batch_tags - self._tags
        self._tags.update(new_tags)

        extractors = {
            Ontology.ISA: self.maker._isa_edges,
            Ontology.PART_OF: self.maker._part_of_edges,
        }
        deltas: Dict[str, RelationDelta] = {}
        for relation in self._RELATIONS:
            adjacency = self._adjacency[relation]
            extract = extractors[relation]
            added: List[Tuple[str, str]] = []
            for root in roots:
                for lower, upper in extract(root):
                    if lower == upper:
                        continue
                    targets = adjacency.get(lower)
                    if targets is not None and upper in targets:
                        continue  # duplicate of an accepted edge: no-op
                    if graphutils.has_path(adjacency, upper, lower):
                        continue  # would close a cycle — dropped, as in the full pass
                    adjacency.setdefault(lower, set()).add(upper)
                    adjacency.setdefault(upper, set())
                    added.append((lower, upper))
            previous = self._hierarchies[relation]
            isolated = [tag for tag in new_tags if tag not in previous]
            added_terms = set(isolated)
            for lower, upper in added:
                if lower not in previous:
                    added_terms.add(lower)
                if upper not in previous:
                    added_terms.add(upper)
            delta = RelationDelta(
                added_edges=added, added_nodes=isolated, added_terms=added_terms
            )
            extended = previous.extended_with_lower_terms(added, new_nodes=isolated)
            if extended is None:
                # Some new edge attaches below an existing term (e.g. a
                # known tag nested under a new parent): rebuild this
                # relation from the accepted graph.  Still exact — the
                # adjacency is the full greedy outcome.
                extended = Hierarchy(adjacency, nodes=self._tags)
                delta.leaf_only = False
            self._hierarchies[relation] = extended
            deltas[relation] = delta
        return deltas
